//! Codec error type bridging serde's error traits and the workspace
//! [`kpn_core::Error`].

use std::fmt;

/// Errors raised while encoding or decoding.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying transport failed (includes EOF mid-value).
    Io(std::io::Error),
    /// The bytes do not decode to the requested type.
    Malformed(String),
    /// A `Serialize` impl produced something this format cannot express
    /// (e.g. a sequence of unknown length).
    Unsupported(String),
    /// Custom message from serde.
    Message(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "io: {e}"),
            CodecError::Malformed(m) => write!(f, "malformed input: {m}"),
            CodecError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CodecError::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl serde::ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

impl serde::de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

impl From<CodecError> for kpn_core::Error {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Io(io) => io.into(),
            other => kpn_core::Error::Codec(other.to_string()),
        }
    }
}

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, CodecError>;
