//! The serializer half of the binary format.

use crate::error::{CodecError, Result};
use serde::ser::{self, Serialize};
use std::io::Write;

/// Encodes a value into a fresh byte vector.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    to_writer(&mut out, value)?;
    Ok(out)
}

/// Encodes a value onto any `io::Write` (including a channel endpoint).
pub fn to_writer<W: Write, T: Serialize + ?Sized>(writer: W, value: &T) -> Result<()> {
    let mut ser = Serializer::new(writer);
    value.serialize(&mut ser)
}

/// Streaming serializer over an `io::Write`.
pub struct Serializer<W: Write> {
    writer: W,
}

impl<W: Write> Serializer<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        Serializer { writer }
    }

    /// Recovers the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn put(&mut self, bytes: &[u8]) -> Result<()> {
        self.writer.write_all(bytes)?;
        Ok(())
    }

    fn put_len(&mut self, len: usize) -> Result<()> {
        self.put(&(len as u64).to_le_bytes())
    }
}

impl<'a, W: Write> ser::Serializer for &'a mut Serializer<W> {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Compound<'a, W>;
    type SerializeTuple = Compound<'a, W>;
    type SerializeTupleStruct = Compound<'a, W>;
    type SerializeTupleVariant = Compound<'a, W>;
    type SerializeMap = Compound<'a, W>;
    type SerializeStruct = Compound<'a, W>;
    type SerializeStructVariant = Compound<'a, W>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.put(&[v as u8])
    }
    fn serialize_i8(self, v: i8) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_i16(self, v: i16) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_i32(self, v: i32) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_i64(self, v: i64) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_i128(self, v: i128) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_u8(self, v: u8) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_u16(self, v: u16) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_u32(self, v: u32) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_u64(self, v: u64) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_u128(self, v: u128) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_f32(self, v: f32) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_f64(self, v: f64) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_char(self, v: char) -> Result<()> {
        self.put(&(v as u32).to_le_bytes())
    }
    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_len(v.len())?;
        self.put(v.as_bytes())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.put_len(v.len())?;
        self.put(v)
    }
    fn serialize_none(self) -> Result<()> {
        self.put(&[0])
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.put(&[1])?;
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.put(&variant_index.to_le_bytes())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.put(&variant_index.to_le_bytes())?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let len = len
            .ok_or_else(|| CodecError::Unsupported("sequences must have a known length".into()))?;
        self.put_len(len)?;
        Ok(Compound { ser: self })
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(Compound { ser: self })
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(Compound { ser: self })
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        self.put(&variant_index.to_le_bytes())?;
        Ok(Compound { ser: self })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let len =
            len.ok_or_else(|| CodecError::Unsupported("maps must have a known length".into()))?;
        self.put_len(len)?;
        Ok(Compound { ser: self })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(Compound { ser: self })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        self.put(&variant_index.to_le_bytes())?;
        Ok(Compound { ser: self })
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Compound-value serializer shared by all composite shapes.
pub struct Compound<'a, W: Write> {
    ser: &'a mut Serializer<W>,
}

impl<W: Write> ser::SerializeSeq for Compound<'_, W> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<W: Write> ser::SerializeTuple for Compound<'_, W> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<W: Write> ser::SerializeTupleStruct for Compound<'_, W> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<W: Write> ser::SerializeTupleVariant for Compound<'_, W> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<W: Write> ser::SerializeMap for Compound<'_, W> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut *self.ser)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<W: Write> ser::SerializeStruct for Compound<'_, W> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<W: Write> ser::SerializeStructVariant for Compound<'_, W> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}
