//! Object streams over channels — the `ObjectOutputStream` /
//! `ObjectInputStream` analogue of §3.1.
//!
//! Each object is written as a length-prefixed record (u32 length + encoded
//! bytes). The framing keeps byte-level intermediaries (Duplicate, Cons,
//! remote transports) transparent and lets generic processes forward whole
//! objects without understanding them — see
//! [`ObjectReader::read_raw`] / [`ObjectWriter::write_raw`], which the
//! embarrassingly-parallel framework uses to route task envelopes.

use crate::de::from_bytes;
use crate::ser::to_writer;
use kpn_core::{ChannelReader, ChannelWriter, Error as KpnError, DEFAULT_STREAM_BUFFER};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Writes serialized objects onto a channel as length-prefixed records.
///
/// The underlying channel endpoint is buffered ([`DEFAULT_STREAM_BUFFER`]),
/// so small objects batch into chunk-sized channel transfers; the runtime's
/// flush-before-block rule keeps the batching invisible to consumers. Each
/// object is encoded into a scratch buffer that is reused across `write`
/// calls — no per-object allocation once the scratch has grown to the
/// working-set record size.
#[derive(Debug)]
pub struct ObjectWriter {
    inner: ChannelWriter,
    scratch: Vec<u8>,
}

impl ObjectWriter {
    /// Wraps a channel writer, buffering it if it is not already.
    pub fn new(mut inner: ChannelWriter) -> Self {
        inner.declare_framing(kpn_core::StreamFraming::Object);
        inner.ensure_buffered(DEFAULT_STREAM_BUFFER);
        ObjectWriter {
            inner,
            scratch: Vec::new(),
        }
    }

    /// Recovers the underlying byte endpoint.
    pub fn into_inner(self) -> ChannelWriter {
        self.inner
    }

    /// Serializes and writes one object.
    pub fn write<T: Serialize>(&mut self, value: &T) -> kpn_core::Result<()> {
        // Destructure so the serializer can borrow `scratch` while the
        // record goes out through `inner`.
        let Self { inner, scratch } = self;
        scratch.clear();
        to_writer(&mut *scratch, value).map_err(KpnError::from)?;
        let len = u32::try_from(scratch.len())
            .map_err(|_| KpnError::Codec("object larger than 4 GiB".into()))?;
        inner.write_all(&len.to_be_bytes())?;
        inner.write_all(scratch)
    }

    /// Writes an already-encoded record (forwarding without decode).
    pub fn write_raw(&mut self, bytes: &[u8]) -> kpn_core::Result<()> {
        let len = u32::try_from(bytes.len())
            .map_err(|_| KpnError::Codec("object larger than 4 GiB".into()))?;
        self.inner.write_all(&len.to_be_bytes())?;
        self.inner.write_all(bytes)
    }

    /// Flushes buffered records through to the channel immediately.
    pub fn flush(&mut self) -> kpn_core::Result<()> {
        self.inner.flush()
    }

    /// Gracefully closes the stream.
    pub fn close(&mut self) {
        self.inner.close();
    }
}

/// Reads length-prefixed serialized objects from a channel.
#[derive(Debug)]
pub struct ObjectReader {
    inner: ChannelReader,
}

impl ObjectReader {
    /// Wraps a channel reader.
    pub fn new(inner: ChannelReader) -> Self {
        inner.declare_framing(kpn_core::StreamFraming::Object);
        ObjectReader { inner }
    }

    /// Recovers the underlying byte endpoint.
    pub fn into_inner(self) -> ChannelReader {
        self.inner
    }

    /// Reads and decodes one object. Fails with [`KpnError::Eof`] at the
    /// end of the stream.
    pub fn read<T: DeserializeOwned>(&mut self) -> kpn_core::Result<T> {
        let bytes = self.read_raw()?;
        from_bytes(&bytes).map_err(KpnError::from)
    }

    /// Reads one record without decoding it (forwarding without decode).
    /// The payload is read in chunks so a corrupt length prefix fails on
    /// EOF instead of forcing a giant upfront allocation.
    pub fn read_raw(&mut self) -> kpn_core::Result<Vec<u8>> {
        let mut len_buf = [0u8; 4];
        self.inner.read_exact(&mut len_buf)?;
        let len = u32::from_be_bytes(len_buf) as usize;
        let mut bytes = Vec::new();
        let mut remaining = len;
        let mut chunk = [0u8; 4096];
        while remaining > 0 {
            let n = remaining.min(chunk.len());
            self.inner.read_exact(&mut chunk[..n])?;
            bytes.extend_from_slice(&chunk[..n]);
            remaining -= n;
        }
        Ok(bytes)
    }

    /// Closes the stream (writers fail on next write).
    pub fn close(&mut self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpn_core::channel;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Point {
        x: i32,
        y: i32,
        tag: String,
    }

    #[test]
    fn objects_roundtrip_over_channel() {
        let (w, r) = channel();
        let mut ow = ObjectWriter::new(w);
        let mut or = ObjectReader::new(r);
        ow.write(&Point {
            x: 1,
            y: -2,
            tag: "a".into(),
        })
        .unwrap();
        ow.write(&Point {
            x: 3,
            y: 4,
            tag: "b".into(),
        })
        .unwrap();
        drop(ow);
        let p1: Point = or.read().unwrap();
        let p2: Point = or.read().unwrap();
        assert_eq!(p1.tag, "a");
        assert_eq!(
            p2,
            Point {
                x: 3,
                y: 4,
                tag: "b".into()
            }
        );
        assert!(matches!(or.read::<Point>(), Err(kpn_core::Error::Eof)));
    }

    #[test]
    fn raw_forwarding_preserves_records() {
        // A forwarding stage that moves records without decoding them —
        // what Scatter/Gather/Direct/Select do in the parallel framework.
        let (w1, r1) = channel();
        let (w2, r2) = channel();
        let mut ow = ObjectWriter::new(w1);
        ow.write(&42u64).unwrap();
        ow.write(&"payload".to_string()).unwrap();
        drop(ow);
        let mut fwd_in = ObjectReader::new(r1);
        let mut fwd_out = ObjectWriter::new(w2);
        while let Ok(rec) = fwd_in.read_raw() {
            fwd_out.write_raw(&rec).unwrap();
        }
        drop(fwd_out);
        let mut or = ObjectReader::new(r2);
        assert_eq!(or.read::<u64>().unwrap(), 42);
        assert_eq!(or.read::<String>().unwrap(), "payload");
    }

    #[test]
    fn eof_mid_record_is_error() {
        let (mut w, r) = channel();
        // length prefix says 10 bytes, but only 3 arrive
        w.write_all(&10u32.to_be_bytes()).unwrap();
        w.write_all(&[1, 2, 3]).unwrap();
        drop(w);
        let mut or = ObjectReader::new(r);
        assert!(or.read_raw().is_err());
    }
}
