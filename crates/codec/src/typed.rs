//! Typed channel endpoints: a compile-time-typed veneer over the byte
//! channels.
//!
//! The paper deliberately keeps channels byte-oriented so that routing
//! processes stay type-independent (§3.1); this module is the ergonomic
//! shortcut for application endpoints that always carry one Rust type —
//! a [`TypedWriter<T>`]/[`TypedReader<T>`] pair is an
//! `ObjectOutputStream`/`ObjectInputStream` whose element type is fixed,
//! so mismatched reads become compile errors instead of decode errors.

use crate::object::{ObjectReader, ObjectWriter};
use kpn_core::{ChannelReader, ChannelWriter, Result};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::marker::PhantomData;

/// The write end of a channel carrying values of type `T`.
pub struct TypedWriter<T: Serialize> {
    inner: ObjectWriter,
    _t: PhantomData<fn(&T)>,
}

impl<T: Serialize> TypedWriter<T> {
    /// Types a byte-channel writer.
    pub fn new(inner: ChannelWriter) -> Self {
        TypedWriter {
            inner: ObjectWriter::new(inner),
            _t: PhantomData,
        }
    }

    /// Sends one value (blocking while the channel is full).
    pub fn send(&mut self, value: &T) -> Result<()> {
        self.inner.write(value)
    }

    /// Gracefully closes the stream (also happens on drop).
    pub fn close(&mut self) {
        self.inner.close();
    }

    /// Recovers the untyped byte endpoint.
    pub fn into_inner(self) -> ChannelWriter {
        self.inner.into_inner()
    }
}

/// The read end of a channel carrying values of type `T`.
pub struct TypedReader<T: DeserializeOwned> {
    inner: ObjectReader,
    _t: PhantomData<fn() -> T>,
}

impl<T: DeserializeOwned> TypedReader<T> {
    /// Types a byte-channel reader.
    pub fn new(inner: ChannelReader) -> Self {
        TypedReader {
            inner: ObjectReader::new(inner),
            _t: PhantomData,
        }
    }

    /// Receives one value; [`kpn_core::Error::Eof`] at end of stream.
    pub fn recv(&mut self) -> Result<T> {
        self.inner.read()
    }

    /// Iterates until the end of the stream (non-EOF errors end the
    /// iteration silently; use [`TypedReader::recv`] to observe them).
    pub fn iter(&mut self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv().ok())
    }

    /// Closes the stream (writers fail on next write).
    pub fn close(&mut self) {
        self.inner.close();
    }

    /// Recovers the untyped byte endpoint.
    pub fn into_inner(self) -> ChannelReader {
        self.inner.into_inner()
    }
}

/// A typed in-memory channel with the default capacity.
pub fn typed_channel<T: Serialize + DeserializeOwned>() -> (TypedWriter<T>, TypedReader<T>) {
    let (w, r) = kpn_core::channel();
    (TypedWriter::new(w), TypedReader::new(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    struct Sample {
        id: u32,
        values: Vec<f64>,
    }

    #[test]
    fn typed_roundtrip() {
        let (mut w, mut r) = typed_channel::<Sample>();
        let s = Sample {
            id: 1,
            values: vec![0.5, -0.5],
        };
        w.send(&s).unwrap();
        w.close();
        assert_eq!(r.recv().unwrap(), s);
        assert!(r.recv().is_err());
    }

    #[test]
    fn iterator_drains_stream() {
        let (mut w, mut r) = typed_channel::<u64>();
        for i in 0..10u64 {
            w.send(&i).unwrap();
        }
        drop(w);
        let got: Vec<u64> = r.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn typed_over_network_channel() {
        use kpn_core::Network;
        let net = Network::new();
        let (w, r) = net.channel();
        let mut tw = TypedWriter::<String>::new(w);
        let mut tr = TypedReader::<String>::new(r);
        net.add_fn("producer", move |_| {
            for word in ["kahn", "process", "network"] {
                tw.send(&word.to_string())?;
            }
            Ok(())
        });
        net.start();
        assert_eq!(tr.recv().unwrap(), "kahn");
        assert_eq!(tr.recv().unwrap(), "process");
        assert_eq!(tr.recv().unwrap(), "network");
        assert!(tr.recv().is_err());
        drop(tr);
        net.join().unwrap();
    }
}
