//! The deserializer half of the binary format.
//!
//! The format is not self-describing: decoding is driven entirely by the
//! target type, like `bincode` (and unlike JSON). `deserialize_any` is
//! therefore unsupported.

use crate::error::{CodecError, Result};
use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use std::io::Read;

/// Decodes a value from a byte slice, requiring all input to be consumed.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let mut cursor = std::io::Cursor::new(bytes);
    let value = from_reader(&mut cursor)?;
    if (cursor.position() as usize) < bytes.len() {
        return Err(CodecError::Malformed(format!(
            "{} trailing bytes",
            bytes.len() - cursor.position() as usize
        )));
    }
    Ok(value)
}

/// Decodes a value from any `io::Read` (including a channel endpoint);
/// consumes exactly the bytes of one value.
pub fn from_reader<R: Read, T: DeserializeOwned>(reader: R) -> Result<T> {
    let mut de = Deserializer::new(reader);
    T::deserialize(&mut de)
}

/// Streaming deserializer over an `io::Read`.
pub struct Deserializer<R: Read> {
    reader: R,
}

impl<R: Read> Deserializer<R> {
    /// Wraps a reader.
    pub fn new(reader: R) -> Self {
        Deserializer { reader }
    }

    /// Recovers the underlying reader.
    pub fn into_inner(self) -> R {
        self.reader
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N]> {
        let mut buf = [0u8; N];
        self.reader.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn take_len(&mut self) -> Result<usize> {
        let len = u64::from_le_bytes(self.take()?);
        usize::try_from(len).map_err(|_| CodecError::Malformed("length overflow".into()))
    }

    fn take_vec(&mut self) -> Result<Vec<u8>> {
        let len = self.take_len()?;
        // Guard against absurd lengths from corrupt input: read in chunks
        // so a bogus 2^60 length fails on EOF instead of aborting on OOM.
        let mut out = Vec::new();
        let mut remaining = len;
        let mut chunk = [0u8; 4096];
        while remaining > 0 {
            let n = remaining.min(chunk.len());
            self.reader.read_exact(&mut chunk[..n])?;
            out.extend_from_slice(&chunk[..n]);
            remaining -= n;
        }
        Ok(out)
    }

    fn take_string(&mut self) -> Result<String> {
        String::from_utf8(self.take_vec()?)
            .map_err(|e| CodecError::Malformed(format!("invalid utf-8: {e}")))
    }
}

macro_rules! de_fixed {
    ($fn_name:ident, $visit:ident, $ty:ty) => {
        fn $fn_name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            visitor.$visit(<$ty>::from_le_bytes(self.take()?))
        }
    };
}

impl<'de, R: Read> de::Deserializer<'de> for &mut Deserializer<R> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(CodecError::Unsupported(
            "format is not self-describing; deserialize_any unavailable".into(),
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take::<1>()?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(CodecError::Malformed(format!("bad bool byte {other}"))),
        }
    }

    de_fixed!(deserialize_i8, visit_i8, i8);
    de_fixed!(deserialize_i16, visit_i16, i16);
    de_fixed!(deserialize_i32, visit_i32, i32);
    de_fixed!(deserialize_i64, visit_i64, i64);
    de_fixed!(deserialize_i128, visit_i128, i128);
    de_fixed!(deserialize_u8, visit_u8, u8);
    de_fixed!(deserialize_u16, visit_u16, u16);
    de_fixed!(deserialize_u32, visit_u32, u32);
    de_fixed!(deserialize_u64, visit_u64, u64);
    de_fixed!(deserialize_u128, visit_u128, u128);
    de_fixed!(deserialize_f32, visit_f32, f32);
    de_fixed!(deserialize_f64, visit_f64, f64);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let raw = u32::from_le_bytes(self.take()?);
        let c = char::from_u32(raw)
            .ok_or_else(|| CodecError::Malformed(format!("bad char scalar {raw:#x}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_string(self.take_string()?)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_string(self.take_string()?)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_byte_buf(self.take_vec()?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_byte_buf(self.take_vec()?)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take::<1>()?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(CodecError::Malformed(format!("bad option tag {other}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_map(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: fields.len(),
        })
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(Enum { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(CodecError::Unsupported(
            "identifiers are positional in this format".into(),
        ))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(CodecError::Unsupported(
            "cannot skip values in a non-self-describing format".into(),
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, R: Read> {
    de: &'a mut Deserializer<R>,
    remaining: usize,
}

impl<'de, R: Read> de::SeqAccess<'de> for Counted<'_, R> {
    type Error = CodecError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de, R: Read> de::MapAccess<'de> for Counted<'_, R> {
    type Error = CodecError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct Enum<'a, R: Read> {
    de: &'a mut Deserializer<R>,
}

impl<'de, R: Read> de::EnumAccess<'de> for Enum<'_, R> {
    type Error = CodecError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self)> {
        let index = u32::from_le_bytes(self.de.take()?);
        let index_de: de::value::U32Deserializer<CodecError> = index.into_deserializer();
        let value = seed.deserialize(index_de)?;
        Ok((value, self))
    }
}

impl<'de, R: Read> de::VariantAccess<'de> for Enum<'_, R> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted {
            de: self.de,
            remaining: len,
        })
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted {
            de: self.de,
            remaining: fields.len(),
        })
    }
}
