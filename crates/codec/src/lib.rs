//! # kpn-codec — binary object streams for process networks
//!
//! The paper layers `java.io.ObjectOutputStream`/`ObjectInputStream` over
//! channel byte streams to send structured values between processes
//! (§3.1), and relies on Java Object Serialization to ship process
//! subgraphs between compute servers (§4.2). Rust has no ambient object
//! serialization, so this crate provides the substitute: a compact,
//! non-self-describing binary format implemented directly on the serde
//! data model (in the spirit of `bincode`, written from scratch here).
//!
//! * [`to_bytes`] / [`from_bytes`] — one-shot encoding of any
//!   `Serialize`/`Deserialize` value;
//! * [`Serializer`] / [`Deserializer`] — streaming over any
//!   `io::Write`/`io::Read`, usable directly on channel endpoints;
//! * [`ObjectWriter`] / [`ObjectReader`] — the `ObjectOutputStream`
//!   analogue: length-delimited records over a KPN channel, so a reader
//!   always consumes exactly one object per call and untyped stages can
//!   forward whole records.
//!
//! ## Wire format
//!
//! Fixed-width little-endian integers and floats; `bool` as one byte;
//! strings and byte arrays as a `u64` length followed by raw bytes;
//! `Option` as a one-byte tag; sequences and maps as a `u64` length
//! followed by elements; enum variants as a `u32` index followed by the
//! variant payload. Struct and tuple fields are emitted in order with no
//! framing — both sides must agree on the type, as with Java classes
//! sharing a `serialVersionUID`.

#![warn(missing_docs)]

mod de;
mod error;
mod object;
mod ser;
mod typed;

pub use de::{from_bytes, from_reader, Deserializer};
pub use error::{CodecError, Result};
pub use object::{ObjectReader, ObjectWriter};
pub use ser::{to_bytes, to_writer, Serializer};
pub use typed::{typed_channel, TypedReader, TypedWriter};

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T>(value: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug,
    {
        let bytes = to_bytes(value).expect("serialize");
        let back: T = from_bytes(&bytes).expect("deserialize");
        assert_eq!(&back, value);
        back
    }

    #[test]
    fn primitives() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u8);
        roundtrip(&255u8);
        roundtrip(&-1i8);
        roundtrip(&i16::MIN);
        roundtrip(&u16::MAX);
        roundtrip(&i32::MIN);
        roundtrip(&u32::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&u64::MAX);
        roundtrip(&i128::MIN);
        roundtrip(&u128::MAX);
        roundtrip(&0.5f32);
        roundtrip(&core::f64::consts::E);
        roundtrip(&'λ');
    }

    #[test]
    fn strings_and_bytes() {
        roundtrip(&String::from(""));
        roundtrip(&String::from("hello world"));
        roundtrip(&String::from("ユニコード 🚀"));
        roundtrip(&vec![0u8, 1, 2, 255]);
    }

    #[test]
    fn options_and_units() {
        roundtrip(&Option::<u32>::None);
        roundtrip(&Some(42u32));
        roundtrip(&Some(Some(1u8)));
        roundtrip(&());
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct Unit;
        roundtrip(&Unit);
    }

    #[test]
    fn sequences_and_maps() {
        roundtrip(&Vec::<i64>::new());
        roundtrip(&vec![1i64, -2, 3]);
        roundtrip(&vec![vec![1u8], vec![], vec![2, 3]]);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        roundtrip(&m);
        roundtrip(&(1u8, "two".to_string(), 3.0f64));
        roundtrip(&[7i32; 4]);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Task {
        id: u64,
        payload: Vec<u8>,
        label: String,
        retries: Option<u8>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Message {
        Ping,
        Data(Vec<u8>),
        Pair(u32, u32),
        Task { inner: Task, priority: i8 },
    }

    #[test]
    fn structs_and_enums() {
        roundtrip(&Task {
            id: 9,
            payload: vec![1, 2, 3],
            label: "factor".into(),
            retries: Some(2),
        });
        roundtrip(&Message::Ping);
        roundtrip(&Message::Data(vec![9, 9]));
        roundtrip(&Message::Pair(1, 2));
        roundtrip(&Message::Task {
            inner: Task {
                id: 0,
                payload: vec![],
                label: String::new(),
                retries: None,
            },
            priority: -1,
        });
    }

    #[test]
    fn newtype_and_tuple_structs() {
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct Wrapper(u64);
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct Pair(i32, i32);
        roundtrip(&Wrapper(77));
        roundtrip(&Pair(-1, 1));
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = to_bytes(&12345u64).unwrap();
        let short = &bytes[..4];
        let r: Result<u64> = from_bytes(short);
        assert!(r.is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0);
        let r: Result<u8> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn bad_bool_fails() {
        let r: Result<bool> = from_bytes(&[7]);
        assert!(r.is_err());
    }

    #[test]
    fn bad_option_tag_fails() {
        let r: Result<Option<u8>> = from_bytes(&[2, 0]);
        assert!(r.is_err());
    }

    #[test]
    fn bad_variant_index_fails() {
        let bytes = 99u32.to_le_bytes();
        let r: Result<Message> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn bad_utf8_fails() {
        let mut bytes = to_bytes(&String::from("ok")).unwrap();
        let n = bytes.len();
        bytes[n - 1] = 0xFF;
        bytes[n - 2] = 0xFE;
        let r: Result<String> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn char_out_of_range_fails() {
        let bytes = 0xD800u32.to_le_bytes(); // surrogate, not a scalar value
        let r: Result<char> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn huge_length_prefix_fails_on_eof_not_oom() {
        let bytes = (1u64 << 60).to_le_bytes();
        let r: Result<Vec<u8>> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn concatenated_values_stream() {
        // Values written back-to-back decode in order from one reader —
        // the property object streams over channels rely on.
        let mut buf = Vec::new();
        to_writer(&mut buf, &1u32).unwrap();
        to_writer(&mut buf, &"mid".to_string()).unwrap();
        to_writer(&mut buf, &2.5f64).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let a: u32 = from_reader(&mut cursor).unwrap();
        let s: String = from_reader(&mut cursor).unwrap();
        let f: f64 = from_reader(&mut cursor).unwrap();
        assert_eq!((a, s.as_str(), f), (1, "mid", 2.5));
    }

    #[test]
    fn wire_format_is_little_endian_fixed_width() {
        assert_eq!(to_bytes(&1u32).unwrap(), vec![1, 0, 0, 0]);
        assert_eq!(to_bytes(&true).unwrap(), vec![1]);
        assert_eq!(
            to_bytes(&"ab".to_string()).unwrap(),
            vec![2, 0, 0, 0, 0, 0, 0, 0, b'a', b'b']
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }

        fn tree_strategy() -> impl Strategy<Value = Tree> {
            let leaf = any::<i64>().prop_map(Tree::Leaf);
            leaf.prop_recursive(6, 64, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            })
        }

        proptest! {
            #[test]
            fn roundtrip_i64(v in any::<i64>()) {
                roundtrip(&v);
            }

            #[test]
            fn roundtrip_f64(v in any::<f64>().prop_filter("nan", |f| !f.is_nan())) {
                roundtrip(&v);
            }

            #[test]
            fn roundtrip_string(s in ".*") {
                roundtrip(&s);
            }

            #[test]
            fn roundtrip_vec_bytes(v in proptest::collection::vec(any::<u8>(), 0..512)) {
                roundtrip(&v);
            }

            #[test]
            fn roundtrip_nested(v in proptest::collection::vec(
                (any::<u32>(), proptest::option::of(".{0,16}")), 0..32)) {
                roundtrip(&v);
            }

            #[test]
            fn roundtrip_tree(t in tree_strategy()) {
                roundtrip(&t);
            }

            #[test]
            fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
                // Decoding garbage may fail, but must not panic or OOM.
                let _: Result<Message> = from_bytes(&bytes);
                let _: Result<Vec<String>> = from_bytes(&bytes);
                let _: Result<(bool, char, u64)> = from_bytes(&bytes);
            }
        }
    }
}
