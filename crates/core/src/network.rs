//! The network runner: builds a program graph, spawns each process as a
//! task of the configured executor ([`ExecMode`]), tracks dynamically
//! spawned processes, and reports the outcome.
//!
//! This plays the role of the paper's top-level graph-construction code
//! (Figure 6): channels are created, processes are added and wired by
//! moving channel endpoints into them, and the whole graph is started.
//! Unlike the Java version there is no ambient runtime — the [`Network`]
//! owns the deadlock [`Monitor`], the executor, and the join bookkeeping.

use crate::channel::{channel_with_parts, ChannelReader, ChannelWriter, DEFAULT_CAPACITY};
use crate::error::{Error, Result};
use crate::exec::{Exec, ExecMode};
use crate::monitor::{DeadlockPolicy, Monitor, MonitorStats, MonitorTiming};
use crate::process::{FnProcess, Iterative, IterativeProcess, Process, ProcessCtx};
use crate::sim::{ChannelKey, HistoryRecorder};
use crate::topology::{Diagnostic, LintLevel, LintScope, Topology, TopologySnapshot};
use parking_lot::{Condvar, Mutex};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Configuration for a [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Capacity (bytes) for channels created without an explicit size.
    pub default_capacity: usize,
    /// What to do when every process is blocked (§3.5).
    pub deadlock_policy: DeadlockPolicy,
    /// Deadlock-monitor cadence (tick / settle). Tests shrink this to keep
    /// wall-clock time down; forced to [`MonitorTiming::zero`] under sim.
    pub monitor_timing: MonitorTiming,
    /// Which executor runs the processes: one OS thread per process
    /// (paper-faithful default), a fixed worker pool multiplexing many
    /// processes, or the deterministic simulation scheduler. Defaults from
    /// the `KPN_EXEC` environment variable (see [`ExecMode::from_env`]).
    pub mode: ExecMode,
    /// Record every local channel's byte history for the determinacy
    /// oracle ([`Network::histories`]).
    pub record_history: bool,
    /// Enforcement level of the static lint pass run before
    /// [`Network::start`] and after every dynamic spawn. Defaults from the
    /// `KPN_LINT` environment variable (see [`LintLevel::from_env`];
    /// unset means [`LintLevel::Warn`]).
    pub lint: LintLevel,
    /// How the net layer waits on sockets for this process: `None` leaves
    /// the ambient choice (`KPN_NET_BACKEND` or a prior override) alone;
    /// `Some` installs a process-wide override at network construction
    /// (see [`crate::exec::set_net_backend`] — the backend is resolved
    /// per transport, so it is inherently process-global state).
    pub net_backend: Option<crate::exec::NetBackend>,
    /// Apply statically synthesized channel capacities at start: the lint
    /// pass's [`crate::Fix::SetCapacity`] suggestions (L003 cycle sums,
    /// and L006 SDF schedule bounds when `kpn-lint`'s pass is installed)
    /// grow the named channels *before* enforcement and before any process
    /// runs, so statically-sized regions never enter the runtime
    /// detect-deadlock-and-grow loop. Capacities only ever grow — channel
    /// histories are unaffected (Kahn determinacy is capacity-blind).
    /// Defaults from the `KPN_SYNTH` environment variable (any value but
    /// `0` enables it); off when unset.
    pub synthesize_capacities: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            default_capacity: DEFAULT_CAPACITY,
            deadlock_policy: DeadlockPolicy::default(),
            monitor_timing: MonitorTiming::default(),
            mode: ExecMode::default(),
            record_history: false,
            lint: LintLevel::default(),
            net_backend: None,
            synthesize_capacities: std::env::var_os("KPN_SYNTH").is_some_and(|v| v != "0"),
        }
    }
}

impl NetworkConfig {
    /// Run the network on the pooled executor with `n` worker threads
    /// (0 means `available_parallelism()`). An explicit call here outranks
    /// both the `KPN_WORKERS` and `KPN_EXEC` environment variables, which
    /// only shape the [`Default`] mode.
    pub fn workers(mut self, n: usize) -> Self {
        self.mode = ExecMode::Pooled { workers: n };
        self
    }

    /// Select how remote-channel waits block for networks in this process
    /// (installed at construction; outranks `KPN_NET_BACKEND`). The
    /// reactor backend parks fibers on socket readiness instead of
    /// spending a compensated OS thread per blocked remote channel; it
    /// takes effect on executors that own a reactor ([`crate::PooledExec`]
    /// on Linux/x86_64) and falls back to thread blocking elsewhere.
    pub fn net_backend(mut self, backend: crate::exec::NetBackend) -> Self {
        self.net_backend = Some(backend);
        self
    }

    /// Enable [`NetworkConfig::synthesize_capacities`]: apply the lint
    /// pass's synthesized channel capacities before start.
    pub fn synthesizing_capacities(mut self) -> Self {
        self.synthesize_capacities = true;
        self
    }
}

struct NetworkInner {
    config: NetworkConfig,
    monitor: Arc<Monitor>,
    exec: Arc<dyn Exec>,
    recorder: Option<Arc<HistoryRecorder>>,
    /// Tasks spawned but not yet finished. Incremented on the *spawning*
    /// task before the new task exists, so a parent that spawns children
    /// keeps the count positive until every descendant is done — the
    /// executor detaches tasks, so join waits on this counter instead of
    /// OS join handles.
    active: Mutex<usize>,
    done_cv: Condvar,
    pending: Mutex<Vec<Box<dyn Process>>>,
    errors: Mutex<Vec<(String, Error)>>,
    processes_run: Mutex<usize>,
    topology: Arc<Topology>,
}

impl NetworkInner {
    fn lint(&self, scope: LintScope) -> Vec<Diagnostic> {
        crate::topology::run_lint(&self.topology.snapshot(), scope)
    }

    /// Applies the configured lint level to a scope. `Ok(())` means
    /// proceed; `Err(Error::Lint)` means the caller must not spawn.
    fn enforce_lint(&self, scope: LintScope) -> Result<()> {
        let level = self.config.lint;
        if level == LintLevel::Off {
            return Ok(());
        }
        let diags = self.lint(scope);
        if diags.is_empty() {
            return Ok(());
        }
        match level {
            LintLevel::Warn => {
                for d in &diags {
                    eprintln!("kpn-lint warning: {d}");
                }
                Ok(())
            }
            LintLevel::Deny => {
                // Advisory codes (L006: the monitor compensates at run
                // time) warn even under Deny; only the rest block.
                let (advisory, blocking): (Vec<_>, Vec<_>) =
                    diags.into_iter().partition(|d| d.code.is_advisory());
                for d in &advisory {
                    eprintln!("kpn-lint warning: {d}");
                }
                if blocking.is_empty() {
                    Ok(())
                } else {
                    Err(Error::Lint(blocking))
                }
            }
            LintLevel::Off => unreachable!(),
        }
    }

    /// Applies every [`crate::Fix::SetCapacity`] the lint pass can
    /// synthesize for the current topology, growing the named channels in
    /// place. Returns the number of channels that grew.
    fn synthesize_capacities(&self, scope: LintScope) -> usize {
        let fixes: Vec<crate::Fix> = self
            .lint(scope)
            .into_iter()
            .flat_map(|d| d.fixes)
            .collect();
        self.topology.apply_fixes(&fixes)
    }
}

impl Drop for NetworkInner {
    fn drop(&mut self) {
        // Lets a pooled executor retire its idle workers; a no-op for the
        // shared thread executor and for sim.
        self.exec.shutdown();
    }
}

/// Cheaply cloneable handle used by running processes (via
/// [`ProcessCtx`]) to create channels and spawn into the network.
#[derive(Clone)]
pub struct NetworkHandle {
    inner: Arc<NetworkInner>,
}

impl NetworkHandle {
    /// Creates a monitored channel with the network default capacity.
    pub fn channel(&self) -> (ChannelWriter, ChannelReader) {
        self.channel_with_capacity(self.inner.config.default_capacity)
    }

    /// Creates a monitored channel with an explicit capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity channel can never
    /// transfer a byte and never grows, so every write on it stalls
    /// forever. Use [`NetworkHandle::try_channel_with_capacity`] for a
    /// fallible variant.
    pub fn channel_with_capacity(&self, capacity: usize) -> (ChannelWriter, ChannelReader) {
        match self.try_channel_with_capacity(capacity) {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a monitored channel with an explicit capacity, rejecting a
    /// zero capacity with [`Error::Graph`].
    pub fn try_channel_with_capacity(
        &self,
        capacity: usize,
    ) -> Result<(ChannelWriter, ChannelReader)> {
        if capacity == 0 {
            return Err(Error::Graph(
                "channel capacity must be at least 1 byte: a zero-capacity channel \
                 can never transfer data and is never grown by the monitor"
                    .into(),
            ));
        }
        Ok(channel_with_parts(
            capacity,
            Some(self.inner.monitor.clone()),
            self.inner.exec.clone(),
            self.inner.recorder.clone(),
            Some(self.inner.topology.clone()),
        ))
    }

    /// Spawns a process thread immediately, after re-running the lint pass
    /// over the reconfigured topology (the incremental half of the static
    /// verifier: every Sift insertion and Cons splice is re-checked). Under
    /// [`LintLevel::Deny`] a finding records an [`Error::Lint`] against the
    /// process and skips the spawn instead of running a defective graph.
    pub fn spawn(&self, p: Box<dyn Process>) {
        self.inner.topology.register_process(p.lint_tag());
        let scope = LintScope::Reconfigure(p.lint_tag().map(|t| t.id()));
        if let Err(e) = self.inner.enforce_lint(scope) {
            // No monitor abort here: join() must surface the lint error
            // itself, not a masking `Deadlocked`.
            self.inner.errors.lock().push((p.name(), e));
            return;
        }
        // Count the process as live *before* its thread exists, so a
        // partially-started graph can never be mistaken for all-blocked.
        self.inner.monitor.process_started();
        self.spawn_reserved(p);
    }

    /// Spawns a process whose live-count was already reserved by the
    /// caller. [`Network::start`] reserves the whole batch up front so that
    /// early processes finishing (or blocking) while later ones are still
    /// being spawned can never look like an all-blocked network.
    pub(crate) fn spawn_reserved(&self, p: Box<dyn Process>) {
        let inner = self.inner.clone();
        *inner.processes_run.lock() += 1;
        // Count the task on the *spawning* side, before it exists: join can
        // then never observe a window where a parent finished but its
        // freshly spawned child is not yet counted.
        *inner.active.lock() += 1;
        let name = p.name();
        let task_inner = inner.clone();
        let task_name = name.clone();
        inner.exec.spawn(
            &name,
            Box::new(move || {
                let ctx = ProcessCtx::new(NetworkHandle {
                    inner: task_inner.clone(),
                });
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| p.run(&ctx)));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) if e.is_graceful() => {}
                    Ok(Err(e)) => task_inner.errors.lock().push((task_name, e)),
                    Err(_) => task_inner
                        .errors
                        .lock()
                        .push((task_name, Error::Graph("process panicked".into()))),
                }
                // Finish bookkeeping before the task body returns: under sim
                // the scheduler's run token is still held here, so the
                // monitor's end-of-process deadlock check runs under the same
                // serialization as everything else.
                task_inner.monitor.process_finished();
                let mut active = task_inner.active.lock();
                *active -= 1;
                if *active == 0 {
                    task_inner.done_cv.notify_all();
                }
            }),
        );
    }

    /// The network's deadlock monitor.
    pub fn monitor(&self) -> &Arc<Monitor> {
        &self.inner.monitor
    }
}

/// Outcome summary returned by [`Network::join`].
#[derive(Debug)]
pub struct NetworkReport {
    /// Total process threads run, including dynamically spawned ones.
    pub processes_run: usize,
    /// Deadlock-monitor counters (artificial deadlocks resolved, etc.).
    pub monitor: MonitorStats,
    /// Non-graceful process failures `(process name, error)`.
    pub errors: Vec<(String, Error)>,
}

/// A Kahn process network: a set of processes connected by channels,
/// executed with one thread per process.
///
/// ```
/// use kpn_core::{Network, stdlib::{Sequence, Collect}};
/// use std::sync::{Arc, Mutex};
///
/// let net = Network::new();
/// let (w, r) = net.channel();
/// let out = Arc::new(Mutex::new(Vec::new()));
/// net.add(Sequence::new(1, 5, w));
/// net.add(Collect::new(r, out.clone()));
/// net.run().unwrap();
/// assert_eq!(*out.lock().unwrap(), vec![1, 2, 3, 4, 5]);
/// ```
#[derive(Clone)]
pub struct Network {
    handle: NetworkHandle,
}

impl Network {
    /// A network with the default configuration (8 KiB channels, grow-on-
    /// artificial-deadlock policy).
    pub fn new() -> Self {
        Self::with_config(NetworkConfig::default())
    }

    /// A network with an explicit configuration.
    pub fn with_config(config: NetworkConfig) -> Self {
        if let Some(backend) = config.net_backend {
            crate::exec::set_net_backend(Some(backend));
        }
        // Under sim the monitor needs no settling delay: only one task
        // executes at a time, so no concurrent activity can race a
        // deadlock verdict. Its tick also runs from the scheduler's idle
        // hook rather than timeouts.
        let timing = if config.mode.is_sim() {
            MonitorTiming::zero()
        } else {
            config.monitor_timing
        };
        let monitor = Monitor::with_timing(config.deadlock_policy, timing);
        let exec = config.mode.build();
        // Executors with their own quiescence detection (sim's idle hook,
        // the pool's all-workers-idle tick) drive the monitor from there;
        // the thread executor ignores this and relies on park timeouts.
        let m = monitor.clone();
        exec.add_idle_hook(Box::new(move || m.tick()));
        // Surface executor scheduling counters through MonitorStats. Weak:
        // the executor already holds the monitor strongly via the idle
        // hook, so a strong reference back would cycle.
        let weak_exec = Arc::downgrade(&exec);
        monitor.set_scheduler_source(Box::new(move || {
            weak_exec.upgrade().and_then(|e| e.scheduler_stats())
        }));
        let recorder = config.record_history.then(HistoryRecorder::new);
        Network {
            handle: NetworkHandle {
                inner: Arc::new(NetworkInner {
                    config,
                    monitor,
                    exec,
                    recorder,
                    active: Mutex::new(0),
                    done_cv: Condvar::new(),
                    pending: Mutex::new(Vec::new()),
                    errors: Mutex::new(Vec::new()),
                    processes_run: Mutex::new(0),
                    topology: Topology::new(),
                }),
            },
        }
    }

    /// Creates a monitored channel with the default capacity.
    pub fn channel(&self) -> (ChannelWriter, ChannelReader) {
        self.handle.channel()
    }

    /// Creates a monitored channel with an explicit capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (see
    /// [`NetworkHandle::channel_with_capacity`]).
    pub fn channel_with_capacity(&self, capacity: usize) -> (ChannelWriter, ChannelReader) {
        self.handle.channel_with_capacity(capacity)
    }

    /// Creates a monitored channel with an explicit capacity, rejecting a
    /// zero capacity with [`Error::Graph`].
    pub fn try_channel_with_capacity(
        &self,
        capacity: usize,
    ) -> Result<(ChannelWriter, ChannelReader)> {
        self.handle.try_channel_with_capacity(capacity)
    }

    /// Adds an [`Iterative`] process to run when the network starts.
    pub fn add<T: Iterative>(&self, it: T) {
        self.add_process(Box::new(IterativeProcess::new(it)));
    }

    /// Adds a boxed [`Process`].
    pub fn add_process(&self, p: Box<dyn Process>) {
        self.handle.inner.topology.register_process(p.lint_tag());
        self.handle.inner.pending.lock().push(p);
    }

    /// Adds a closure process.
    pub fn add_fn<F>(&self, name: impl Into<String>, body: F)
    where
        F: FnOnce(&ProcessCtx) -> Result<()> + Send + 'static,
    {
        self.add_process(Box::new(FnProcess::new(name, body)));
    }

    /// Spawns all pending processes. Can be called repeatedly; processes
    /// added after `start` must be started again or spawned via
    /// [`NetworkHandle::spawn`].
    ///
    /// Runs the static lint pass first. Under [`LintLevel::Deny`] a finding
    /// keeps every pending process unspawned and records the
    /// [`Error::Lint`] for [`Network::join`] to return; use
    /// [`Network::try_start`] to observe it directly.
    pub fn start(&self) {
        if let Err(e) = self.try_start() {
            self.handle.inner.errors.lock().push(("kpn-lint".into(), e));
        }
    }

    /// Like [`Network::start`], but surfaces a [`LintLevel::Deny`] verdict
    /// as `Err(Error::Lint)` instead of deferring it to `join`. On error no
    /// process has been spawned.
    pub fn try_start(&self) -> Result<()> {
        if self.handle.inner.config.synthesize_capacities {
            // Grow channels to their synthesized capacities before
            // enforcement: a finding the fix resolves (an undercapacitated
            // cycle, a static region below its schedule bound) is gone by
            // the time the lint gate runs. Only the startup topology is
            // synthesized — capacities for processes spawned by dynamic
            // reconfiguration stay with the runtime grow loop (static
            // analysis cannot see a graph that rewires itself).
            self.handle.inner.synthesize_capacities(LintScope::Startup);
        }
        self.handle.inner.enforce_lint(LintScope::Startup)?;
        let pending: Vec<_> = self.handle.inner.pending.lock().drain(..).collect();
        // Reserve the live-count for the whole batch before any thread
        // runs; see `spawn_reserved`.
        for _ in &pending {
            self.handle.inner.monitor.process_started();
        }
        for p in pending {
            self.handle.spawn_reserved(p);
        }
        // Open the schedule only once the whole initial batch is
        // registered, so (under sim) the first decision sees every task.
        self.handle.inner.exec.release();
        Ok(())
    }

    /// Runs the full static lint (built-in checks plus registered extra
    /// passes such as `kpn-lint`'s L005) over the current topology and
    /// returns every finding, regardless of [`NetworkConfig::lint`].
    pub fn lint_diagnostics(&self) -> Vec<Diagnostic> {
        self.handle.inner.lint(LintScope::Startup)
    }

    /// A consistent snapshot of the network's topology metadata, as seen by
    /// the lint pass.
    pub fn topology_snapshot(&self) -> TopologySnapshot {
        self.handle.inner.topology.snapshot()
    }

    /// Waits for every process — including dynamically spawned ones — to
    /// terminate, then reports. Fails with [`Error::Deadlocked`] if the
    /// monitor declared a true deadlock, or [`Error::Graph`] if any process
    /// failed non-gracefully.
    pub fn join(&self) -> Result<NetworkReport> {
        let mut report = self.join_report();
        // A lint denial takes precedence over everything else: a skipped
        // spawn routinely strands its peers (that is exactly what the lint
        // predicted), and reporting the resulting stall as `Deadlocked`
        // would bury the actionable finding.
        let mut lint: Vec<Diagnostic> = Vec::new();
        report.errors.retain(|(_, e)| match e {
            Error::Lint(ds) => {
                lint.extend(ds.iter().cloned());
                false
            }
            _ => true,
        });
        if !lint.is_empty() {
            return Err(Error::Lint(lint));
        }
        if self.handle.inner.monitor.is_aborted() {
            return Err(Error::Deadlocked);
        }
        if !report.errors.is_empty() {
            let summary = report
                .errors
                .iter()
                .map(|(n, e)| format!("{n}: {e}"))
                .collect::<Vec<_>>()
                .join("; ");
            return Err(Error::Graph(format!("process failures: {summary}")));
        }
        Ok(report)
    }

    /// Joins every process and builds the report without classifying the
    /// outcome (shared by [`Network::join`] and [`Network::run_report`]).
    fn join_report(&self) -> NetworkReport {
        {
            let inner = &self.handle.inner;
            let mut active = inner.active.lock();
            while *active > 0 {
                inner.done_cv.wait(&mut active);
            }
        }
        let inner = &self.handle.inner;
        let errors: Vec<(String, Error)> = inner.errors.lock().drain(..).collect();
        NetworkReport {
            processes_run: *inner.processes_run.lock(),
            monitor: inner.monitor.stats(),
            errors,
        }
    }

    /// Starts and joins the network.
    pub fn run(&self) -> Result<NetworkReport> {
        self.start();
        self.join()
    }

    /// Like [`Network::run`] but returns the report even when the network
    /// deadlocked or a process failed (for tests asserting on failure
    /// details).
    pub fn run_report(&self) -> NetworkReport {
        self.start();
        self.join_report()
    }

    /// Aborts the network: every blocked channel operation fails with
    /// [`Error::Deadlocked`], unwinding all processes.
    pub fn abort(&self) {
        self.handle.inner.monitor.abort();
    }

    /// The network's deadlock monitor (stats, abort state).
    pub fn monitor(&self) -> &Arc<Monitor> {
        self.handle.monitor()
    }

    /// Per-channel I/O counters for every live channel of this network
    /// (bytes, blocking episodes, peak occupancy, current capacity).
    pub fn channel_report(&self) -> Vec<(u64, crate::monitor::ChannelIoStats)> {
        self.handle.monitor().channel_report()
    }

    /// Recorded channel histories, sorted by [`ChannelKey`]. `None` unless
    /// [`NetworkConfig::record_history`] was set. Complete once the network
    /// has joined.
    pub fn histories(&self) -> Option<Vec<(ChannelKey, Vec<u8>)>> {
        self.handle.inner.recorder.as_ref().map(|r| r.histories())
    }

    /// A cloneable handle for spawning from outside a process (used by the
    /// distributed compute server).
    pub fn handle(&self) -> NetworkHandle {
        self.handle.clone()
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{DataReader, DataWriter};
    use std::time::Duration;

    #[test]
    fn empty_network_joins_immediately() {
        let net = Network::new();
        let report = net.run().unwrap();
        assert_eq!(report.processes_run, 0);
    }

    #[test]
    fn closure_pipeline_runs() {
        let net = Network::new();
        let (w, r) = net.channel();
        let (sum_w, sum_r) = net.channel();
        net.add_fn("producer", move |_| {
            let mut dw = DataWriter::new(w);
            for i in 0..100 {
                dw.write_i64(i)?;
            }
            Ok(())
        });
        net.add_fn("summer", move |_| {
            let mut dr = DataReader::new(r);
            let mut dw = DataWriter::new(sum_w);
            let mut total = 0;
            loop {
                match dr.read_i64() {
                    Ok(v) => total += v,
                    Err(Error::Eof) => break,
                    Err(e) => return Err(e),
                }
            }
            dw.write_i64(total)?;
            Ok(())
        });
        net.start();
        let mut dr = DataReader::new(sum_r);
        assert_eq!(dr.read_i64().unwrap(), 4950);
        drop(dr);
        net.join().unwrap();
    }

    #[test]
    fn dynamic_spawn_is_joined() {
        let net = Network::new();
        let (w, mut r) = net.channel();
        net.add_fn("parent", move |ctx| {
            let mut w = w;
            ctx.spawn(Box::new(FnProcess::new("child", move |_| {
                w.write_all(b"hi")?;
                Ok(())
            })));
            Ok(())
        });
        net.start();
        let mut buf = [0u8; 2];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        drop(r);
        let report = net.join().unwrap();
        assert_eq!(report.processes_run, 2);
    }

    #[test]
    fn composite_spawns_children_in_own_threads() {
        use crate::process::CompositeProcess;
        let net = Network::new();
        let (w1, mut r1) = net.channel();
        let (w2, mut r2) = net.channel();
        let mut comp = CompositeProcess::new("pair");
        comp.add(Box::new(FnProcess::new("a", move |_| {
            let mut w = w1;
            w.write_all(b"A")?;
            Ok(())
        })));
        comp.add(Box::new(FnProcess::new("b", move |_| {
            let mut w = w2;
            w.write_all(b"B")?;
            Ok(())
        })));
        assert_eq!(comp.len(), 2);
        net.add_process(Box::new(comp));
        net.start();
        let mut a = [0u8; 1];
        let mut b = [0u8; 1];
        r1.read_exact(&mut a).unwrap();
        r2.read_exact(&mut b).unwrap();
        assert_eq!((&a, &b), (b"A", b"B"));
        drop((r1, r2));
        let report = net.join().unwrap();
        assert_eq!(report.processes_run, 3); // composite + 2 children
    }

    #[test]
    fn process_panic_is_reported_and_cascades() {
        let net = Network::new();
        let (w, r) = net.channel();
        net.add_fn("panicker", move |_| {
            let _w = w; // endpoint dropped during unwind -> EOF downstream
            panic!("boom");
        });
        net.add_fn("reader", move |_| {
            let mut r = r;
            let mut buf = [0u8; 1];
            // Sees EOF because the panicking process dropped its writer.
            assert_eq!(r.read(&mut buf)?, 0);
            Ok(())
        });
        net.start();
        let err = net.join().unwrap_err();
        assert!(err.to_string().contains("panicker"));
    }

    #[test]
    fn abort_unblocks_everyone() {
        let net = Network::new();
        let (_w, r) = net.channel();
        net.add_fn("stuck-reader", move |_| {
            let mut r = r;
            let mut buf = [0u8; 1];
            match r.read(&mut buf) {
                Err(Error::Deadlocked) => Ok(()), // expected
                other => panic!("expected Deadlocked, got {other:?}"),
            }
        });
        net.start();
        std::thread::sleep(Duration::from_millis(30));
        net.abort();
        assert!(net.join().is_err());
    }

    #[test]
    fn iterative_limit_runs_exact_count() {
        struct Counter {
            w: DataWriter,
            n: i64,
        }
        impl Iterative for Counter {
            fn name(&self) -> String {
                "counter".into()
            }
            fn limit(&self) -> Option<u64> {
                Some(5)
            }
            fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
                self.w.write_i64(self.n)?;
                self.n += 1;
                Ok(())
            }
        }
        let net = Network::new();
        let (w, r) = net.channel();
        net.add(Counter {
            w: DataWriter::new(w),
            n: 10,
        });
        net.start();
        let mut dr = DataReader::new(r);
        for expect in 10..15 {
            assert_eq!(dr.read_i64().unwrap(), expect);
        }
        assert!(matches!(dr.read_i64(), Err(Error::Eof)));
        drop(dr);
        net.join().unwrap();
    }

    #[test]
    fn on_start_and_on_stop_run_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        #[derive(Default)]
        struct Hooks {
            starts: Arc<AtomicU32>,
            stops: Arc<AtomicU32>,
            steps: Arc<AtomicU32>,
        }
        struct P(Hooks);
        impl Iterative for P {
            fn limit(&self) -> Option<u64> {
                Some(3)
            }
            fn on_start(&mut self, _: &ProcessCtx) -> Result<()> {
                self.0.starts.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            fn step(&mut self, _: &ProcessCtx) -> Result<()> {
                self.0.steps.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            fn on_stop(&mut self) {
                self.0.stops.fetch_add(1, Ordering::SeqCst);
            }
        }
        let hooks = Hooks::default();
        let (s1, s2, s3) = (
            hooks.starts.clone(),
            hooks.stops.clone(),
            hooks.steps.clone(),
        );
        let net = Network::new();
        net.add(P(hooks));
        net.run().unwrap();
        assert_eq!(s1.load(Ordering::SeqCst), 1);
        assert_eq!(s2.load(Ordering::SeqCst), 1);
        assert_eq!(s3.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn on_stop_runs_after_step_error() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        struct Failing(Arc<AtomicBool>);
        impl Iterative for Failing {
            fn step(&mut self, _: &ProcessCtx) -> Result<()> {
                Err(Error::Eof) // graceful stop on first step
            }
            fn on_stop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let flag = Arc::new(AtomicBool::new(false));
        let net = Network::new();
        net.add(Failing(flag.clone()));
        net.run().unwrap();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn run_report_surfaces_failures_without_err() {
        let net = Network::new();
        net.add_fn("failer", |_| Err(Error::Graph("intentional".into())));
        let report = net.run_report();
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].1.to_string().contains("intentional"));
    }

    #[test]
    fn channel_report_counts_live_and_retired() {
        let net = Network::new();
        let (mut w, mut r) = net.channel();
        w.write_all(b"xy").unwrap();
        let mut buf = [0u8; 2];
        r.read_exact(&mut buf).unwrap();
        // Live channel appears.
        assert_eq!(net.channel_report().len(), 1);
        drop(w);
        drop(r);
        // Retired channel still appears, with its final counters.
        let report = net.channel_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].1.bytes_written, 2);
    }
}
