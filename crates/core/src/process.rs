//! Processes and process composition (§3.2).
//!
//! Every process executes in its own thread, created by the owning
//! [`crate::Network`]. New process types either implement [`Process`]
//! directly (full control of the run loop) or — far more commonly —
//! implement [`Iterative`], the analogue of the paper's
//! `IterativeProcess` base class: optional one-time `on_start`/`on_stop`
//! hooks around a repeated `step`, with an optional iteration limit
//! (Figure 4).
//!
//! A step that returns a *graceful* error ([`crate::Error::Eof`] or
//! [`crate::Error::WriteClosed`]) terminates the process normally; its channel
//! endpoints are dropped (= closed), which propagates the termination
//! cascade of §3.4 to its neighbours.

use crate::channel::{ChannelReader, ChannelWriter};
use crate::error::Result;
use crate::network::NetworkHandle;
use crate::topology::ProcessTag;

/// Execution context handed to a running process: lets self-modifying
/// graphs create channels and spawn new processes at run time (§3.3 —
/// "reconfiguration \[is\] initiated by processes and not some external
/// agent").
pub struct ProcessCtx {
    net: NetworkHandle,
}

impl ProcessCtx {
    pub(crate) fn new(net: NetworkHandle) -> Self {
        ProcessCtx { net }
    }

    /// Creates a new channel registered with this network's deadlock
    /// monitor, using the network's default capacity.
    pub fn channel(&self) -> (ChannelWriter, ChannelReader) {
        self.net.channel()
    }

    /// Creates a new monitored channel with an explicit capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (see
    /// [`NetworkHandle::channel_with_capacity`]).
    pub fn channel_with_capacity(&self, capacity: usize) -> (ChannelWriter, ChannelReader) {
        self.net.channel_with_capacity(capacity)
    }

    /// Creates a new monitored channel with an explicit capacity, rejecting
    /// a zero capacity with [`crate::Error::Graph`].
    pub fn try_channel_with_capacity(
        &self,
        capacity: usize,
    ) -> Result<(ChannelWriter, ChannelReader)> {
        self.net.try_channel_with_capacity(capacity)
    }

    /// Spawns a process into the running network (dynamic reconfiguration:
    /// the Sift process of Figures 7/8 uses this to insert Modulo filters).
    pub fn spawn(&self, p: Box<dyn Process>) {
        self.net.spawn(p);
    }

    /// Spawns an [`Iterative`] process into the running network.
    pub fn spawn_iterative<T: Iterative>(&self, it: T) {
        self.net.spawn(Box::new(IterativeProcess::new(it)));
    }

    /// A handle to the owning network (for composing with `kpn-net`).
    pub fn network(&self) -> &NetworkHandle {
        &self.net
    }

    /// Flushes every buffered sink owned by the calling task (see
    /// [`crate::flush`]): buffered typed tokens become visible to their
    /// consumers immediately instead of waiting for a chunk boundary.
    ///
    /// The run loop of [`IterativeProcess`] calls this after `on_start` and
    /// after every `step`, so a conventional one-token-per-step process
    /// behaves exactly as it did unbuffered. Long-running [`Process`] bodies
    /// that batch many writes between reads may call it at their own
    /// batch boundaries; blocking reads also trigger it automatically.
    ///
    /// Errors are the first failure among the flushed sinks
    /// ([`crate::Error::WriteClosed`] once a consumer has stopped — the
    /// normal termination cascade of §3.4).
    pub fn flush_sinks(&self) -> Result<()> {
        crate::flush::flush_task_sinks()
    }
}

/// A process in a Kahn network. Owns its channel endpoints; communicates
/// *only* through them (§1).
pub trait Process: Send + 'static {
    /// Human-readable name used for thread naming and error reports.
    fn name(&self) -> String {
        "process".into()
    }

    /// The body of the process. Runs on a dedicated thread. Returning
    /// (with any result) drops the process and thereby closes all of its
    /// channel endpoints — the paper's `onStop` behaviour.
    fn run(self: Box<Self>, ctx: &ProcessCtx) -> Result<()>;

    /// The process's lint declaration, if it participates in the static
    /// verifier. A declared process creates a [`ProcessTag`] in its
    /// constructor, calls [`crate::ChannelWriter::attach`] /
    /// [`crate::ChannelReader::attach`] on every endpoint it owns, and
    /// returns the tag here. The default `None` marks the process *opaque*:
    /// network-wide endpoint accounting (the L001 dangling-endpoint check)
    /// is suppressed, since an opaque process may own any endpoint
    /// invisibly. Every stdlib process is declared.
    fn lint_tag(&self) -> Option<&ProcessTag> {
        None
    }
}

/// The `IterativeProcess` pattern (§3.2, Figure 4): one-time start/stop
/// hooks around a repeated `step`, with an optional iteration limit.
pub trait Iterative: Send + 'static {
    /// Process name for diagnostics.
    fn name(&self) -> String {
        "iterative".into()
    }

    /// Iteration limit; `None` runs until a step returns an error
    /// (typically the graceful EOF/WriteClosed cascade).
    fn limit(&self) -> Option<u64> {
        None
    }

    /// One-time initialization, invoked as execution begins.
    fn on_start(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        Ok(())
    }

    /// One unit of the process's work.
    fn step(&mut self, ctx: &ProcessCtx) -> Result<()>;

    /// One-time cleanup, invoked as execution ends (even after an error).
    /// Channel endpoints are closed automatically when the process drops.
    fn on_stop(&mut self) {}

    /// Lint declaration, forwarded by [`IterativeProcess`]; see
    /// [`Process::lint_tag`].
    fn lint_tag(&self) -> Option<&ProcessTag> {
        None
    }
}

/// Adapter running an [`Iterative`] under the [`Process`] contract.
pub struct IterativeProcess<T: Iterative> {
    inner: T,
}

impl<T: Iterative> IterativeProcess<T> {
    /// Wraps an iterative process body.
    pub fn new(inner: T) -> Self {
        IterativeProcess { inner }
    }
}

impl<T: Iterative> Process for IterativeProcess<T> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn lint_tag(&self) -> Option<&ProcessTag> {
        self.inner.lint_tag()
    }

    fn run(mut self: Box<Self>, ctx: &ProcessCtx) -> Result<()> {
        let result: Result<()> = (|| {
            self.inner.on_start(ctx)?;
            // Flushing at every step boundary keeps buffered typed streams
            // semantically identical to the unbuffered implementation for
            // the common one-token-per-step process: each step's output is
            // visible before the next step begins (§3.2's run loop), and
            // the monitor's per-channel stats stay in step with execution.
            ctx.flush_sinks()?;
            match self.inner.limit() {
                Some(n) => {
                    for _ in 0..n {
                        self.inner.step(ctx)?;
                        ctx.flush_sinks()?;
                    }
                }
                None => loop {
                    self.inner.step(ctx)?;
                    ctx.flush_sinks()?;
                },
            }
            Ok(())
        })();
        self.inner.on_stop();
        match result {
            // §3.4: EOF / closed-reader exceptions are the normal
            // termination cascade, not failures.
            Err(e) if e.is_graceful() => Ok(()),
            other => other,
        }
    }
}

/// A process defined by a closure — convenient for tests and examples.
pub struct FnProcess<F>
where
    F: FnOnce(&ProcessCtx) -> Result<()> + Send + 'static,
{
    name: String,
    body: F,
}

impl<F> FnProcess<F>
where
    F: FnOnce(&ProcessCtx) -> Result<()> + Send + 'static,
{
    /// Creates a named closure process.
    pub fn new(name: impl Into<String>, body: F) -> Self {
        FnProcess {
            name: name.into(),
            body,
        }
    }
}

impl<F> Process for FnProcess<F>
where
    F: FnOnce(&ProcessCtx) -> Result<()> + Send + 'static,
{
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(self: Box<Self>, ctx: &ProcessCtx) -> Result<()> {
        let result = (self.body)(ctx);
        match result {
            Err(e) if e.is_graceful() => Ok(()),
            other => other,
        }
    }
}

/// Hierarchical composition (§3.2): a process that is itself a collection
/// of processes. Each component gets **its own thread** — running component
/// steps in sequence could introduce deadlock through composition, which
/// the paper explicitly avoids.
pub struct CompositeProcess {
    name: String,
    children: Vec<Box<dyn Process>>,
}

impl CompositeProcess {
    /// An empty composite.
    pub fn new(name: impl Into<String>) -> Self {
        CompositeProcess {
            name: name.into(),
            children: Vec::new(),
        }
    }

    /// Adds a component process (builder style).
    pub fn add(&mut self, p: Box<dyn Process>) -> &mut Self {
        self.children.push(p);
        self
    }

    /// Adds an [`Iterative`] component.
    pub fn add_iterative<T: Iterative>(&mut self, it: T) -> &mut Self {
        self.add(Box::new(IterativeProcess::new(it)))
    }

    /// Number of direct components.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True when the composite has no components.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl Process for CompositeProcess {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(self: Box<Self>, ctx: &ProcessCtx) -> Result<()> {
        for child in self.children {
            ctx.spawn(child);
        }
        Ok(())
    }
}
