//! Static topology capture and the built-in network lints (L001–L004).
//!
//! The paper leaves every structural property of a process network to
//! runtime discovery: a writer whose reader was never wired up simply
//! deadlocks (§3.4), a typed-stream mismatch decodes garbage (§3.1), and an
//! under-provisioned cycle stalls until the monitor grows it (§3.5). This
//! module is the *static* counterpart of that dynamic machinery: as graph
//! construction code creates channels and moves endpoints into processes,
//! the network records a [`TopologySnapshot`] of who holds what, and a
//! configurable lint pass checks it before [`crate::Network::start`] and
//! incrementally after every dynamic reconfiguration.
//!
//! The checks that need only the core runtime live here (L001 dangling
//! endpoint, L002 typed-stream contract mismatch, L003 undercapacitated
//! cycle, L004 orphan process). The `kpn-lint` crate layers the
//! SDF-delegating L005 on top by registering an extra pass through
//! [`register_lint_pass`], and adds a CLI for checking distributed graph
//! specs before deployment.
//!
//! Everything here is *advisory metadata*: declaring an endpoint's owner,
//! stream framing, element type, or token rate never changes runtime
//! behaviour — it only sharpens what the lint pass can prove. Undeclared
//! (opaque) endpoints and processes are treated as compatible with
//! everything, so partially-declared graphs produce no false positives.

use crate::monitor::MonitoredChannel;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

// ---------------------------------------------------------------------------
// Lint configuration
// ---------------------------------------------------------------------------

/// How lint findings are enforced by a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// No lint pass runs.
    Off,
    /// Findings are printed to stderr; execution proceeds.
    Warn,
    /// Findings block `start()` (and dynamic spawns) with
    /// [`crate::Error::Lint`].
    Deny,
}

impl LintLevel {
    /// Resolves the level from the `KPN_LINT` environment variable
    /// (`off` / `warn` / `deny`, case-insensitive), defaulting to
    /// [`LintLevel::Warn`].
    pub fn from_env() -> Self {
        match std::env::var("KPN_LINT") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "off" | "0" | "none" => LintLevel::Off,
                "deny" | "error" => LintLevel::Deny,
                _ => LintLevel::Warn,
            },
            Err(_) => LintLevel::Warn,
        }
    }
}

impl Default for LintLevel {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Stable diagnostic codes emitted by the lint passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// Dangling endpoint: a channel side that was never moved into a
    /// declared process (guaranteed stall for the attached peer).
    L001,
    /// Typed-stream contract mismatch: writer and reader declare
    /// incompatible framing or element types.
    L002,
    /// Undercapacitated cycle: a channel on a directed cycle cannot hold
    /// even one declared token (the Hamming Figure 12 failure).
    L003,
    /// Orphan process: a declared process holding no channel endpoints.
    L004,
    /// SDF-checkable subgraph: rate annotations are inconsistent or imply
    /// larger buffers (delegated to `kpn-sdf` by the `kpn-lint` crate).
    L005,
    /// Static region running below synthesized capacity: the periodic SDF
    /// schedule proves a larger buffer is required, and the attached
    /// [`Fix::SetCapacity`] states the minimal safe size. Advisory (Warn)
    /// by default — the runtime monitor still makes the region progress by
    /// growing, so the finding never blocks a `Deny` start.
    L006,
}

impl DiagCode {
    /// Whether findings with this code are advisory: reported at `Warn`
    /// even under [`LintLevel::Deny`], because the runtime compensates
    /// (the monitor grows undersized static regions on demand).
    pub fn is_advisory(self) -> bool {
        matches!(self, DiagCode::L006)
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagCode::L001 => "L001",
            DiagCode::L002 => "L002",
            DiagCode::L003 => "L003",
            DiagCode::L004 => "L004",
            DiagCode::L005 => "L005",
            DiagCode::L006 => "L006",
        };
        f.write_str(s)
    }
}

/// A machine-applicable edit synthesized by a lint pass. Fixes ride on
/// [`Diagnostic::fixes`]; consumers apply them to serialized `GraphSpec`
/// partitions (`kpn-lint fix`) or to a live topology before start
/// (`NetworkConfig::synthesize_capacities`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fix {
    /// Raise `channel`'s capacity from `current` to `suggested` bytes —
    /// the minimal size the static analysis proves sufficient. Applying a
    /// capacity that is already ≥ `suggested` is a no-op; capacities are
    /// never shrunk.
    SetCapacity {
        /// Id of the channel to resize.
        channel: u64,
        /// Capacity (bytes) at analysis time.
        current: usize,
        /// Synthesized minimal safe capacity (bytes).
        suggested: usize,
    },
}

impl fmt::Display for Fix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fix::SetCapacity {
                channel,
                current,
                suggested,
            } => write!(
                f,
                "set channel {channel} capacity {current} → {suggested} bytes"
            ),
        }
    }
}

/// One structured lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable code identifying the check.
    pub code: DiagCode,
    /// Human-readable explanation of the defect.
    pub message: String,
    /// Name of the implicated process, when one is known.
    pub process: Option<String>,
    /// Id of the implicated channel, when one is known (matches
    /// [`crate::Network::channel_report`] ids).
    pub channel: Option<u64>,
    /// Machine-applicable edits that resolve the finding, when the pass
    /// can synthesize them (empty for purely diagnostic findings).
    pub fixes: Vec<Fix>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)?;
        match (&self.process, self.channel) {
            (Some(p), Some(c)) => write!(f, " (process `{p}`, channel {c})")?,
            (Some(p), None) => write!(f, " (process `{p}`)")?,
            (None, Some(c)) => write!(f, " (channel {c})")?,
            (None, None) => {}
        }
        for fix in &self.fixes {
            write!(f, " [fix: {fix}]")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Declarations: process tags, framing, element types, rates
// ---------------------------------------------------------------------------

static NEXT_TAG_ID: AtomicU64 = AtomicU64::new(1);

/// Identity of a *declared* process, used to attribute channel endpoints to
/// the process that owns them. The stdlib processes create one in their
/// constructors and attach every endpoint they receive; custom processes
/// may do the same and return it from [`crate::Process::lint_tag`] to
/// participate in lint checks (processes without a tag are *opaque*: the
/// network-wide L001 check is suppressed, since an opaque process may own
/// any endpoint invisibly).
#[derive(Clone, Debug)]
pub struct ProcessTag {
    id: u64,
    name: Arc<str>,
    attachments: Arc<AtomicUsize>,
}

impl ProcessTag {
    /// Creates a tag for a process named `name`.
    pub fn new(name: impl AsRef<str>) -> Self {
        ProcessTag {
            id: NEXT_TAG_ID.fetch_add(1, Ordering::Relaxed),
            name: Arc::from(name.as_ref()),
            attachments: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Unique id of this process declaration.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The declared process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many endpoints have ever been attached to this tag (local,
    /// remote, or re-attached after a move).
    pub fn attachments(&self) -> usize {
        self.attachments.load(Ordering::Relaxed)
    }

    pub(crate) fn note_attachment(&self) {
        self.attachments.fetch_add(1, Ordering::Relaxed);
    }
}

/// Stream framing declared by a typed wrapper: the big-endian primitive
/// format of [`crate::DataWriter`]/[`crate::DataReader`], or the
/// length-prefixed record format of `kpn-codec`'s object streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFraming {
    /// Big-endian primitives (`DataWriter`/`DataReader`).
    Data,
    /// Length-prefixed serialized records (`ObjectWriter`/`ObjectReader`).
    Object,
}

impl fmt::Display for StreamFraming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamFraming::Data => f.write_str("data (big-endian primitives)"),
            StreamFraming::Object => f.write_str("object (length-prefixed records)"),
        }
    }
}

/// Lifecycle of one side of a channel, as far as lint can observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SideState {
    /// Created but not yet attributed to anything.
    Open,
    /// Moved into a declared process.
    Attached,
    /// Declared as intentionally driven from outside the network (a main
    /// thread feeding or draining the graph).
    External,
    /// Consumed by a splice (writer retirement / reader append): its bytes
    /// continue through another channel.
    Spliced,
    /// Closed (dropped); the peer sees the §3.4 cascade, not a stall.
    Closed,
}

// ---------------------------------------------------------------------------
// Snapshot types consumed by lint passes
// ---------------------------------------------------------------------------

/// What lint knows about one side of a channel.
#[derive(Debug, Clone)]
pub struct EndpointShape {
    /// Lifecycle state.
    pub state: SideState,
    /// The owning declared process, when attached.
    pub process: Option<u64>,
    /// Declared stream framing, if a typed wrapper was installed.
    pub framing: Option<StreamFraming>,
    /// Declared element type name (e.g. `"i64"`).
    pub item_type: Option<&'static str>,
    /// Encoded size of one declared element, in bytes.
    pub item_size: Option<usize>,
    /// Declared SDF rate (tokens per firing), for L005.
    pub rate: Option<u64>,
}

/// What lint knows about one channel.
#[derive(Debug, Clone)]
pub struct ChannelShape {
    /// Channel id (shared with the monitor's channel report).
    pub id: u64,
    /// Current capacity in bytes.
    pub capacity: usize,
    /// Bytes currently buffered (initial tokens, at start-time lint).
    pub buffered: usize,
    /// The write side.
    pub writer: EndpointShape,
    /// The read side.
    pub reader: EndpointShape,
}

/// What lint knows about one declared process.
#[derive(Debug, Clone)]
pub struct ProcessShape {
    /// The tag id endpoints attach to.
    pub id: u64,
    /// Declared name.
    pub name: String,
    /// Endpoints ever attached to this process.
    pub endpoints: usize,
}

/// A consistent copy of a network's topology metadata, handed to lint
/// passes. Build one with [`crate::Network::topology_snapshot`].
#[derive(Debug, Clone)]
pub struct TopologySnapshot {
    /// Live channels, in creation order.
    pub channels: Vec<ChannelShape>,
    /// Declared processes, in registration order.
    pub processes: Vec<ProcessShape>,
    /// True when every process added to the network is declared (has a
    /// [`ProcessTag`]). L001 requires this: an opaque process could own any
    /// endpoint invisibly.
    pub fully_declared: bool,
}

impl TopologySnapshot {
    /// Looks up a declared process name by tag id.
    pub fn process_name(&self, id: u64) -> Option<&str> {
        self.processes
            .iter()
            .find(|p| p.id == id)
            .map(|p| p.name.as_str())
    }
}

// ---------------------------------------------------------------------------
// The per-network topology registry
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct EndpointInfo {
    state: SideState,
    process: Option<u64>,
    framing: Option<StreamFraming>,
    item_type: Option<&'static str>,
    item_size: Option<usize>,
    rate: Option<u64>,
}

impl EndpointInfo {
    fn new() -> Self {
        EndpointInfo {
            state: SideState::Open,
            process: None,
            framing: None,
            item_type: None,
            item_size: None,
            rate: None,
        }
    }

    fn shape(&self) -> EndpointShape {
        EndpointShape {
            state: self.state,
            process: self.process,
            framing: self.framing,
            item_type: self.item_type,
            item_size: self.item_size,
            rate: self.rate,
        }
    }
}

struct ChanEntry {
    handle: Weak<dyn MonitoredChannel>,
    writer: EndpointInfo,
    reader: EndpointInfo,
}

struct ProcEntry {
    id: u64,
    name: String,
    attachments: Arc<AtomicUsize>,
}

#[derive(Default)]
struct TopoState {
    order: Vec<u64>,
    channels: HashMap<u64, ChanEntry>,
    processes: Vec<ProcEntry>,
    opaque: usize,
}

/// Which side of a channel an endpoint operation concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Side {
    /// The write end.
    Write,
    /// The read end.
    Read,
}

/// Per-network registry of channels, endpoint attributions, and declared
/// processes. Owned by [`crate::Network`]; endpoints carry a weak back-link
/// so moves, declares, and closes update it from wherever they happen.
#[derive(Default)]
pub(crate) struct Topology {
    state: Mutex<TopoState>,
}

impl Topology {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Topology::default())
    }

    pub(crate) fn register_channel(&self, id: u64, handle: Weak<dyn MonitoredChannel>) {
        let mut st = self.state.lock();
        st.order.push(id);
        st.channels.insert(
            id,
            ChanEntry {
                handle,
                writer: EndpointInfo::new(),
                reader: EndpointInfo::new(),
            },
        );
    }

    pub(crate) fn register_process(&self, tag: Option<&ProcessTag>) {
        let mut st = self.state.lock();
        match tag {
            Some(t) => {
                if !st.processes.iter().any(|p| p.id == t.id) {
                    st.processes.push(ProcEntry {
                        id: t.id,
                        name: t.name.to_string(),
                        attachments: t.attachments.clone(),
                    });
                }
            }
            None => st.opaque += 1,
        }
    }

    fn with_side(&self, id: u64, side: Side, f: impl FnOnce(&mut EndpointInfo)) {
        let mut st = self.state.lock();
        if let Some(e) = st.channels.get_mut(&id) {
            let info = match side {
                Side::Write => &mut e.writer,
                Side::Read => &mut e.reader,
            };
            f(info);
        }
    }

    pub(crate) fn attach(&self, id: u64, side: Side, tag: &ProcessTag) {
        self.with_side(id, side, |e| {
            e.state = SideState::Attached;
            e.process = Some(tag.id);
        });
    }

    pub(crate) fn mark(&self, id: u64, side: Side, state: SideState) {
        self.with_side(id, side, |e| {
            // Closed and Spliced are terminal: the drop-time close of an
            // endpoint consumed by a splice must not repaint it as Closed,
            // and nothing resurrects a closed side.
            if e.state != SideState::Closed && e.state != SideState::Spliced {
                e.state = state;
            }
        });
    }

    pub(crate) fn declare_framing(&self, id: u64, side: Side, framing: StreamFraming) {
        self.with_side(id, side, |e| e.framing = Some(framing));
    }

    pub(crate) fn declare_item(&self, id: u64, side: Side, name: &'static str, size: usize) {
        self.with_side(id, side, |e| {
            e.item_type = Some(name);
            e.item_size = Some(size);
        });
    }

    pub(crate) fn declare_rate(&self, id: u64, side: Side, rate: u64) {
        self.with_side(id, side, |e| e.rate = Some(rate));
    }

    /// Applies [`Fix::SetCapacity`] edits to the live channels they name:
    /// each channel grows to at least the suggested capacity (growing is
    /// monotone — a channel already at or above the suggestion is left
    /// alone, so applying fixes is idempotent). Returns the number of
    /// channels that actually grew.
    pub(crate) fn apply_fixes(&self, fixes: &[Fix]) -> usize {
        let mut grew = 0;
        let st = self.state.lock();
        for fix in fixes {
            let Fix::SetCapacity {
                channel, suggested, ..
            } = fix;
            if let Some(live) = st.channels.get(channel).and_then(|e| e.handle.upgrade()) {
                if live.ensure_capacity(*suggested) {
                    grew += 1;
                }
            }
        }
        grew
    }

    /// Builds a consistent snapshot, lazily dropping channels whose shared
    /// state is gone (both endpoints finished — nothing left to lint).
    pub(crate) fn snapshot(&self) -> TopologySnapshot {
        let mut st = self.state.lock();
        let mut channels = Vec::with_capacity(st.order.len());
        let mut dead = Vec::new();
        for &id in &st.order {
            let Some(entry) = st.channels.get(&id) else {
                continue;
            };
            match entry.handle.upgrade() {
                Some(live) => channels.push(ChannelShape {
                    id,
                    capacity: live.capacity(),
                    buffered: live.buffered(),
                    writer: entry.writer.shape(),
                    reader: entry.reader.shape(),
                }),
                None => dead.push(id),
            }
        }
        for id in &dead {
            st.channels.remove(id);
        }
        if !dead.is_empty() {
            st.order.retain(|id| !dead.contains(id));
        }
        TopologySnapshot {
            channels,
            processes: st
                .processes
                .iter()
                .map(|p| ProcessShape {
                    id: p.id,
                    name: p.name.clone(),
                    endpoints: p.attachments.load(Ordering::Relaxed),
                })
                .collect(),
            fully_declared: st.opaque == 0,
        }
    }
}

/// Weak back-link carried by channel endpoints created through a network.
#[derive(Clone)]
pub(crate) struct EndpointTopo {
    pub(crate) topo: Arc<Topology>,
    pub(crate) channel: u64,
    pub(crate) side: Side,
}

impl EndpointTopo {
    pub(crate) fn attach(&self, tag: &ProcessTag) {
        self.topo.attach(self.channel, self.side, tag);
    }

    pub(crate) fn mark(&self, state: SideState) {
        self.topo.mark(self.channel, self.side, state);
    }

    pub(crate) fn declare_framing(&self, framing: StreamFraming) {
        self.topo.declare_framing(self.channel, self.side, framing);
    }

    pub(crate) fn declare_item(&self, name: &'static str, size: usize) {
        self.topo.declare_item(self.channel, self.side, name, size);
    }

    pub(crate) fn declare_rate(&self, rate: u64) {
        self.topo.declare_rate(self.channel, self.side, rate);
    }
}

// ---------------------------------------------------------------------------
// Built-in checks (L001–L004)
// ---------------------------------------------------------------------------

/// What a lint run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintScope {
    /// Pre-start: everything.
    Startup,
    /// After a dynamic reconfiguration: skips L001 (endpoints legitimately
    /// float between processes mid-splice) and restricts L004 to the newly
    /// spawned process (`Some(tag id)`), if it is declared.
    Reconfigure(Option<u64>),
}

fn name_of(snap: &TopologySnapshot, id: Option<u64>) -> Option<String> {
    id.and_then(|p| snap.process_name(p)).map(str::to_owned)
}

/// L001: a channel side that is still [`SideState::Open`] while the peer
/// side is attached to a declared process — that process is guaranteed to
/// stall (reader blocks forever on an unwritten channel; writer blocks
/// forever once the undrained channel fills). Only meaningful when the
/// graph is fully declared; endpoints intentionally driven from outside the
/// network are exempted via `declare_external`.
fn check_dangling(snap: &TopologySnapshot, out: &mut Vec<Diagnostic>) {
    if !snap.fully_declared {
        return;
    }
    for ch in &snap.channels {
        if ch.writer.state == SideState::Open && ch.reader.state == SideState::Attached {
            out.push(Diagnostic {
                code: DiagCode::L001,
                message: format!(
                    "channel {} writer was never moved into a process; \
                     its reader will block forever",
                    ch.id
                ),
                process: name_of(snap, ch.reader.process),
                channel: Some(ch.id),
                fixes: Vec::new(),
            });
        }
        if ch.reader.state == SideState::Open && ch.writer.state == SideState::Attached {
            out.push(Diagnostic {
                code: DiagCode::L001,
                message: format!(
                    "channel {} reader was never moved into a process; \
                     its writer will stall once the channel fills",
                    ch.id
                ),
                process: name_of(snap, ch.writer.process),
                channel: Some(ch.id),
                fixes: Vec::new(),
            });
        }
    }
}

/// L002: both sides declared a stream contract and they disagree — framing
/// (data vs. object) or element type. Raw byte processes declare nothing
/// and are compatible with everything (§3.1's type-independence).
fn check_contracts(snap: &TopologySnapshot, out: &mut Vec<Diagnostic>) {
    for ch in &snap.channels {
        if let (Some(wf), Some(rf)) = (ch.writer.framing, ch.reader.framing) {
            if wf != rf {
                out.push(Diagnostic {
                    code: DiagCode::L002,
                    message: format!(
                        "channel {} framing mismatch: writer uses {wf}, reader expects {rf}",
                        ch.id
                    ),
                    process: name_of(snap, ch.reader.process),
                    channel: Some(ch.id),
                    fixes: Vec::new(),
                });
                continue;
            }
        }
        if let (Some(wt), Some(rt)) = (ch.writer.item_type, ch.reader.item_type) {
            if wt != rt {
                out.push(Diagnostic {
                    code: DiagCode::L002,
                    message: format!(
                        "channel {} element type mismatch: writer produces `{wt}`, \
                         reader expects `{rt}`",
                        ch.id
                    ),
                    process: name_of(snap, ch.reader.process),
                    channel: Some(ch.id),
                    fixes: Vec::new(),
                });
            }
        }
    }
}

/// Strongly connected components of the process graph (iterative Tarjan).
/// Nodes are declared-process tag ids; edges are channels attached on both
/// sides. Returns a component id per node.
fn sccs(nodes: &[u64], edges: &[(u64, u64)]) -> HashMap<u64, usize> {
    let index_of: HashMap<u64, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let n = nodes.len();
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        if let (Some(&ia), Some(&ib)) = (index_of.get(&a), index_of.get(&b)) {
            adj[ia].push(ib);
        }
    }
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    // Iterative Tarjan: (node, next child position) frames.
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| (node, comp[i]))
        .collect()
}

/// The declared token size of a channel (1-byte tokens when neither side
/// declared an element type — no false positives).
fn token_size(ch: &ChannelShape) -> usize {
    ch.writer
        .item_size
        .or(ch.reader.item_size)
        .unwrap_or(1)
        .max(1)
}

/// L003: a channel on a directed cycle whose capacity (plus any initially
/// buffered bytes) cannot hold even one declared token. Tokens must
/// *circulate* through every channel of a cycle, so such a cycle can make
/// no progress without the monitor growing it — the Hamming Figure 12
/// failure, diagnosed before the network runs. Channels without a declared
/// element type assume 1-byte tokens (no false positives).
///
/// The diagnostic is deterministic and actionable: the cycle's channels
/// are reported in creation order, the message carries the cycle's
/// minimum-capacity sum (one declared token per cycle channel — the least
/// total buffering under which the cycle can circulate at all), and each
/// finding attaches a [`Fix::SetCapacity`] suggesting that sum as the
/// channel's capacity. Without rate declarations the cycle sum is the best
/// static lower bound available; rate-declared regions get the exact
/// schedule-derived bound from the L006 pass instead.
fn check_cycles(snap: &TopologySnapshot, out: &mut Vec<Diagnostic>) {
    let mut nodes: Vec<u64> = Vec::new();
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for ch in &snap.channels {
        if let (Some(w), Some(r)) = (ch.writer.process, ch.reader.process) {
            if !nodes.contains(&w) {
                nodes.push(w);
            }
            if !nodes.contains(&r) {
                nodes.push(r);
            }
            edges.push((w, r));
        }
    }
    if nodes.is_empty() {
        return;
    }
    let comp = sccs(&nodes, &edges);
    // A component is cyclic iff it has an internal edge (covers self-loops
    // and multi-node cycles alike).
    let mut cyclic: Vec<usize> = Vec::new();
    for &(a, b) in &edges {
        if comp[&a] == comp[&b] && !cyclic.contains(&comp[&a]) {
            cyclic.push(comp[&a]);
        }
    }
    // Per cyclic component: its channels in creation order (snapshot order
    // is creation order) and the minimum-capacity sum across them.
    let mut cycle_channels: HashMap<usize, Vec<u64>> = HashMap::new();
    let mut cycle_min_sum: HashMap<usize, usize> = HashMap::new();
    for ch in &snap.channels {
        let (Some(w), Some(r)) = (ch.writer.process, ch.reader.process) else {
            continue;
        };
        if comp[&w] != comp[&r] || !cyclic.contains(&comp[&w]) {
            continue;
        }
        cycle_channels.entry(comp[&w]).or_default().push(ch.id);
        *cycle_min_sum.entry(comp[&w]).or_default() += token_size(ch);
    }
    for ch in &snap.channels {
        let (Some(w), Some(r)) = (ch.writer.process, ch.reader.process) else {
            continue;
        };
        if comp[&w] != comp[&r] || !cyclic.contains(&comp[&w]) {
            continue;
        }
        let token = token_size(ch);
        if ch.capacity + ch.buffered < token {
            let members = &cycle_channels[&comp[&w]];
            let min_sum = cycle_min_sum[&comp[&w]];
            let listed = members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            out.push(Diagnostic {
                code: DiagCode::L003,
                message: format!(
                    "channel {} lies on a cycle (channels {listed}) but its capacity \
                     ({} bytes) cannot hold one {token}-byte token; the cycle needs at \
                     least {min_sum} bytes of total capacity to circulate without \
                     monitor growth",
                    ch.id, ch.capacity
                ),
                process: name_of(snap, ch.writer.process),
                channel: Some(ch.id),
                fixes: vec![Fix::SetCapacity {
                    channel: ch.id,
                    current: ch.capacity,
                    suggested: min_sum.max(token),
                }],
            });
        }
    }
}

/// L004: a declared process that never held a channel endpoint. A process
/// in a Kahn network communicates *only* through channels (§1), so an
/// endpoint-less process can neither produce nor consume anything.
fn check_orphans(snap: &TopologySnapshot, only: Option<u64>, out: &mut Vec<Diagnostic>) {
    for p in &snap.processes {
        if let Some(id) = only {
            if p.id != id {
                continue;
            }
        }
        if p.endpoints == 0 {
            out.push(Diagnostic {
                code: DiagCode::L004,
                message: format!(
                    "process `{}` holds no channel endpoints; it can neither \
                     produce nor consume data",
                    p.name
                ),
                process: Some(p.name.clone()),
                channel: None,
                fixes: Vec::new(),
            });
        }
    }
}

/// Runs the built-in checks (L001–L004) over a snapshot.
pub fn check_builtin(snap: &TopologySnapshot, scope: LintScope) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    match scope {
        LintScope::Startup => {
            check_dangling(snap, &mut out);
            check_contracts(snap, &mut out);
            check_cycles(snap, &mut out);
            check_orphans(snap, None, &mut out);
        }
        LintScope::Reconfigure(new_process) => {
            check_contracts(snap, &mut out);
            check_cycles(snap, &mut out);
            if new_process.is_some() {
                check_orphans(snap, new_process, &mut out);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Extra passes (kpn-lint's L005 hooks in here)
// ---------------------------------------------------------------------------

/// An additional lint pass over a topology snapshot.
pub type LintPass = dyn Fn(&TopologySnapshot) -> Vec<Diagnostic> + Send + Sync;

static EXTRA_PASSES: Mutex<Vec<Arc<LintPass>>> = Mutex::new(Vec::new());

/// Registers an additional lint pass, run by every network's lint after
/// the built-in checks. Used by `kpn-lint::install()` to add the
/// SDF-delegating L005 without `kpn-core` depending on `kpn-sdf`.
pub fn register_lint_pass(pass: Arc<LintPass>) {
    EXTRA_PASSES.lock().push(pass);
}

/// Runs every registered extra pass.
pub fn run_extra_passes(snap: &TopologySnapshot) -> Vec<Diagnostic> {
    let passes: Vec<Arc<LintPass>> = EXTRA_PASSES.lock().clone();
    let mut out = Vec::new();
    for p in &passes {
        out.extend(p(snap));
    }
    out
}

/// Runs the complete lint: built-in checks plus registered extra passes.
pub fn run_lint(snap: &TopologySnapshot, scope: LintScope) -> Vec<Diagnostic> {
    let mut out = check_builtin(snap, scope);
    out.extend(run_extra_passes(snap));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(state: SideState, process: Option<u64>) -> EndpointShape {
        EndpointShape {
            state,
            process,
            framing: None,
            item_type: None,
            item_size: None,
            rate: None,
        }
    }

    fn chan(id: u64, w: EndpointShape, r: EndpointShape) -> ChannelShape {
        ChannelShape {
            id,
            capacity: 1024,
            buffered: 0,
            writer: w,
            reader: r,
        }
    }

    fn proc_shape(id: u64, name: &str, endpoints: usize) -> ProcessShape {
        ProcessShape {
            id,
            name: name.into(),
            endpoints,
        }
    }

    #[test]
    fn dangling_writer_flagged_only_when_fully_declared() {
        let mut snap = TopologySnapshot {
            channels: vec![chan(
                1,
                shape(SideState::Open, None),
                shape(SideState::Attached, Some(7)),
            )],
            processes: vec![proc_shape(7, "sink", 1)],
            fully_declared: true,
        };
        let diags = check_builtin(&snap, LintScope::Startup);
        assert!(diags.iter().any(|d| d.code == DiagCode::L001));
        snap.fully_declared = false;
        let diags = check_builtin(&snap, LintScope::Startup);
        assert!(!diags.iter().any(|d| d.code == DiagCode::L001));
    }

    #[test]
    fn closed_or_external_sides_are_not_dangling() {
        for st in [SideState::Closed, SideState::External, SideState::Spliced] {
            let snap = TopologySnapshot {
                channels: vec![chan(
                    1,
                    shape(st, None),
                    shape(SideState::Attached, Some(7)),
                )],
                processes: vec![proc_shape(7, "sink", 1)],
                fully_declared: true,
            };
            let diags = check_builtin(&snap, LintScope::Startup);
            assert!(
                !diags.iter().any(|d| d.code == DiagCode::L001),
                "state {st:?} must not be dangling"
            );
        }
    }

    #[test]
    fn reconfigure_scope_skips_dangling() {
        let snap = TopologySnapshot {
            channels: vec![chan(
                1,
                shape(SideState::Open, None),
                shape(SideState::Attached, Some(7)),
            )],
            processes: vec![proc_shape(7, "sink", 1)],
            fully_declared: true,
        };
        let diags = check_builtin(&snap, LintScope::Reconfigure(None));
        assert!(diags.is_empty());
    }

    #[test]
    fn contract_mismatch_requires_both_sides() {
        let mut w = shape(SideState::Attached, Some(1));
        w.item_type = Some("f64");
        w.item_size = Some(8);
        let mut r = shape(SideState::Attached, Some(2));
        r.item_type = Some("i64");
        r.item_size = Some(8);
        let snap = TopologySnapshot {
            channels: vec![chan(1, w.clone(), r)],
            processes: vec![proc_shape(1, "a", 1), proc_shape(2, "b", 1)],
            fully_declared: true,
        };
        let diags = check_builtin(&snap, LintScope::Startup);
        assert!(diags.iter().any(|d| d.code == DiagCode::L002));
        // One-sided declaration: compatible.
        let snap = TopologySnapshot {
            channels: vec![chan(1, w, shape(SideState::Attached, Some(2)))],
            processes: vec![proc_shape(1, "a", 1), proc_shape(2, "b", 1)],
            fully_declared: true,
        };
        assert!(check_builtin(&snap, LintScope::Startup).is_empty());
    }

    #[test]
    fn tiny_cycle_channel_flagged() {
        // 1 -> 2 -> 1, with an 8-byte declared token on a 4-byte channel.
        let mut fwd_w = shape(SideState::Attached, Some(1));
        fwd_w.item_type = Some("i64");
        fwd_w.item_size = Some(8);
        let fwd_r = shape(SideState::Attached, Some(2));
        let mut fwd = chan(10, fwd_w, fwd_r);
        fwd.capacity = 4;
        let back = chan(
            11,
            shape(SideState::Attached, Some(2)),
            shape(SideState::Attached, Some(1)),
        );
        let snap = TopologySnapshot {
            channels: vec![fwd, back],
            processes: vec![proc_shape(1, "a", 2), proc_shape(2, "b", 2)],
            fully_declared: true,
        };
        let diags = check_builtin(&snap, LintScope::Startup);
        let l3: Vec<_> = diags.iter().filter(|d| d.code == DiagCode::L003).collect();
        assert_eq!(l3.len(), 1);
        assert_eq!(l3[0].channel, Some(10));
    }

    #[test]
    fn dag_channels_never_flag_cycles() {
        let mut w = shape(SideState::Attached, Some(1));
        w.item_size = Some(8);
        w.item_type = Some("i64");
        let mut ch = chan(1, w, shape(SideState::Attached, Some(2)));
        ch.capacity = 2; // tiny, but not on a cycle
        let snap = TopologySnapshot {
            channels: vec![ch],
            processes: vec![proc_shape(1, "a", 1), proc_shape(2, "b", 1)],
            fully_declared: true,
        };
        assert!(check_builtin(&snap, LintScope::Startup).is_empty());
    }

    #[test]
    fn orphan_process_flagged() {
        let snap = TopologySnapshot {
            channels: vec![],
            processes: vec![proc_shape(1, "loner", 0)],
            fully_declared: true,
        };
        let diags = check_builtin(&snap, LintScope::Startup);
        assert!(diags.iter().any(|d| d.code == DiagCode::L004));
        // Reconfigure scope: only the new process is checked.
        let diags = check_builtin(&snap, LintScope::Reconfigure(Some(2)));
        assert!(diags.is_empty());
        let diags = check_builtin(&snap, LintScope::Reconfigure(Some(1)));
        assert!(diags.iter().any(|d| d.code == DiagCode::L004));
    }

    #[test]
    fn self_loop_is_cyclic() {
        let mut w = shape(SideState::Attached, Some(1));
        w.item_size = Some(8);
        w.item_type = Some("i64");
        let mut ch = chan(1, w, shape(SideState::Attached, Some(1)));
        ch.capacity = 4;
        let snap = TopologySnapshot {
            channels: vec![ch],
            processes: vec![proc_shape(1, "loop", 2)],
            fully_declared: true,
        };
        let diags = check_builtin(&snap, LintScope::Startup);
        assert!(diags.iter().any(|d| d.code == DiagCode::L003));
    }

    #[test]
    fn diagnostic_display_includes_code_and_names() {
        let d = Diagnostic {
            code: DiagCode::L001,
            message: "writer dangling".into(),
            process: Some("sink".into()),
            channel: Some(3),
            fixes: Vec::new(),
        };
        let s = d.to_string();
        assert!(s.starts_with("L001:"));
        assert!(s.contains("sink"));
        assert!(s.contains("channel 3"));
    }

    #[test]
    fn diagnostic_display_renders_fixes() {
        let d = Diagnostic {
            code: DiagCode::L006,
            message: "below synthesized capacity".into(),
            process: None,
            channel: Some(4),
            fixes: vec![Fix::SetCapacity {
                channel: 4,
                current: 8,
                suggested: 32,
            }],
        };
        let s = d.to_string();
        assert!(s.contains("fix:"), "{s}");
        assert!(s.contains("8 → 32"), "{s}");
        assert!(DiagCode::L006.is_advisory());
        assert!(!DiagCode::L003.is_advisory());
    }

    #[test]
    fn cycle_message_lists_channels_in_creation_order_with_min_sum() {
        // 1 -> 2 -> 1 over channels 11 (declared 8-byte) and 10 (opaque,
        // 1-byte tokens): min sum = 8 + 1 = 9 bytes; the listing follows
        // snapshot (creation) order regardless of ids.
        let mut fwd_w = shape(SideState::Attached, Some(1));
        fwd_w.item_type = Some("i64");
        fwd_w.item_size = Some(8);
        let mut fwd = chan(11, fwd_w, shape(SideState::Attached, Some(2)));
        fwd.capacity = 4;
        let back = chan(
            10,
            shape(SideState::Attached, Some(2)),
            shape(SideState::Attached, Some(1)),
        );
        let snap = TopologySnapshot {
            channels: vec![fwd, back],
            processes: vec![proc_shape(1, "a", 2), proc_shape(2, "b", 2)],
            fully_declared: true,
        };
        let diags = check_builtin(&snap, LintScope::Startup);
        let l3: Vec<_> = diags.iter().filter(|d| d.code == DiagCode::L003).collect();
        assert_eq!(l3.len(), 1);
        assert!(l3[0].message.contains("channels 11, 10"), "{}", l3[0].message);
        assert!(l3[0].message.contains("at least 9 bytes"), "{}", l3[0].message);
        assert_eq!(
            l3[0].fixes,
            vec![Fix::SetCapacity {
                channel: 11,
                current: 4,
                suggested: 9,
            }]
        );
    }

    #[test]
    fn lint_level_from_env_values() {
        // Not using set_var (process-global); just exercise the parser via
        // default when unset.
        let lvl = LintLevel::from_env();
        assert!(matches!(lvl, LintLevel::Warn | LintLevel::Deny | LintLevel::Off));
    }
}
