//! Ready-made example networks from the paper, used by the examples, the
//! integration tests, the determinacy property tests, and the benchmarks.
//!
//! Each builder wires processes into a supplied [`Network`] and returns the
//! collector that will receive the observable output once the network runs.

use crate::network::Network;
use crate::stdlib::Collect;
use crate::stdlib::{
    Average, CollectF64, Cons, Constant, ConstantF64, Divide, Duplicate, Equal, Guard, ModRouter,
    OrderedMerge, Scale, Sequence, Sift,
};
use std::sync::{Arc, Mutex};

/// Options controlling how the example graphs are wired — varied by the
/// determinacy property tests to perturb scheduling without changing
/// semantics.
#[derive(Debug, Clone)]
pub struct GraphOptions {
    /// Capacity for every channel created by the builder.
    pub channel_capacity: usize,
    /// Use self-removing `Cons` processes (Figures 9/10) where possible.
    pub self_removing_cons: bool,
}

impl Default for GraphOptions {
    fn default() -> Self {
        GraphOptions {
            channel_capacity: crate::channel::DEFAULT_CAPACITY,
            self_removing_cons: false,
        }
    }
}

/// Builds the Fibonacci network of Figures 2/6: the first `count` Fibonacci
/// numbers (1, 1, 2, 3, 5, …) are delivered to the returned collector.
pub fn fibonacci(net: &Network, count: u64, opts: &GraphOptions) -> Arc<Mutex<Vec<i64>>> {
    let cap = opts.channel_capacity;
    // Channel names follow Figure 6.
    let (ab_w, ab_r) = net.channel_with_capacity(cap);
    let (be_w, be_r) = net.channel_with_capacity(cap);
    let (cd_w, cd_r) = net.channel_with_capacity(cap);
    let (df_w, df_r) = net.channel_with_capacity(cap);
    let (ed_w, ed_r) = net.channel_with_capacity(cap);
    let (eg_w, eg_r) = net.channel_with_capacity(cap);
    let (fg_w, fg_r) = net.channel_with_capacity(cap);
    let (fh_w, fh_r) = net.channel_with_capacity(cap);
    let (gb_w, gb_r) = net.channel_with_capacity(cap);

    let cons1 = Cons::new(ab_r, gb_r, be_w);
    let cons2 = Cons::new(cd_r, ed_r, df_w);
    let (cons1, cons2) = if opts.self_removing_cons {
        (cons1.removing_self(), cons2.removing_self())
    } else {
        (cons1, cons2)
    };

    net.add(Constant::new(1, ab_w).with_limit(1));
    net.add(cons1);
    net.add(Duplicate::two(be_r, ed_w, eg_w));
    net.add(Add::new(eg_r, fg_r, gb_w));
    net.add(Constant::new(1, cd_w).with_limit(1));
    net.add(cons2);
    net.add(Duplicate::two(df_r, fh_w, fg_w));
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(fh_r, out.clone()).with_limit(count));
    out
}

use crate::stdlib::Add;

/// Builds the Hamming-number network of Figure 12: the ordered sequence of
/// integers of the form `2^k · 3^m · 5^n` (1, 2, 3, 4, 5, 6, 8, …). The
/// channels of this graph grow without bound under Kahn semantics, so with
/// bounded channels it exercises the deadlock monitor's growth policy.
pub fn hamming(net: &Network, count: u64, opts: &GraphOptions) -> Arc<Mutex<Vec<i64>>> {
    let cap = opts.channel_capacity;
    let (init_w, init_r) = net.channel_with_capacity(cap);
    let (merged_w, merged_r) = net.channel_with_capacity(cap);
    let (h_w, h_r) = net.channel_with_capacity(cap);
    let (out_w, out_r) = net.channel_with_capacity(cap);
    let (in2_w, in2_r) = net.channel_with_capacity(cap);
    let (in3_w, in3_r) = net.channel_with_capacity(cap);
    let (in5_w, in5_r) = net.channel_with_capacity(cap);
    let (m2_w, m2_r) = net.channel_with_capacity(cap);
    let (m3_w, m3_r) = net.channel_with_capacity(cap);
    let (m5_w, m5_r) = net.channel_with_capacity(cap);

    net.add(Constant::new(1, init_w).with_limit(1));
    let cons = Cons::new(init_r, merged_r, h_w);
    net.add(if opts.self_removing_cons {
        cons.removing_self()
    } else {
        cons
    });
    net.add(Duplicate::new(h_r, vec![out_w, in2_w, in3_w, in5_w]));
    net.add(Scale::new(2, in2_r, m2_w));
    net.add(Scale::new(3, in3_r, m3_w));
    net.add(Scale::new(5, in5_r, m5_w));
    net.add(OrderedMerge::new(vec![m2_r, m3_r, m5_r], merged_w));
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(out_r, out.clone()).with_limit(count));
    out
}

/// Builds the Sieve of Eratosthenes (Figure 7) producing all primes `< n`
/// by limiting the Sequence process (§3.4, first termination mode: every
/// produced datum is consumed before the graph winds down).
pub fn primes_below(net: &Network, n: i64, opts: &GraphOptions) -> Arc<Mutex<Vec<i64>>> {
    let cap = opts.channel_capacity;
    let (seq_w, seq_r) = net.channel_with_capacity(cap);
    let (out_w, out_r) = net.channel_with_capacity(cap);
    net.add(Sequence::new(2, (n - 2).max(0) as u64, seq_w));
    net.add(Sift::new(seq_r, out_w));
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(out_r, out.clone()));
    out
}

/// Builds the Sieve of Eratosthenes producing the first `k` primes by
/// limiting the sink (§3.4, second termination mode: the cascade of
/// `WriteClosed` exceptions terminates all processes "almost immediately").
pub fn first_primes(net: &Network, k: u64, opts: &GraphOptions) -> Arc<Mutex<Vec<i64>>> {
    let cap = opts.channel_capacity;
    let (seq_w, seq_r) = net.channel_with_capacity(cap);
    let (out_w, out_r) = net.channel_with_capacity(cap);
    net.add(Sequence::unbounded(2, seq_w));
    net.add(Sift::new(seq_r, out_w));
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(out_r, out.clone()).with_limit(k));
    out
}

/// Builds the Newton square-root network of Figure 11: iterates
/// `r_n = (x/r_{n-1} + r_{n-1}) / 2` until the estimate stops changing,
/// then the Guard passes exactly one value (√x) and the graph terminates.
pub fn newton_sqrt(net: &Network, x: f64, opts: &GraphOptions) -> Arc<Mutex<Vec<f64>>> {
    let cap = opts.channel_capacity;
    let (x_w, x_r) = net.channel_with_capacity(cap);
    let (r0_w, r0_r) = net.channel_with_capacity(cap);
    let (fb_w, fb_r) = net.channel_with_capacity(cap);
    let (r_w, r_r) = net.channel_with_capacity(cap);
    let (rdiv_w, rdiv_r) = net.channel_with_capacity(cap);
    let (ravg_w, ravg_r) = net.channel_with_capacity(cap);
    let (req_w, req_r) = net.channel_with_capacity(cap);
    let (q_w, q_r) = net.channel_with_capacity(cap);
    let (rn_w, rn_r) = net.channel_with_capacity(cap);
    let (rnfb_w, rnfb_r) = net.channel_with_capacity(cap);
    let (rneq_w, rneq_r) = net.channel_with_capacity(cap);
    let (rndata_w, rndata_r) = net.channel_with_capacity(cap);
    let (ctrl_w, ctrl_r) = net.channel_with_capacity(cap);
    let (res_w, res_r) = net.channel_with_capacity(cap);

    // Stream of the constant x (one per iteration).
    net.add(ConstantF64::new(x, x_w));
    // r = cons(r0, feedback) — Cons is byte-level, so it works for f64 too.
    net.add(ConstantF64::new(1.0, r0_w).with_limit(1));
    net.add(Cons::new(r0_r, fb_r, r_w));
    net.add(Duplicate::new(r_r, vec![rdiv_w, ravg_w, req_w]));
    net.add(Divide::new(x_r, rdiv_r, q_w));
    net.add(Average::new(q_r, ravg_r, rn_w));
    net.add(Duplicate::new(rn_r, vec![rnfb_w, rneq_w, rndata_w]));
    // Feedback r_{n} into the cons tail.
    net.add(crate::stdlib::Identity::new(rnfb_r, fb_w));
    net.add(Equal::new(req_r, rneq_r, ctrl_w));
    net.add(Guard::new(rndata_r, ctrl_r, res_w).stopping_after_first());
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(CollectF64::new(res_r, out.clone()).with_limit(1));
    out
}

/// Builds the directed-acyclic deadlock example of Figure 13: a router that
/// emits `divisor - 1` values on one branch for every value on the other,
/// feeding an ordered merge. When the busy branch's channel is smaller than
/// `(divisor - 1)` values, the graph artificially deadlocks and only the
/// monitor's buffer growth lets it finish.
pub fn mod_merge_dag(
    net: &Network,
    divisor: i64,
    count: u64,
    others_capacity: usize,
) -> Arc<Mutex<Vec<i64>>> {
    let (src_w, src_r) = net.channel();
    let (mult_w, mult_r) = net.channel();
    // The deliberately-undersized channel from Figure 13.
    let (other_w, other_r) = net.channel_with_capacity(others_capacity);
    let (out_w, out_r) = net.channel();
    net.add(Sequence::new(1, count, src_w));
    net.add(ModRouter::new(divisor, src_r, mult_w, other_w));
    net.add(OrderedMerge::new(vec![mult_r, other_r], out_w).keeping_duplicates());
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Collect::new(out_r, out.clone()));
    out
}

/// Reference Hamming sequence computed directly (for assertions).
pub fn hamming_reference(count: usize) -> Vec<i64> {
    let mut vals = vec![1i64];
    let (mut i2, mut i3, mut i5) = (0usize, 0usize, 0usize);
    while vals.len() < count {
        let (c2, c3, c5) = (vals[i2] * 2, vals[i3] * 3, vals[i5] * 5);
        let next = c2.min(c3).min(c5);
        if next == c2 {
            i2 += 1;
        }
        if next == c3 {
            i3 += 1;
        }
        if next == c5 {
            i5 += 1;
        }
        vals.push(next);
    }
    vals.truncate(count);
    vals
}

/// Reference Fibonacci sequence as produced by the Figure 2 network
/// (1, 1, 2, 3, 5, …).
pub fn fibonacci_reference(count: usize) -> Vec<i64> {
    let mut vals = Vec::with_capacity(count);
    let (mut a, mut b) = (1i64, 1i64);
    for _ in 0..count {
        vals.push(a);
        let next = a + b;
        a = b;
        b = next;
    }
    vals
}

/// Reference prime sieve (for assertions).
pub fn primes_reference(below: i64) -> Vec<i64> {
    let mut out = Vec::new();
    'outer: for n in 2..below {
        for p in &out {
            if p * p > n {
                break;
            }
            if n % p == 0 {
                continue 'outer;
            }
        }
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fibonacci_network_matches_reference() {
        let net = Network::new();
        let out = fibonacci(&net, 20, &GraphOptions::default());
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), fibonacci_reference(20));
    }

    #[test]
    fn fibonacci_with_self_removing_cons_is_identical() {
        // Figure 9: reconfiguration must not change the channel history.
        let net = Network::new();
        let opts = GraphOptions {
            self_removing_cons: true,
            ..Default::default()
        };
        let out = fibonacci(&net, 30, &opts);
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), fibonacci_reference(30));
    }

    #[test]
    fn hamming_network_matches_reference() {
        let net = Network::new();
        let out = hamming(&net, 50, &GraphOptions::default());
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), hamming_reference(50));
    }

    #[test]
    fn hamming_first_values_match_paper() {
        // §3.5 lists 1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20.
        let net = Network::new();
        let out = hamming(&net, 14, &GraphOptions::default());
        net.run().unwrap();
        assert_eq!(
            *out.lock().unwrap(),
            vec![1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20]
        );
    }

    #[test]
    fn hamming_with_tiny_channels_self_heals() {
        // Bounded channels deadlock artificially; the monitor must grow
        // them (§3.5) and the run must still produce the right answer.
        let net = Network::new();
        let opts = GraphOptions {
            channel_capacity: 16, // two i64s per channel
            ..Default::default()
        };
        let out = hamming(&net, 100, &opts);
        let report = net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), hamming_reference(100));
        assert!(
            report.monitor.growths > 0,
            "expected the monitor to grow at least one channel"
        );
    }

    #[test]
    fn newton_sqrt_converges() {
        let net = Network::new();
        let out = newton_sqrt(&net, 2.0, &GraphOptions::default());
        net.run().unwrap();
        let got = out.lock().unwrap();
        assert_eq!(got.len(), 1);
        assert!((got[0] - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn newton_sqrt_of_large_value() {
        let net = Network::new();
        let out = newton_sqrt(&net, 1.0e6, &GraphOptions::default());
        net.run().unwrap();
        assert!((out.lock().unwrap()[0] - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn primes_below_100_matches_reference() {
        let net = Network::new();
        let out = primes_below(&net, 100, &GraphOptions::default());
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), primes_reference(100));
    }

    #[test]
    fn first_primes_matches_reference() {
        let net = Network::new();
        let out = first_primes(&net, 25, &GraphOptions::default());
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), primes_reference(100));
    }

    #[test]
    fn mod_merge_dag_deadlocks_artificially_and_recovers() {
        // Figure 13: channel holds one i64 while the router must emit
        // divisor-1 = 9 values on that branch before the merge can drain.
        let net = Network::new();
        let out = mod_merge_dag(&net, 10, 100, 8);
        let report = net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), (1..=100).collect::<Vec<i64>>());
        assert!(report.monitor.growths > 0);
    }

    #[test]
    fn mod_merge_dag_large_buffer_needs_no_growth() {
        let net = Network::new();
        let out = mod_merge_dag(&net, 10, 100, 8192);
        let report = net.run().unwrap();
        assert_eq!(out.lock().unwrap().len(), 100);
        assert_eq!(report.monitor.growths, 0);
    }

    #[test]
    fn references_are_sane() {
        assert_eq!(fibonacci_reference(6), vec![1, 1, 2, 3, 5, 8]);
        assert_eq!(hamming_reference(7), vec![1, 2, 3, 4, 5, 6, 8]);
        assert_eq!(primes_reference(12), vec![2, 3, 5, 7, 11]);
    }
}
