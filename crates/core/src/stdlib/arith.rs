//! Arithmetic processes over typed streams: `Add` (Figure 2), `Scale`
//! (Figure 12), and the `Divide`/`Average`/`Equal` trio of the Newton
//! square-root network (Figure 11).

use crate::channel::{ChannelReader, ChannelWriter};
use crate::error::Result;
use crate::process::{Iterative, ProcessCtx};
use crate::stream::{DataReader, DataWriter};
use crate::topology::ProcessTag;

/// Adds two `i64` streams element-wise (Figure 2).
pub struct Add {
    a: DataReader,
    b: DataReader,
    out: DataWriter,
    tag: ProcessTag,
}

impl Add {
    /// `out[i] = a[i] + b[i]`.
    pub fn new(a: ChannelReader, b: ChannelReader, out: ChannelWriter) -> Self {
        let tag = ProcessTag::new("Add");
        for r in [&a, &b] {
            r.attach(&tag);
            r.declare_item::<i64>(8);
            r.declare_rate(1);
        }
        out.attach(&tag);
        out.declare_item::<i64>(8);
        out.declare_rate(1);
        Add {
            a: DataReader::new(a),
            b: DataReader::new(b),
            out: DataWriter::new(out),
            tag,
        }
    }
}

impl Iterative for Add {
    fn name(&self) -> String {
        "Add".into()
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let x = self.a.read_i64()?;
        let y = self.b.read_i64()?;
        self.out.write_i64(x + y)
    }
}

/// Multiplies each element of an `i64` stream by a constant (Figure 12).
pub struct Scale {
    factor: i64,
    input: DataReader,
    out: DataWriter,
    tag: ProcessTag,
}

impl Scale {
    /// `out[i] = factor * input[i]`.
    pub fn new(factor: i64, input: ChannelReader, out: ChannelWriter) -> Self {
        let tag = ProcessTag::new(format!("Scale(x{factor})"));
        input.attach(&tag);
        input.declare_item::<i64>(8);
        input.declare_rate(1);
        out.attach(&tag);
        out.declare_item::<i64>(8);
        out.declare_rate(1);
        Scale {
            factor,
            input: DataReader::new(input),
            out: DataWriter::new(out),
            tag,
        }
    }
}

impl Iterative for Scale {
    fn name(&self) -> String {
        format!("Scale(x{})", self.factor)
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let v = self.input.read_i64()?;
        self.out.write_i64(v * self.factor)
    }
}

/// Divides two `f64` streams element-wise (Figure 11: computes `x / r`).
pub struct Divide {
    num: DataReader,
    den: DataReader,
    out: DataWriter,
    tag: ProcessTag,
}

impl Divide {
    /// `out[i] = num[i] / den[i]`.
    pub fn new(num: ChannelReader, den: ChannelReader, out: ChannelWriter) -> Self {
        let tag = ProcessTag::new("Divide");
        for r in [&num, &den] {
            r.attach(&tag);
            r.declare_item::<f64>(8);
            r.declare_rate(1);
        }
        out.attach(&tag);
        out.declare_item::<f64>(8);
        out.declare_rate(1);
        Divide {
            num: DataReader::new(num),
            den: DataReader::new(den),
            out: DataWriter::new(out),
            tag,
        }
    }
}

impl Iterative for Divide {
    fn name(&self) -> String {
        "Divide".into()
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let n = self.num.read_f64()?;
        let d = self.den.read_f64()?;
        self.out.write_f64(n / d)
    }
}

/// Averages two `f64` streams element-wise (Figure 11:
/// `r_n = (x/r_{n-1} + r_{n-1}) / 2`).
pub struct Average {
    a: DataReader,
    b: DataReader,
    out: DataWriter,
    tag: ProcessTag,
}

impl Average {
    /// `out[i] = (a[i] + b[i]) / 2`.
    pub fn new(a: ChannelReader, b: ChannelReader, out: ChannelWriter) -> Self {
        let tag = ProcessTag::new("Average");
        for r in [&a, &b] {
            r.attach(&tag);
            r.declare_item::<f64>(8);
            r.declare_rate(1);
        }
        out.attach(&tag);
        out.declare_item::<f64>(8);
        out.declare_rate(1);
        Average {
            a: DataReader::new(a),
            b: DataReader::new(b),
            out: DataWriter::new(out),
            tag,
        }
    }
}

impl Iterative for Average {
    fn name(&self) -> String {
        "Average".into()
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let x = self.a.read_f64()?;
        let y = self.b.read_f64()?;
        self.out.write_f64((x + y) / 2.0)
    }
}

/// Tests two `f64` streams for element-wise equality, emitting a boolean
/// stream (Figure 11: fires when the root estimate stops changing).
pub struct Equal {
    a: DataReader,
    b: DataReader,
    out: DataWriter,
    tag: ProcessTag,
}

impl Equal {
    /// `out[i] = (a[i] == b[i])` as a boolean byte.
    pub fn new(a: ChannelReader, b: ChannelReader, out: ChannelWriter) -> Self {
        let tag = ProcessTag::new("Equal");
        for r in [&a, &b] {
            r.attach(&tag);
            r.declare_item::<f64>(8);
            r.declare_rate(1);
        }
        out.attach(&tag);
        out.declare_item::<bool>(1);
        out.declare_rate(1);
        Equal {
            a: DataReader::new(a),
            b: DataReader::new(b),
            out: DataWriter::new(out),
            tag,
        }
    }
}

impl Iterative for Equal {
    fn name(&self) -> String {
        "Equal".into()
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let x = self.a.read_f64()?;
        let y = self.b.read_f64()?;
        self.out.write_bool(x == y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::stdlib::{Collect, CollectF64, Sequence};
    use std::sync::{Arc, Mutex};

    #[test]
    fn add_sums_pairwise() {
        let net = Network::new();
        let (aw, ar) = net.channel();
        let (bw, br) = net.channel();
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::new(0, 10, aw));
        net.add(Sequence::new(100, 10, bw));
        net.add(Add::new(ar, br, ow));
        net.add(Collect::new(or, out.clone()));
        net.run().unwrap();
        assert_eq!(
            *out.lock().unwrap(),
            (0..10).map(|i| 100 + 2 * i).collect::<Vec<i64>>()
        );
    }

    #[test]
    fn add_stops_at_shorter_stream() {
        let net = Network::new();
        let (aw, ar) = net.channel();
        let (bw, br) = net.channel();
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::new(0, 3, aw));
        net.add(Sequence::new(0, 10, bw));
        net.add(Add::new(ar, br, ow));
        net.add(Collect::new(or, out.clone()));
        net.run().unwrap();
        assert_eq!(out.lock().unwrap().len(), 3);
    }

    #[test]
    fn scale_multiplies() {
        let net = Network::new();
        let (iw, ir) = net.channel();
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::new(1, 5, iw));
        net.add(Scale::new(5, ir, ow));
        net.add(Collect::new(or, out.clone()));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), vec![5, 10, 15, 20, 25]);
    }

    #[test]
    fn divide_average_equal_pipeline() {
        use crate::stream::DataWriter;
        let net = Network::new();
        let (nw, nr) = net.channel();
        let (dw, dr) = net.channel();
        let (qw, qr) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add_fn("nums", move |_| {
            let mut w = DataWriter::new(nw);
            for v in [8.0, 9.0, 10.0] {
                w.write_f64(v)?;
            }
            Ok(())
        });
        net.add_fn("dens", move |_| {
            let mut w = DataWriter::new(dw);
            for v in [2.0, 3.0, 4.0] {
                w.write_f64(v)?;
            }
            Ok(())
        });
        net.add(Divide::new(nr, dr, qw));
        net.add(CollectF64::new(qr, out.clone()));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), vec![4.0, 3.0, 2.5]);
    }
}
