//! Source processes: emit data without consuming any.

use crate::channel::ChannelWriter;
use crate::error::Result;
use crate::process::{Iterative, ProcessCtx};
use crate::stream::DataWriter;
use crate::topology::ProcessTag;

/// Emits a constant `i64` value, a fixed number of times (or forever).
/// The paper's `Constant(1, ab.getOutputStream(), 1)` (Figure 6) becomes
/// `Constant::new(1, writer).with_limit(1)`.
pub struct Constant {
    value: i64,
    out: DataWriter,
    limit: Option<u64>,
    tag: ProcessTag,
}

impl Constant {
    /// A constant source with no iteration limit.
    pub fn new(value: i64, out: ChannelWriter) -> Self {
        let tag = ProcessTag::new(format!("Constant({value})"));
        out.attach(&tag);
        out.declare_item::<i64>(8);
        out.declare_rate(1);
        Constant {
            value,
            out: DataWriter::new(out),
            limit: None,
            tag,
        }
    }

    /// Limits the number of values emitted.
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }
}

impl Iterative for Constant {
    fn name(&self) -> String {
        format!("Constant({})", self.value)
    }
    fn limit(&self) -> Option<u64> {
        self.limit
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        self.out.write_i64(self.value)
    }
}

/// Emits a constant `f64` value (for the Newton network of Figure 11).
pub struct ConstantF64 {
    value: f64,
    out: DataWriter,
    limit: Option<u64>,
    tag: ProcessTag,
}

impl ConstantF64 {
    /// A constant source with no iteration limit.
    pub fn new(value: f64, out: ChannelWriter) -> Self {
        let tag = ProcessTag::new(format!("ConstantF64({value})"));
        out.attach(&tag);
        out.declare_item::<f64>(8);
        out.declare_rate(1);
        ConstantF64 {
            value,
            out: DataWriter::new(out),
            limit: None,
            tag,
        }
    }

    /// Limits the number of values emitted.
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }
}

impl Iterative for ConstantF64 {
    fn name(&self) -> String {
        format!("ConstantF64({})", self.value)
    }
    fn limit(&self) -> Option<u64> {
        self.limit
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        self.out.write_f64(self.value)
    }
}

/// Emits consecutive integers starting from `start`. With a limit of `n` it
/// emits `start, start+1, …, start+n-1` — the Sequence process that feeds
/// the Sieve of Eratosthenes (Figure 7, §3.4).
pub struct Sequence {
    next: i64,
    out: DataWriter,
    limit: Option<u64>,
    tag: ProcessTag,
}

impl Sequence {
    /// Emits `count` consecutive integers starting at `start`.
    pub fn new(start: i64, count: u64, out: ChannelWriter) -> Self {
        Self::build(start, Some(count), out)
    }

    /// Emits integers forever (until the downstream reader closes).
    pub fn unbounded(start: i64, out: ChannelWriter) -> Self {
        Self::build(start, None, out)
    }

    fn build(start: i64, limit: Option<u64>, out: ChannelWriter) -> Self {
        let tag = ProcessTag::new(format!("Sequence(from {start})"));
        out.attach(&tag);
        out.declare_item::<i64>(8);
        out.declare_rate(1);
        Sequence {
            next: start,
            out: DataWriter::new(out),
            limit,
            tag,
        }
    }
}

impl Iterative for Sequence {
    fn name(&self) -> String {
        format!("Sequence(from {})", self.next)
    }
    fn limit(&self) -> Option<u64> {
        self.limit
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        self.out.write_i64(self.next)?;
        self.next += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::stdlib::Collect;
    use std::sync::{Arc, Mutex};

    #[test]
    fn constant_emits_exact_count() {
        let net = Network::new();
        let (w, r) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Constant::new(7, w).with_limit(3));
        net.add(Collect::new(r, out.clone()));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), vec![7, 7, 7]);
    }

    #[test]
    fn sequence_emits_range() {
        let net = Network::new();
        let (w, r) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::new(-2, 5, w));
        net.add(Collect::new(r, out.clone()));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), vec![-2, -1, 0, 1, 2]);
    }

    #[test]
    fn unbounded_source_terminates_when_reader_closes() {
        // §3.4 cascade: the sink stops first; the source hits WriteClosed.
        let net = Network::new();
        let (w, r) = net.channel_with_capacity(64);
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::unbounded(0, w));
        net.add(Collect::new(r, out.clone()).with_limit(10));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), (0..10).collect::<Vec<i64>>());
    }
}
