//! Sink processes: consume data. `Print` is the paper's terminal process in
//! every example network; `Collect` is its test-friendly sibling that
//! gathers values into a shared vector; `Discard` drains bytes.
//!
//! Imposing an iteration limit on the sink is how the paper terminates
//! otherwise-infinite programs ("to compute the first 100 prime numbers, we
//! can impose an iteration limit on the Print process", §3.4): when the
//! limit is reached the process stops, its endpoints close, and the
//! termination cascade unwinds the whole graph.

use crate::channel::ChannelReader;
use crate::error::{Error, Result};
use crate::process::{Iterative, ProcessCtx};
use crate::stream::DataReader;
use crate::topology::ProcessTag;
use std::sync::{Arc, Mutex};

/// Prints each `i64` read from its input to stdout.
pub struct Print {
    input: DataReader,
    label: String,
    limit: Option<u64>,
    tag: ProcessTag,
}

impl Print {
    /// Prints every value until EOF.
    pub fn new(input: ChannelReader) -> Self {
        let tag = ProcessTag::new("Print");
        input.attach(&tag);
        input.declare_item::<i64>(8);
        input.declare_rate(1);
        Print {
            input: DataReader::new(input),
            label: String::new(),
            limit: None,
            tag,
        }
    }

    /// Stops (and triggers the termination cascade) after `limit` values.
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Prefixes each printed line.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl Iterative for Print {
    fn name(&self) -> String {
        "Print".into()
    }
    fn limit(&self) -> Option<u64> {
        self.limit
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let v = self.input.read_i64()?;
        if self.label.is_empty() {
            println!("{v}");
        } else {
            println!("{}: {v}", self.label);
        }
        Ok(())
    }
}

/// Collects `i64` values into a shared vector — the observable output of
/// most tests and property checks in this workspace.
pub struct Collect {
    input: DataReader,
    out: Arc<Mutex<Vec<i64>>>,
    limit: Option<u64>,
    tag: ProcessTag,
}

impl Collect {
    /// Collects every value until EOF.
    pub fn new(input: ChannelReader, out: Arc<Mutex<Vec<i64>>>) -> Self {
        let tag = ProcessTag::new("Collect");
        input.attach(&tag);
        input.declare_item::<i64>(8);
        input.declare_rate(1);
        Collect {
            input: DataReader::new(input),
            out,
            limit: None,
            tag,
        }
    }

    /// Stops after `limit` values (triggers the termination cascade).
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }
}

impl Iterative for Collect {
    fn name(&self) -> String {
        "Collect".into()
    }
    fn limit(&self) -> Option<u64> {
        self.limit
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let v = self.input.read_i64()?;
        self.out.lock().expect("collector poisoned").push(v);
        Ok(())
    }
}

/// Collects `f64` values into a shared vector.
pub struct CollectF64 {
    input: DataReader,
    out: Arc<Mutex<Vec<f64>>>,
    limit: Option<u64>,
    tag: ProcessTag,
}

impl CollectF64 {
    /// Collects every value until EOF.
    pub fn new(input: ChannelReader, out: Arc<Mutex<Vec<f64>>>) -> Self {
        let tag = ProcessTag::new("CollectF64");
        input.attach(&tag);
        input.declare_item::<f64>(8);
        input.declare_rate(1);
        CollectF64 {
            input: DataReader::new(input),
            out,
            limit: None,
            tag,
        }
    }

    /// Stops after `limit` values.
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }
}

impl Iterative for CollectF64 {
    fn name(&self) -> String {
        "CollectF64".into()
    }
    fn limit(&self) -> Option<u64> {
        self.limit
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let v = self.input.read_f64()?;
        self.out.lock().expect("collector poisoned").push(v);
        Ok(())
    }
}

/// Reads and discards bytes until EOF (a `/dev/null` process).
pub struct Discard {
    input: ChannelReader,
    buf: Vec<u8>,
    tag: ProcessTag,
}

impl Discard {
    /// Discards everything written to `input`.
    pub fn new(input: ChannelReader) -> Self {
        let tag = ProcessTag::new("Discard");
        input.attach(&tag);
        Discard {
            input,
            buf: vec![0u8; 1024],
            tag,
        }
    }
}

impl Iterative for Discard {
    fn name(&self) -> String {
        "Discard".into()
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let n = self.input.read(&mut self.buf)?;
        if n == 0 {
            return Err(Error::Eof);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::stdlib::Sequence;

    #[test]
    fn collect_with_limit_closes_early() {
        let net = Network::new();
        let (w, r) = net.channel_with_capacity(32);
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::unbounded(0, w));
        net.add(Collect::new(r, out.clone()).with_limit(4));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn discard_drains_to_eof() {
        let net = Network::new();
        let (w, r) = net.channel();
        net.add(Sequence::new(0, 1000, w));
        net.add(Discard::new(r));
        let report = net.run().unwrap();
        assert_eq!(report.processes_run, 2);
    }
}
