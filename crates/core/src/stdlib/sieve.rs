//! The Sieve of Eratosthenes processes (§3.3, Figures 7/8): the canonical
//! *self-modifying* process network, treated by Kahn and MacQueen [11].
//!
//! `Sift` reads a prime from its input, emits it, then inserts a new
//! `Modulo` filter **ahead of itself** in the running graph: the Modulo
//! takes over Sift's previous input channel (reading "precisely where the
//! Sift process left off; data elements are neither lost nor repeated") and
//! Sift continues from a freshly created channel fed by the Modulo. This is
//! the iterative definition of Figure 8.

use crate::channel::{ChannelReader, ChannelWriter};
use crate::error::Result;
use crate::process::{Iterative, ProcessCtx};
use crate::stream::{DataReader, DataWriter};
use crate::topology::ProcessTag;

/// Filters out multiples of a constant from an `i64` stream (Figure 7).
pub struct Modulo {
    divisor: i64,
    input: DataReader,
    out: DataWriter,
    tag: ProcessTag,
}

impl Modulo {
    /// Passes through values not divisible by `divisor`.
    pub fn new(divisor: i64, input: ChannelReader, out: ChannelWriter) -> Self {
        let tag = ProcessTag::new(format!("Modulo({divisor})"));
        input.attach(&tag);
        input.declare_item::<i64>(8);
        out.attach(&tag);
        out.declare_item::<i64>(8);
        // No rate annotations: Modulo's output rate is data-dependent
        // (multiples of the divisor are dropped), so it is not SDF.
        Modulo {
            divisor,
            input: DataReader::new(input),
            out: DataWriter::new(out),
            tag,
        }
    }
}

impl Iterative for Modulo {
    fn name(&self) -> String {
        format!("Modulo({})", self.divisor)
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let v = self.input.read_i64()?;
        if v % self.divisor != 0 {
            self.out.write_i64(v)?;
        }
        Ok(())
    }
}

/// The self-modifying sieve head (Figure 8). Each step:
///
/// 1. reads the next prime from its current input,
/// 2. writes it to the output,
/// 3. creates a fresh channel, spawns `Modulo(prime)` between the old input
///    and that channel, and adopts the channel's read end as its new input.
pub struct Sift {
    input: Option<ChannelReader>,
    out: DataWriter,
    tag: ProcessTag,
}

impl Sift {
    /// A sieve head reading candidates from `input` and emitting primes on
    /// `out`.
    pub fn new(input: ChannelReader, out: ChannelWriter) -> Self {
        let tag = ProcessTag::new("Sift");
        input.attach(&tag);
        input.declare_item::<i64>(8);
        out.attach(&tag);
        out.declare_item::<i64>(8);
        Sift {
            input: Some(input),
            out: DataWriter::new(out),
            tag,
        }
    }
}

impl Iterative for Sift {
    fn name(&self) -> String {
        "Sift".into()
    }

    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }

    fn step(&mut self, ctx: &ProcessCtx) -> Result<()> {
        let mut current = DataReader::new(self.input.take().expect("input present"));
        let prime = match current.read_i64() {
            Ok(p) => p,
            Err(e) => {
                // Put the (exhausted) input back so on_stop closes it.
                self.input = Some(current.into_inner());
                return Err(e);
            }
        };
        self.out.write_i64(prime)?;
        // Insert Modulo(prime) ahead of ourselves (Figure 8's step method).
        let (fresh_w, fresh_r) = ctx.channel();
        // Adopt the fresh read end before the spawn-time lint re-check, so
        // the reconfigured topology is fully attributed when it runs.
        fresh_r.attach(&self.tag);
        fresh_r.declare_item::<i64>(8);
        ctx.spawn_iterative(Modulo::new(prime, current.into_inner(), fresh_w));
        self.input = Some(fresh_r);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::stdlib::{Collect, Sequence};
    use std::sync::{Arc, Mutex};

    const PRIMES_UNDER_100: [i64; 25] = [
        2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
        97,
    ];

    #[test]
    fn modulo_filters_multiples() {
        let net = Network::new();
        let (iw, ir) = net.channel();
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::new(1, 10, iw));
        net.add(Modulo::new(3, ir, ow));
        net.add(Collect::new(or, out.clone()));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), vec![1, 2, 4, 5, 7, 8, 10]);
    }

    #[test]
    fn sieve_all_primes_below_100() {
        // §3.4 mode 1: limit the Sequence; every datum is consumed, all
        // processes terminate after draining.
        let net = Network::new();
        let (sw, sr) = net.channel();
        let (pw, pr) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::new(2, 99, sw)); // 2..=100
        net.add(Sift::new(sr, pw));
        net.add(Collect::new(pr, out.clone()));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), PRIMES_UNDER_100.to_vec());
    }

    #[test]
    fn sieve_first_25_primes() {
        // §3.4 mode 2: limit the sink; the cascade terminates upstream
        // processes "almost immediately" via WriteClosed exceptions.
        let net = Network::new();
        let (sw, sr) = net.channel_with_capacity(256);
        let (pw, pr) = net.channel_with_capacity(256);
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::unbounded(2, sw));
        net.add(Sift::new(sr, pw));
        net.add(Collect::new(pr, out.clone()).with_limit(25));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), PRIMES_UNDER_100.to_vec());
    }

    #[test]
    fn sieve_spawns_one_modulo_per_prime() {
        let net = Network::new();
        let (sw, sr) = net.channel();
        let (pw, pr) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::new(2, 29, sw)); // up to 30: primes 2..29 (10 of them)
        net.add(Sift::new(sr, pw));
        net.add(Collect::new(pr, out.clone()));
        let report = net.run().unwrap();
        let primes = out.lock().unwrap().len();
        assert_eq!(primes, 10);
        // Sequence + Sift + Collect + one Modulo per prime.
        assert_eq!(report.processes_run, 3 + primes);
    }
}
