//! Ordered merging and routing: the `Merge` of the Hamming network
//! (Figure 12) and the `mod` router of the acyclic deadlock example
//! (Figure 13).

use crate::channel::{ChannelReader, ChannelWriter};
use crate::error::{Error, Result};
use crate::process::{Iterative, ProcessCtx};
use crate::stream::{DataReader, DataWriter};
use crate::topology::ProcessTag;

/// Performs an ordered merge of N ascending `i64` streams, optionally
/// eliminating duplicates (Figure 12: "the Merge process performs an
/// ordered merge, eliminating duplicates").
///
/// This is a *determinate* merge: which input to read next is decided
/// purely by the values read so far, never by timing.
pub struct OrderedMerge {
    inputs: Vec<DataReader>,
    /// Lookahead value per input; `None` once that input hit EOF.
    heads: Vec<Option<i64>>,
    out: DataWriter,
    dedup: bool,
    last: Option<i64>,
    primed: bool,
    tag: ProcessTag,
}

impl OrderedMerge {
    /// An ordered, duplicate-eliminating merge.
    pub fn new(inputs: Vec<ChannelReader>, out: ChannelWriter) -> Self {
        assert!(inputs.len() >= 2, "OrderedMerge needs at least two inputs");
        let tag = ProcessTag::new(format!("OrderedMerge(x{})", inputs.len()));
        for input in &inputs {
            input.attach(&tag);
            input.declare_item::<i64>(8);
        }
        out.attach(&tag);
        out.declare_item::<i64>(8);
        // No rate annotations: consumption is data-dependent (only inputs
        // holding the minimum advance each step).
        let heads = vec![None; inputs.len()];
        OrderedMerge {
            inputs: inputs.into_iter().map(DataReader::new).collect(),
            heads,
            out: DataWriter::new(out),
            dedup: true,
            last: None,
            primed: false,
            tag,
        }
    }

    /// Keeps duplicates instead of eliminating them (used in Figure 13,
    /// where the router guarantees the two streams are disjoint).
    pub fn keeping_duplicates(mut self) -> Self {
        self.dedup = false;
        self
    }

    fn prime(&mut self) -> Result<()> {
        for (i, input) in self.inputs.iter_mut().enumerate() {
            self.heads[i] = match input.read_i64() {
                Ok(v) => Some(v),
                Err(Error::Eof) => None,
                Err(e) => return Err(e),
            };
        }
        self.primed = true;
        Ok(())
    }
}

impl Iterative for OrderedMerge {
    fn name(&self) -> String {
        format!("OrderedMerge(x{})", self.inputs.len())
    }

    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }

    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        if !self.primed {
            self.prime()?;
        }
        // Smallest head value among live inputs.
        let min = self
            .heads
            .iter()
            .flatten()
            .copied()
            .min()
            .ok_or(Error::Eof)?;
        // Emit *before* advancing the input heads: in a feedback loop
        // (Figure 12) the upstream processes can only produce their next
        // values after this output propagates around the cycle, so reading
        // ahead first would deadlock the graph.
        if !(self.dedup && self.last == Some(min)) {
            self.out.write_i64(min)?;
            self.last = Some(min);
        }
        // Advance every input whose head equals min (this is what removes
        // duplicates across inputs in a single pass).
        for (i, head) in self.heads.iter_mut().enumerate() {
            if *head == Some(min) {
                *head = match self.inputs[i].read_i64() {
                    Ok(v) => Some(v),
                    Err(Error::Eof) => None,
                    Err(e) => return Err(e),
                };
            }
        }
        Ok(())
    }
}

/// The `mod` router of Figure 13: values evenly divisible by `divisor` go
/// to the first output, all other values to the second. For every
/// `divisor` consecutive integers consumed it emits 1 element on the first
/// output and `divisor - 1` on the second — the asymmetry that causes
/// artificial deadlock when the second channel is too small.
pub struct ModRouter {
    divisor: i64,
    input: DataReader,
    multiples: DataWriter,
    others: DataWriter,
    tag: ProcessTag,
}

impl ModRouter {
    /// Routes multiples of `divisor` to `multiples`, the rest to `others`.
    pub fn new(
        divisor: i64,
        input: ChannelReader,
        multiples: ChannelWriter,
        others: ChannelWriter,
    ) -> Self {
        assert!(divisor > 0, "divisor must be positive");
        let tag = ProcessTag::new(format!("ModRouter({divisor})"));
        input.attach(&tag);
        input.declare_item::<i64>(8);
        multiples.attach(&tag);
        multiples.declare_item::<i64>(8);
        others.attach(&tag);
        others.declare_item::<i64>(8);
        // No rate annotations: routing is data-dependent (Figure 13's
        // asymmetry is a property of the *values*, not the graph).
        ModRouter {
            divisor,
            input: DataReader::new(input),
            multiples: DataWriter::new(multiples),
            others: DataWriter::new(others),
            tag,
        }
    }
}

impl Iterative for ModRouter {
    fn name(&self) -> String {
        format!("ModRouter({})", self.divisor)
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let v = self.input.read_i64()?;
        if v % self.divisor == 0 {
            self.multiples.write_i64(v)
        } else {
            self.others.write_i64(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::stdlib::{Collect, Sequence};
    use crate::stream::DataWriter;
    use std::sync::{Arc, Mutex};

    fn feed(net: &Network, values: Vec<i64>) -> ChannelReader {
        let (w, r) = net.channel();
        net.add_fn("feed", move |_| {
            let mut dw = DataWriter::new(w);
            for v in values {
                dw.write_i64(v)?;
            }
            Ok(())
        });
        r
    }

    #[test]
    fn merge_two_sorted_streams() {
        let net = Network::new();
        let a = feed(&net, vec![1, 4, 7]);
        let b = feed(&net, vec![2, 3, 9]);
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(OrderedMerge::new(vec![a, b], ow));
        net.add(Collect::new(or, out.clone()));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), vec![1, 2, 3, 4, 7, 9]);
    }

    #[test]
    fn merge_eliminates_cross_stream_duplicates() {
        let net = Network::new();
        let a = feed(&net, vec![2, 4, 6, 8]);
        let b = feed(&net, vec![3, 4, 6, 9]);
        let c = feed(&net, vec![4, 5, 6]);
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(OrderedMerge::new(vec![a, b, c], ow));
        net.add(Collect::new(or, out.clone()));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), vec![2, 3, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn merge_eliminates_within_stream_duplicates() {
        let net = Network::new();
        let a = feed(&net, vec![1, 1, 2]);
        let b = feed(&net, vec![1, 3]);
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(OrderedMerge::new(vec![a, b], ow));
        net.add(Collect::new(or, out.clone()));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn merge_keeping_duplicates() {
        let net = Network::new();
        let a = feed(&net, vec![1, 2]);
        let b = feed(&net, vec![2, 3]);
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(OrderedMerge::new(vec![a, b], ow).keeping_duplicates());
        net.add(Collect::new(or, out.clone()));
        net.run().unwrap();
        // The cross-input duplicate 2 is still advanced past on both
        // inputs in one step, but written once... keeping_duplicates only
        // affects the dedup-vs-last check, so equal within-step values
        // still collapse; sequential duplicates survive:
        assert_eq!(*out.lock().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn merge_handles_uneven_lengths() {
        let net = Network::new();
        let a = feed(&net, vec![10]);
        let b = feed(&net, (0..5).collect());
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(OrderedMerge::new(vec![a, b], ow));
        net.add(Collect::new(or, out.clone()));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), vec![0, 1, 2, 3, 4, 10]);
    }

    #[test]
    fn router_splits_by_divisibility() {
        let net = Network::new();
        let (iw, ir) = net.channel();
        let (mw, mr) = net.channel();
        let (ow2, or2) = net.channel();
        let mults = Arc::new(Mutex::new(Vec::new()));
        let others = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::new(1, 10, iw));
        net.add(ModRouter::new(3, ir, mw, ow2));
        net.add(Collect::new(mr, mults.clone()));
        net.add(Collect::new(or2, others.clone()));
        net.run().unwrap();
        assert_eq!(*mults.lock().unwrap(), vec![3, 6, 9]);
        assert_eq!(*others.lock().unwrap(), vec![1, 2, 4, 5, 7, 8, 10]);
    }
}
