//! Data-dependent control: the `Guard` process of the Newton square-root
//! network (Figure 11, §3.4), demonstrating data-dependent termination.

use crate::channel::{ChannelReader, ChannelWriter};
use crate::error::{Error, Result};
use crate::process::{Iterative, ProcessCtx};
use crate::stream::{DataReader, DataWriter};
use crate::topology::ProcessTag;

/// Passes `f64` data to its output when the paired control value is true
/// and discards it otherwise. Optionally stops after passing the first
/// true-guarded value — the paper's configuration for Newton's method:
/// "causing the Guard to pass one value to the Print process and stop".
pub struct Guard {
    data: DataReader,
    control: DataReader,
    out: DataWriter,
    stop_after_true: bool,
    tag: ProcessTag,
}

impl Guard {
    /// A guard over a data stream and a boolean control stream.
    pub fn new(data: ChannelReader, control: ChannelReader, out: ChannelWriter) -> Self {
        let tag = ProcessTag::new("Guard");
        data.attach(&tag);
        data.declare_item::<f64>(8);
        control.attach(&tag);
        control.declare_item::<bool>(1);
        out.attach(&tag);
        out.declare_item::<f64>(8);
        // No rate annotations: Guard's output rate is data-dependent.
        Guard {
            data: DataReader::new(data),
            control: DataReader::new(control),
            out: DataWriter::new(out),
            stop_after_true: false,
            tag,
        }
    }

    /// Terminate (gracefully, starting the §3.4 cascade) after the first
    /// value passed through.
    pub fn stopping_after_first(mut self) -> Self {
        self.stop_after_true = true;
        self
    }
}

impl Iterative for Guard {
    fn name(&self) -> String {
        "Guard".into()
    }

    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }

    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let value = self.data.read_f64()?;
        let pass = self.control.read_bool()?;
        if pass {
            self.out.write_f64(value)?;
            if self.stop_after_true {
                return Err(Error::Eof); // graceful self-termination
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::stdlib::CollectF64;
    use crate::stream::DataWriter;
    use std::sync::{Arc, Mutex};

    fn run_guard(data: Vec<f64>, ctrl: Vec<bool>, stop_first: bool) -> Vec<f64> {
        let net = Network::new();
        let (dw, dr) = net.channel();
        let (cw, cr) = net.channel();
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add_fn("data", move |_| {
            let mut w = DataWriter::new(dw);
            for v in data {
                w.write_f64(v)?;
            }
            Ok(())
        });
        net.add_fn("ctrl", move |_| {
            let mut w = DataWriter::new(cw);
            for v in ctrl {
                w.write_bool(v)?;
            }
            Ok(())
        });
        let g = Guard::new(dr, cr, ow);
        net.add(if stop_first {
            g.stopping_after_first()
        } else {
            g
        });
        net.add(CollectF64::new(or, out.clone()));
        net.run().unwrap();
        let v = out.lock().unwrap().clone();
        v
    }

    #[test]
    fn passes_only_true_guarded_values() {
        let got = run_guard(
            vec![1.0, 2.0, 3.0, 4.0],
            vec![false, true, false, true],
            false,
        );
        assert_eq!(got, vec![2.0, 4.0]);
    }

    #[test]
    fn stops_after_first_true() {
        let got = run_guard(
            vec![1.0, 2.0, 3.0, 4.0],
            vec![false, true, true, true],
            true,
        );
        assert_eq!(got, vec![2.0]);
    }

    #[test]
    fn all_false_passes_nothing() {
        let got = run_guard(vec![1.0, 2.0], vec![false, false], false);
        assert!(got.is_empty());
    }
}
