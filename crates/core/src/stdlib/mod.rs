//! The standard process library: every process the paper uses in its
//! example networks (Figures 1, 2, 7, 9, 11, 12, 13).
//!
//! Byte-level processes (`Cons`, `Duplicate`, `Identity`) copy raw bytes and
//! are therefore type-independent (§3.1); arithmetic processes layer
//! [`crate::DataReader`]/[`crate::DataWriter`] over their endpoints inside
//! the process.

mod arith;
mod bytewise;
mod control;
mod merge;
mod sieve;
mod sinks;
mod sources;

pub use arith::{Add, Average, Divide, Equal, Scale};
pub use bytewise::{Cons, Duplicate, Identity};
pub use control::Guard;
pub use merge::{ModRouter, OrderedMerge};
pub use sieve::{Modulo, Sift};
pub use sinks::{Collect, CollectF64, Discard, Print};
pub use sources::{Constant, ConstantF64, Sequence};
