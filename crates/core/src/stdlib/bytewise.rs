//! Type-independent byte-level processes (§3.1): these "simply process
//! bytes and need not be aware of any structure within a byte stream", so a
//! single implementation serves streams of ints, doubles, or objects.

use crate::channel::{ChannelReader, ChannelWriter};
use crate::error::{Error, Result};
use crate::process::{Iterative, ProcessCtx};
use crate::topology::ProcessTag;

const COPY_CHUNK: usize = 1024;

/// Copies its input to its output unchanged.
pub struct Identity {
    input: ChannelReader,
    output: ChannelWriter,
    buf: Vec<u8>,
    tag: ProcessTag,
}

impl Identity {
    /// An identity process between `input` and `output`.
    pub fn new(input: ChannelReader, output: ChannelWriter) -> Self {
        let tag = ProcessTag::new("Identity");
        input.attach(&tag);
        output.attach(&tag);
        // Byte-level processes declare no element type: they are
        // type-independent by design (§3.1).
        Identity {
            input,
            output,
            buf: vec![0u8; COPY_CHUNK],
            tag,
        }
    }
}

impl Iterative for Identity {
    fn name(&self) -> String {
        "Identity".into()
    }
    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let n = self.input.read(&mut self.buf)?;
        if n == 0 {
            return Err(Error::Eof);
        }
        self.output.write_all(&self.buf[..n])
    }
}

/// Inserts a stream at the head of another stream (§3.2): copies all of
/// `first`, then all of `rest`. With [`Cons::removing_self`], once the
/// prefix has been delivered the process retires from the graph by splicing
/// `rest` directly onto its output channel (Figures 9/10), avoiding the
/// per-byte copy.
pub struct Cons {
    first: Option<ChannelReader>,
    rest: Option<ChannelReader>,
    output: Option<ChannelWriter>,
    remove_self: bool,
    buf: Vec<u8>,
    tag: ProcessTag,
}

impl Cons {
    /// A cons process that keeps copying for its whole life.
    pub fn new(first: ChannelReader, rest: ChannelReader, output: ChannelWriter) -> Self {
        let tag = ProcessTag::new("Cons");
        first.attach(&tag);
        rest.attach(&tag);
        output.attach(&tag);
        Cons {
            first: Some(first),
            rest: Some(rest),
            output: Some(output),
            remove_self: false,
            buf: vec![0u8; COPY_CHUNK],
            tag,
        }
    }

    /// After delivering the prefix, remove this process from the graph by
    /// splicing `rest` onto the output channel ("to avoid unnecessary
    /// copying of data and improve efficiency, the Cons processes remove
    /// themselves from the program graph", §3.3).
    pub fn removing_self(mut self) -> Self {
        self.remove_self = true;
        self
    }

    fn copy_all_of_first(&mut self) -> Result<()> {
        let first = self.first.as_mut().expect("first already consumed");
        let out = self.output.as_mut().expect("output already retired");
        loop {
            let n = first.read(&mut self.buf)?;
            if n == 0 {
                break;
            }
            out.write_all(&self.buf[..n])?;
        }
        self.first = None;
        Ok(())
    }
}

impl Iterative for Cons {
    fn name(&self) -> String {
        "Cons".into()
    }

    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }

    fn on_start(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        self.copy_all_of_first()?;
        if self.remove_self {
            let output = self.output.take().expect("output present");
            let rest = self.rest.take().expect("rest present");
            output.retire(rest)?;
            // Nothing left to do; end the process gracefully.
            return Err(Error::Eof);
        }
        Ok(())
    }

    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let rest = self.rest.as_mut().expect("rest present");
        let out = self.output.as_mut().expect("output present");
        let n = rest.read(&mut self.buf)?;
        if n == 0 {
            return Err(Error::Eof);
        }
        out.write_all(&self.buf[..n])
    }
}

/// Creates multiple copies of a stream (§1 footnote: streams have a single
/// consumer; fan-out is expressed by an explicit Duplicate process).
/// Figure 5's `step` is the direct model for this implementation.
///
/// By default the process dies on the first closed output — the paper's
/// behaviour, and the one the §3.4 termination cascades rely on (a sink
/// limit must tear down *all* branches). [`Duplicate::resilient`] opts
/// into keeping the surviving branches fed until every output has closed,
/// which some fan-out topologies prefer; it deliberately trades cascade
/// promptness for branch independence.
pub struct Duplicate {
    input: ChannelReader,
    outputs: Vec<Option<ChannelWriter>>,
    resilient: bool,
    buf: Vec<u8>,
    tag: ProcessTag,
}

impl Duplicate {
    /// Duplicates `input` onto each writer in `outputs`.
    pub fn new(input: ChannelReader, outputs: Vec<ChannelWriter>) -> Self {
        assert!(!outputs.is_empty(), "Duplicate needs at least one output");
        let tag = ProcessTag::new(format!("Duplicate(x{})", outputs.len()));
        input.attach(&tag);
        for out in &outputs {
            out.attach(&tag);
        }
        Duplicate {
            input,
            outputs: outputs.into_iter().map(Some).collect(),
            resilient: false,
            buf: vec![0u8; COPY_CHUNK],
            tag,
        }
    }

    /// Convenience constructor for the common two-way split.
    pub fn two(input: ChannelReader, a: ChannelWriter, b: ChannelWriter) -> Self {
        Self::new(input, vec![a, b])
    }

    /// Keep feeding surviving outputs when one closes; terminate only when
    /// all outputs have closed (or the input ends).
    pub fn resilient(mut self) -> Self {
        self.resilient = true;
        self
    }
}

impl Iterative for Duplicate {
    fn name(&self) -> String {
        format!("Duplicate(x{})", self.outputs.len())
    }

    fn lint_tag(&self) -> Option<&ProcessTag> {
        Some(&self.tag)
    }

    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let n = self.input.read(&mut self.buf)?;
        if n == 0 {
            return Err(Error::Eof);
        }
        let mut alive = 0;
        for slot in &mut self.outputs {
            let Some(out) = slot.as_mut() else { continue };
            match out.write_all(&self.buf[..n]) {
                Ok(()) => alive += 1,
                Err(e) if self.resilient && e.is_graceful() => {
                    // This branch closed; drop its writer and carry on.
                    *slot = None;
                }
                Err(e) => return Err(e),
            }
        }
        if self.resilient && alive == 0 {
            return Err(Error::WriteClosed); // all branches gone
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel;
    use crate::network::Network;
    use crate::stdlib::{Collect, Constant, Sequence};
    use std::sync::{Arc, Mutex};

    #[test]
    fn cons_prepends_prefix() {
        let net = Network::new();
        let (fw, fr) = net.channel();
        let (rw, rr) = net.channel();
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Constant::new(99, fw).with_limit(1));
        net.add(Sequence::new(1, 3, rw));
        net.add(Cons::new(fr, rr, ow));
        net.add(Collect::new(or, out.clone()));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), vec![99, 1, 2, 3]);
    }

    #[test]
    fn cons_removing_self_produces_identical_stream() {
        // Figure 9: the reconfigured network must produce the same history.
        let net = Network::new();
        let (fw, fr) = net.channel();
        let (rw, rr) = net.channel();
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Constant::new(99, fw).with_limit(1));
        net.add(Sequence::new(1, 100, rw));
        net.add(Cons::new(fr, rr, ow).removing_self());
        net.add(Collect::new(or, out.clone()));
        net.run().unwrap();
        let mut expect = vec![99i64];
        expect.extend(1..=100);
        assert_eq!(*out.lock().unwrap(), expect);
    }

    #[test]
    fn duplicate_copies_to_all_outputs() {
        let net = Network::new();
        let (iw, ir) = net.channel();
        let (aw, ar) = net.channel();
        let (bw, br) = net.channel();
        let (cw, cr) = net.channel();
        let oa = Arc::new(Mutex::new(Vec::new()));
        let ob = Arc::new(Mutex::new(Vec::new()));
        let oc = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::new(0, 50, iw));
        net.add(Duplicate::new(ir, vec![aw, bw, cw]));
        net.add(Collect::new(ar, oa.clone()));
        net.add(Collect::new(br, ob.clone()));
        net.add(Collect::new(cr, oc.clone()));
        net.run().unwrap();
        let expect: Vec<i64> = (0..50).collect();
        assert_eq!(*oa.lock().unwrap(), expect);
        assert_eq!(*ob.lock().unwrap(), expect);
        assert_eq!(*oc.lock().unwrap(), expect);
    }

    #[test]
    fn identity_is_transparent() {
        let net = Network::new();
        let (iw, ir) = net.channel();
        let (ow, or) = net.channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::new(5, 10, iw));
        net.add(Identity::new(ir, ow));
        net.add(Collect::new(or, out.clone()));
        net.run().unwrap();
        assert_eq!(*out.lock().unwrap(), (5..15).collect::<Vec<i64>>());
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn duplicate_requires_outputs() {
        let (_w, r) = channel();
        let _ = Duplicate::new(r, vec![]);
    }

    #[test]
    fn default_duplicate_cascades_on_first_closed_branch() {
        // §3.4 behaviour: one limited branch tears the whole graph down.
        let net = Network::new();
        let (iw, ir) = net.channel_with_capacity(64);
        let (aw, ar) = net.channel_with_capacity(64);
        let (bw, br) = net.channel_with_capacity(64);
        let oa = Arc::new(Mutex::new(Vec::new()));
        let ob = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::unbounded(0, iw));
        net.add(Duplicate::two(ir, aw, bw));
        net.add(Collect::new(ar, oa.clone()).with_limit(5));
        net.add(Collect::new(br, ob.clone()));
        net.run().unwrap();
        assert_eq!(oa.lock().unwrap().len(), 5);
        // Branch b got at most a few buffered extras before the cascade.
        assert!(ob.lock().unwrap().len() < 100);
    }

    #[test]
    fn resilient_duplicate_keeps_surviving_branch_alive() {
        let net = Network::new();
        let (iw, ir) = net.channel();
        let (aw, ar) = net.channel();
        let (bw, br) = net.channel();
        let oa = Arc::new(Mutex::new(Vec::new()));
        let ob = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::new(0, 500, iw));
        net.add(Duplicate::two(ir, aw, bw).resilient());
        net.add(Collect::new(ar, oa.clone()).with_limit(5)); // dies early
        net.add(Collect::new(br, ob.clone())); // must still get everything
        net.run().unwrap();
        assert_eq!(oa.lock().unwrap().len(), 5);
        assert_eq!(*ob.lock().unwrap(), (0..500).collect::<Vec<i64>>());
    }

    #[test]
    fn resilient_duplicate_stops_when_all_branches_close() {
        let net = Network::new();
        let (iw, ir) = net.channel_with_capacity(64);
        let (aw, ar) = net.channel_with_capacity(64);
        let (bw, br) = net.channel_with_capacity(64);
        let oa = Arc::new(Mutex::new(Vec::new()));
        let ob = Arc::new(Mutex::new(Vec::new()));
        net.add(Sequence::unbounded(0, iw)); // infinite source
        net.add(Duplicate::two(ir, aw, bw).resilient());
        net.add(Collect::new(ar, oa.clone()).with_limit(3));
        net.add(Collect::new(br, ob.clone()).with_limit(7));
        net.run().unwrap(); // must terminate: both limits reached
        assert_eq!(oa.lock().unwrap().len(), 3);
        assert_eq!(ob.lock().unwrap().len(), 7);
    }
}
