//! Deadlock-safe auto-flush for privately buffered sinks.
//!
//! Buffered typed streams ([`crate::DataWriter`], and the buffered sink it
//! installs via [`crate::ChannelWriter::ensure_buffered`]) hold written bytes
//! in a private buffer so that a burst of small typed tokens costs one
//! channel transfer instead of one mutex round-trip each. That private buffer
//! creates a correctness hazard unique to process networks: a token sitting
//! in an unflushed buffer while its producer blocks on a *read* is invisible
//! both to the consumer (who may need exactly that token to make progress)
//! and to the deadlock monitor (§3.5), which would then misclassify a live
//! network as truly deadlocked — or simply hang under `DeadlockPolicy::Ignore`.
//!
//! The rule that restores Kahn semantics is simple: **a process must make all
//! of its buffered output visible before it parks on a blocking read**. With
//! that rule, the externally observable channel histories are identical to
//! the unbuffered execution — per-channel token order is unchanged (buffering
//! only delays writes, never reorders them within a channel), and at every
//! blocking read the process has published everything it would have published
//! unbuffered. Determinacy (Kahn) and artificial-deadlock accounting (Parks)
//! are therefore preserved.
//!
//! Mechanically, every buffered sink registers itself with a *task-local*
//! registry carried by the current task's identity record (under
//! the pooled executor one OS thread runs many tasks, so a thread-local
//! registry would conflate sinks across processes; under thread-per-process
//! a task *is* a thread and the behavior is the paper's). The blocking paths
//! of the local channel transport (and the remote transports in `kpn-net`)
//! call [`flush_before_block`] just before parking, which walks the current
//! task's registry and flushes every sink the task owns. Ownership follows
//! the *last writer task*: processes are typically constructed on the main
//! thread and moved to their spawned task, so a sink re-registers lazily
//! whenever it is written from a new task. Stale registrations on the old
//! task are skipped by an owner-token check and pruned as their weak
//! references die.

use crate::error::Result;
use std::sync::Weak;

/// A sink with a private buffer that can be flushed by the flush registry.
///
/// Implementations must be cheap to probe when clean and must *never* block
/// on a lock that another task's flush could hold (use `try_lock` and skip:
/// a sink mid-write on another task is by definition not owned by us).
pub trait Flushable: Send + Sync {
    /// Flushes the private buffer toward the consumer *if* the sink is
    /// currently owned by the task with token `owner`. Non-owners and
    /// clean sinks return `Ok(())` without side effects.
    fn flush_owned(&self, owner: u64) -> Result<()>;
}

/// A small, unique, never-reused identifier for the calling task (a process
/// under any executor, or a foreign thread touching channels from outside).
pub fn task_token() -> u64 {
    crate::exec::task_token()
}

/// Registers a buffered sink with the *calling* task's flush registry.
/// Dead entries are pruned opportunistically on each registration.
pub fn register(sink: Weak<dyn Flushable>) {
    crate::exec::with_current(|locals| {
        let mut v = locals.sinks.lock();
        v.retain(|w| w.strong_count() > 0);
        v.push(sink);
    });
}

/// Flushes every live buffered sink owned by the calling task, returning
/// the first error encountered (all sinks are still attempted). This is what
/// [`crate::ProcessCtx::flush_sinks`] calls after each `Iterative::step`.
pub fn flush_task_sinks() -> Result<()> {
    // Snapshot strong handles first: flushing can block (a full channel), and
    // we must not hold the registry lock across that (a write performed by
    // a woken process on this task would re-enter `register`).
    let (me, handles): (u64, Vec<_>) = crate::exec::with_current(|locals| {
        let mut v = locals.sinks.lock();
        v.retain(|w| w.strong_count() > 0);
        (locals.token, v.iter().filter_map(Weak::upgrade).collect())
    });
    let mut first_err = None;
    for h in handles {
        if let Err(e) = h.flush_owned(me) {
            if first_err.is_none() {
                first_err = Some(e);
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Best-effort flush used by blocking read paths. Errors are swallowed here:
/// the failing sink stashes its error and surfaces it on the owner's next
/// write (§3.4's "exception on the next write" semantics); the *read* that
/// triggered the flush must still be allowed to proceed and drain data.
pub fn flush_before_block() {
    let _ = flush_task_sinks();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Probe {
        owner: u64,
        flushes: AtomicUsize,
        fail: bool,
    }

    impl Flushable for Probe {
        fn flush_owned(&self, owner: u64) -> Result<()> {
            if owner != self.owner {
                return Ok(());
            }
            self.flushes.fetch_add(1, Ordering::SeqCst);
            if self.fail {
                return Err(crate::Error::WriteClosed);
            }
            Ok(())
        }
    }

    #[test]
    fn tokens_are_unique_per_task() {
        let mine = task_token();
        let theirs = std::thread::spawn(task_token).join().unwrap();
        assert_ne!(mine, theirs);
        assert_eq!(mine, task_token(), "stable within a task");
    }

    #[test]
    fn flush_skips_foreign_owners_and_drops_dead_entries() {
        let mine = Arc::new(Probe {
            owner: task_token(),
            flushes: AtomicUsize::new(0),
            fail: false,
        });
        let foreign = Arc::new(Probe {
            owner: task_token() + 1_000_000,
            flushes: AtomicUsize::new(0),
            fail: false,
        });
        let dead = Arc::new(Probe {
            owner: task_token(),
            flushes: AtomicUsize::new(0),
            fail: false,
        });
        register(Arc::downgrade(&mine) as Weak<dyn Flushable>);
        register(Arc::downgrade(&foreign) as Weak<dyn Flushable>);
        register(Arc::downgrade(&dead) as Weak<dyn Flushable>);
        drop(dead);
        flush_task_sinks().unwrap();
        assert_eq!(mine.flushes.load(Ordering::SeqCst), 1);
        assert_eq!(foreign.flushes.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn first_error_wins_but_all_sinks_run() {
        let a = Arc::new(Probe {
            owner: task_token(),
            flushes: AtomicUsize::new(0),
            fail: true,
        });
        let b = Arc::new(Probe {
            owner: task_token(),
            flushes: AtomicUsize::new(0),
            fail: false,
        });
        register(Arc::downgrade(&a) as Weak<dyn Flushable>);
        register(Arc::downgrade(&b) as Weak<dyn Flushable>);
        assert!(flush_task_sinks().is_err());
        assert_eq!(a.flushes.load(Ordering::SeqCst), 1);
        assert_eq!(b.flushes.load(Ordering::SeqCst), 1, "error does not halt the sweep");
    }
}
