//! Deadlock-safe auto-flush for privately buffered sinks.
//!
//! Buffered typed streams ([`crate::DataWriter`], and the buffered sink it
//! installs via [`crate::ChannelWriter::ensure_buffered`]) hold written bytes
//! in a private buffer so that a burst of small typed tokens costs one
//! channel transfer instead of one mutex round-trip each. That private buffer
//! creates a correctness hazard unique to process networks: a token sitting
//! in an unflushed buffer while its producer blocks on a *read* is invisible
//! both to the consumer (who may need exactly that token to make progress)
//! and to the deadlock monitor (§3.5), which would then misclassify a live
//! network as truly deadlocked — or simply hang under `DeadlockPolicy::Ignore`.
//!
//! The rule that restores Kahn semantics is simple: **a process must make all
//! of its buffered output visible before it parks on a blocking read**. With
//! that rule, the externally observable channel histories are identical to
//! the unbuffered execution — per-channel token order is unchanged (buffering
//! only delays writes, never reorders them within a channel), and at every
//! blocking read the process has published everything it would have published
//! unbuffered. Determinacy (Kahn) and artificial-deadlock accounting (Parks)
//! are therefore preserved.
//!
//! Mechanically, every buffered sink registers itself with a thread-local
//! registry keyed by a per-thread token. The blocking paths of the local
//! channel transport (and the remote transports in `kpn-net`) call
//! [`flush_before_block`] just before parking, which walks the current
//! thread's registry and flushes every sink the thread owns. Ownership
//! follows the *last writer thread*: processes are typically constructed on
//! the main thread and moved to their spawn thread, so a sink re-registers
//! lazily whenever it is written from a new thread. Stale registrations on
//! the old thread are skipped by an owner-token check and pruned as their
//! weak references die.

use crate::error::Result;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Weak;

/// A sink with a private buffer that can be flushed by the flush registry.
///
/// Implementations must be cheap to probe when clean and must *never* block
/// on a lock that another thread's flush could hold (use `try_lock` and skip:
/// a sink mid-write on another thread is by definition not owned by us).
pub trait Flushable: Send + Sync {
    /// Flushes the private buffer toward the consumer *if* the sink is
    /// currently owned by the thread with token `owner`. Non-owners and
    /// clean sinks return `Ok(())` without side effects.
    fn flush_owned(&self, owner: u64) -> Result<()>;
}

static NEXT_THREAD_TOKEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_TOKEN: u64 = NEXT_THREAD_TOKEN.fetch_add(1, Ordering::Relaxed);
    static SINKS: RefCell<Vec<Weak<dyn Flushable>>> = const { RefCell::new(Vec::new()) };
}

/// A small, unique, never-reused identifier for the calling thread.
pub fn thread_token() -> u64 {
    THREAD_TOKEN.with(|t| *t)
}

/// Registers a buffered sink with the *calling* thread's flush registry.
/// Dead entries are pruned opportunistically on each registration.
pub fn register(sink: Weak<dyn Flushable>) {
    SINKS.with(|s| {
        let mut v = s.borrow_mut();
        v.retain(|w| w.strong_count() > 0);
        v.push(sink);
    });
}

/// Flushes every live buffered sink owned by the calling thread, returning
/// the first error encountered (all sinks are still attempted). This is what
/// [`crate::ProcessCtx::flush_sinks`] calls after each `Iterative::step`.
pub fn flush_thread_sinks() -> Result<()> {
    let me = thread_token();
    // Snapshot strong handles first: flushing can block (a full channel), and
    // we must not hold the registry borrow across that (a write performed by
    // a woken process on this thread would re-enter `register`).
    let handles: Vec<_> = SINKS.with(|s| {
        let mut v = s.borrow_mut();
        v.retain(|w| w.strong_count() > 0);
        v.iter().filter_map(Weak::upgrade).collect()
    });
    let mut first_err = None;
    for h in handles {
        if let Err(e) = h.flush_owned(me) {
            if first_err.is_none() {
                first_err = Some(e);
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Best-effort flush used by blocking read paths. Errors are swallowed here:
/// the failing sink stashes its error and surfaces it on the owner's next
/// write (§3.4's "exception on the next write" semantics); the *read* that
/// triggered the flush must still be allowed to proceed and drain data.
pub fn flush_before_block() {
    let _ = flush_thread_sinks();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    struct Probe {
        owner: u64,
        flushes: AtomicUsize,
        fail: bool,
    }

    impl Flushable for Probe {
        fn flush_owned(&self, owner: u64) -> Result<()> {
            if owner != self.owner {
                return Ok(());
            }
            self.flushes.fetch_add(1, Ordering::SeqCst);
            if self.fail {
                return Err(crate::Error::WriteClosed);
            }
            Ok(())
        }
    }

    #[test]
    fn tokens_are_unique_per_thread() {
        let mine = thread_token();
        let theirs = std::thread::spawn(thread_token).join().unwrap();
        assert_ne!(mine, theirs);
        assert_eq!(mine, thread_token(), "stable within a thread");
    }

    #[test]
    fn flush_skips_foreign_owners_and_drops_dead_entries() {
        let mine = Arc::new(Probe {
            owner: thread_token(),
            flushes: AtomicUsize::new(0),
            fail: false,
        });
        let foreign = Arc::new(Probe {
            owner: thread_token() + 1_000_000,
            flushes: AtomicUsize::new(0),
            fail: false,
        });
        let dead = Arc::new(Probe {
            owner: thread_token(),
            flushes: AtomicUsize::new(0),
            fail: false,
        });
        register(Arc::downgrade(&mine) as Weak<dyn Flushable>);
        register(Arc::downgrade(&foreign) as Weak<dyn Flushable>);
        register(Arc::downgrade(&dead) as Weak<dyn Flushable>);
        drop(dead);
        flush_thread_sinks().unwrap();
        assert_eq!(mine.flushes.load(Ordering::SeqCst), 1);
        assert_eq!(foreign.flushes.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn first_error_wins_but_all_sinks_run() {
        let a = Arc::new(Probe {
            owner: thread_token(),
            flushes: AtomicUsize::new(0),
            fail: true,
        });
        let b = Arc::new(Probe {
            owner: thread_token(),
            flushes: AtomicUsize::new(0),
            fail: false,
        });
        register(Arc::downgrade(&a) as Weak<dyn Flushable>);
        register(Arc::downgrade(&b) as Weak<dyn Flushable>);
        assert!(flush_thread_sinks().is_err());
        assert_eq!(a.flushes.load(Ordering::SeqCst), 1);
        assert_eq!(b.flushes.load(Ordering::SeqCst), 1, "error does not halt the sweep");
    }
}
