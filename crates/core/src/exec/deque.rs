//! A bounded Chase–Lev work-stealing deque for boxed items.
//!
//! One *owner* thread pushes and pops at the bottom (LIFO — the freshest
//! fiber is the cache-warm one); any number of *thief* threads steal from
//! the top (FIFO — the oldest fiber has the coldest cache anyway). The
//! index orderings follow Lê, Pop, Cohen & Zappa Nardelli, *Correct and
//! Efficient Work-Stealing for Weak Memory Models* (PPoPP '13), minus the
//! dynamic buffer growth: capacity is fixed and [`WorkDeque::push`] hands
//! the item back on overflow so the scheduler can spill it to its global
//! injector instead.
//!
//! Items cross the deque as raw `Box` pointers held in `AtomicUsize`
//! slots. This sidesteps the classic Chase–Lev wrinkle where a thief
//! speculatively reads a slot the owner may concurrently overwrite: here
//! that read is an atomic load of a word, the `top` CAS validates
//! ownership, and a loser simply discards its copied word — never
//! materializing a `Box` it does not own. Every access is atomic, so the
//! algorithm is clean under ThreadSanitizer and Miri, not just in
//! practice.
//!
//! The owner-only contract for `push`/`pop` is not expressible in the type
//! system here (the scheduler calls everything through `&self`); it is an
//! invariant of the pooled executor, which routes those two calls
//! exclusively through the slot-owning worker.

use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicI64, AtomicUsize, Ordering};

/// Outcome of a [`WorkDeque::steal`] attempt.
#[derive(Debug)]
pub(crate) enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Stole one item.
    Success(T),
}

/// Fixed-capacity work-stealing deque of `Box<T>` (see module docs).
pub(crate) struct WorkDeque<T> {
    /// Next slot the owner pushes into; only the owner writes it (thieves
    /// read it to bound their scan).
    bottom: AtomicI64,
    /// Oldest live slot; thieves advance it by CAS, the owner CASes it in
    /// the last-item race of `pop`.
    top: AtomicI64,
    slots: Box<[AtomicUsize]>,
    mask: i64,
    _owns: PhantomData<Box<T>>,
}

// The deque logically owns the boxed items whose pointers sit in its
// slots; handing them across threads is the whole point.
unsafe impl<T: Send> Send for WorkDeque<T> {}
unsafe impl<T: Send> Sync for WorkDeque<T> {}

impl<T> WorkDeque<T> {
    /// Creates a deque holding at most `capacity` items (rounded up to a
    /// power of two).
    pub(crate) fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|_| AtomicUsize::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        WorkDeque {
            bottom: AtomicI64::new(0),
            top: AtomicI64::new(0),
            slots,
            mask: cap as i64 - 1,
            _owns: PhantomData,
        }
    }

    fn slot(&self, index: i64) -> &AtomicUsize {
        &self.slots[(index & self.mask) as usize]
    }

    /// Approximate number of queued items. Exact when called by the owner
    /// with no concurrent steal in flight; otherwise a snapshot.
    pub(crate) fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Approximate emptiness check (same caveats as [`WorkDeque::len`]).
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: push `item` at the bottom. Returns `Err(item)` when the
    /// deque is full (the caller spills to the injector).
    pub(crate) fn push(&self, item: Box<T>) -> Result<(), Box<T>> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t > self.mask {
            return Err(item);
        }
        self.slot(b)
            .store(Box::into_raw(item) as usize, Ordering::Relaxed);
        // The Release store of the new bottom publishes the slot write to
        // thieves reading bottom with Acquire.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: pop the most recently pushed item.
    pub(crate) fn pop(&self) -> Option<Box<T>> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // Order the bottom decrement against thieves' top read: either a
        // concurrent thief sees the shrunken bottom, or we see its top
        // increment below.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let ptr = self.slot(b).load(Ordering::Relaxed);
        if t == b {
            // Last item: race thieves for it via top. Only the CAS winner
            // turns the word back into a Box.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if !won {
                return None;
            }
        }
        Some(unsafe { Box::from_raw(ptr as *mut T) })
    }

    /// Thief: steal the oldest item.
    pub(crate) fn steal(&self) -> Steal<Box<T>> {
        let t = self.top.load(Ordering::Acquire);
        // Pair with the owner's pop fence: see either its decremented
        // bottom or its top CAS.
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Speculatively copy the word, then claim it by advancing top. If
        // the owner has since overwritten the slot (the buffer wrapped),
        // top moved past `t` first, so the CAS fails and the stale word is
        // discarded — a loser never owns the item.
        let ptr = self.slot(t).load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        Steal::Success(unsafe { Box::from_raw(ptr as *mut T) })
    }
}

impl<T> Drop for WorkDeque<T> {
    fn drop(&mut self) {
        // Exclusive access here: drain live slots so queued items drop.
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        for i in t..b {
            let ptr = self.slot(i).load(Ordering::Relaxed);
            drop(unsafe { Box::from_raw(ptr as *mut T) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = WorkDeque::new(8);
        for i in 0..4 {
            d.push(Box::new(i)).unwrap();
        }
        assert_eq!(d.len(), 4);
        assert_eq!(d.pop().as_deref(), Some(&3), "owner pops the freshest");
        match d.steal() {
            Steal::Success(v) => assert_eq!(*v, 0, "thief steals the oldest"),
            other => panic!("expected steal success, got {other:?}"),
        }
        assert_eq!(d.pop().as_deref(), Some(&2));
        assert_eq!(d.pop().as_deref(), Some(&1));
        assert!(d.pop().is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn overflow_returns_item() {
        let d = WorkDeque::new(2);
        d.push(Box::new(1)).unwrap();
        d.push(Box::new(2)).unwrap();
        assert_eq!(*d.push(Box::new(3)).unwrap_err(), 3, "full deque refuses");
        assert_eq!(d.pop().as_deref(), Some(&2));
        d.push(Box::new(3)).unwrap();
    }

    #[test]
    fn drop_drains_queued_items() {
        #[derive(Debug)]
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let d = WorkDeque::new(8);
            for _ in 0..5 {
                d.push(Box::new(Counted(drops.clone()))).unwrap();
            }
            drop(d.pop()); // one dropped here
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }

    /// Owner pushes/pops while thieves steal; every item must be delivered
    /// exactly once. Iteration counts shrink under Miri. Item indices run
    /// past several buffer wraps so the speculative-read ABA window gets
    /// exercised, not just the steady state.
    #[test]
    fn concurrent_steal_delivers_each_item_once() {
        const THIEVES: usize = 3;
        #[cfg(miri)]
        const ITEMS: usize = 200;
        #[cfg(not(miri))]
        const ITEMS: usize = 20_000;

        let d = Arc::new(WorkDeque::new(32));
        let seen = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicUsize::new(0));
        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let (d, seen, stop) = (d.clone(), seen.clone(), stop.clone());
                std::thread::spawn(move || loop {
                    match d.steal() {
                        Steal::Success(_) => {
                            seen.fetch_add(1, Ordering::SeqCst);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if stop.load(Ordering::SeqCst) == 1 {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let mut pushed = 0usize;
        while pushed < ITEMS {
            if d.push(Box::new(pushed)).is_ok() {
                pushed += 1;
            } else if d.pop().is_some() {
                seen.fetch_add(1, Ordering::SeqCst);
            }
            if pushed.is_multiple_of(7) && d.pop().is_some() {
                seen.fetch_add(1, Ordering::SeqCst);
            }
        }
        while d.pop().is_some() {
            seen.fetch_add(1, Ordering::SeqCst);
        }
        stop.store(1, Ordering::SeqCst);
        for t in thieves {
            t.join().unwrap();
        }
        assert_eq!(seen.load(Ordering::SeqCst), ITEMS);
    }
}
