//! [`ThreadExec`]: the paper's execution model — one OS thread per task —
//! plus the keyed condvar wait table shared with the pooled executor's
//! foreign-thread park path.

use super::{bucket_of, next_id, set_current, weak_dyn, Exec, TaskLocals, BUCKETS};
use crate::error::Result;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Keyed wait table (shared by ThreadExec and the pooled thread-waiter path)
// ---------------------------------------------------------------------------

struct WaitEntry {
    gen: u64,
    waiters: usize,
}

struct WaitBucket {
    map: Mutex<HashMap<usize, WaitEntry>>,
    cv: Condvar,
}

impl Default for WaitBucket {
    fn default() -> Self {
        WaitBucket {
            map: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }
}

impl WaitBucket {
    fn token(&self, key: usize) -> u64 {
        let mut map = self.map.lock();
        map.entry(key)
            .or_insert_with(|| WaitEntry {
                gen: next_id(),
                waiters: 0,
            })
            .gen
    }

    /// Condvar wait honoring the generation protocol. Returns `timed_out`.
    fn wait(&self, key: usize, token: u64, timeout: Option<Duration>) -> bool {
        let mut map = self.map.lock();
        let stale = match map.get(&key) {
            // Absent means the entry was retired after a newer generation
            // was handed out and consumed: any token we hold is stale.
            None => true,
            Some(e) => e.gen != token,
        };
        if stale {
            return false; // spurious return; caller re-checks its predicate
        }
        map.get_mut(&key).unwrap().waiters += 1;
        let timed_out = match timeout {
            Some(d) => self.cv.wait_for(&mut map, d).timed_out(),
            None => {
                self.cv.wait(&mut map);
                false
            }
        };
        if let Some(e) = map.get_mut(&key) {
            e.waiters -= 1;
            if e.waiters == 0 {
                map.remove(&key);
            }
        }
        timed_out
    }

    fn wake(&self, key: usize) {
        let mut map = self.map.lock();
        if let Some(e) = map.get_mut(&key) {
            e.gen = next_id();
            if e.waiters > 0 {
                // Shared condvar per bucket: waiters on other keys may wake
                // spuriously, which the protocol permits.
                self.cv.notify_all();
            } else {
                map.remove(&key);
            }
        }
        // Absent entry: nobody holds a token that could still match (tokens
        // only exist between `park_token` and the end of `wait`, and both
        // keep the entry alive), so there is no one to wake.
    }
}

// ---------------------------------------------------------------------------
// ThreadExec: one OS thread per task
// ---------------------------------------------------------------------------

/// The paper's execution model: every spawned task is a dedicated OS
/// thread; parking is a keyed condvar wait.
pub struct ThreadExec {
    buckets: [WaitBucket; BUCKETS],
    self_ref: OnceLock<Weak<dyn Exec>>,
}

impl ThreadExec {
    /// Create a thread-per-process executor.
    pub fn new() -> Arc<Self> {
        let exec = Arc::new(ThreadExec {
            buckets: Default::default(),
            self_ref: OnceLock::new(),
        });
        let weak = weak_dyn(&exec);
        exec.self_ref.set(weak).ok();
        exec
    }
}

impl Exec for ThreadExec {
    fn spawn(&self, name: &str, body: Box<dyn FnOnce() + Send>) {
        let locals = TaskLocals::new(
            name,
            true,
            self.self_ref.get().expect("self_ref set in new()").clone(),
        );
        std::thread::Builder::new()
            .name(format!("kpn:{name}"))
            .spawn(move || {
                set_current(Some(locals));
                body();
            })
            .expect("spawn process thread");
    }

    fn park_token(&self, key: usize) -> u64 {
        self.buckets[bucket_of(key)].token(key)
    }

    fn park(&self, key: usize, token: u64, timeout: Option<Duration>) -> Result<bool> {
        Ok(self.buckets[bucket_of(key)].wait(key, token, timeout))
    }

    fn unpark_all(&self, key: usize) {
        self.buckets[bucket_of(key)].wake(key);
    }

    fn yield_point(&self) {}

    fn add_idle_hook(&self, _hook: Box<dyn Fn() + Send + Sync>) {
        // Thread mode has no quiescence observer; periodic work (the
        // monitor tick) rides on park timeouts instead.
    }
}

/// The process-wide default executor, used by channels created outside any
/// network (`kpn_core::channel()`).
pub(crate) fn default_exec() -> &'static Arc<ThreadExec> {
    static DEFAULT: OnceLock<Arc<ThreadExec>> = OnceLock::new();
    DEFAULT.get_or_init(ThreadExec::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    #[test]
    fn thread_exec_no_lost_wakeup() {
        // The race the generation protocol closes: wake lands between
        // `park_token` and `park`.
        let exec = ThreadExec::new();
        let key = 0x1000;
        let token = exec.park_token(key);
        exec.unpark_all(key); // invalidates `token` before the park
        let start = Instant::now();
        let timed_out = exec.park(key, token, Some(Duration::from_secs(5))).unwrap();
        assert!(!timed_out, "stale token must return immediately, not wait");
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "park with a stale token should not block"
        );
    }

    #[test]
    fn thread_exec_timeout_reports() {
        let exec = ThreadExec::new();
        let key = 0x2000;
        let token = exec.park_token(key);
        let timed_out = exec
            .park(key, token, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(timed_out, "un-woken park with timeout must report timeout");
    }

    #[test]
    fn thread_exec_unpark_wakes_parked_thread() {
        let exec = ThreadExec::new();
        let key = 0x3000;
        let woke = Arc::new(AtomicBool::new(false));
        let (e2, w2) = (exec.clone(), woke.clone());
        let h = std::thread::spawn(move || {
            let token = e2.park_token(key);
            let timed_out = e2.park(key, token, Some(Duration::from_secs(10))).unwrap();
            w2.store(true, Ordering::SeqCst);
            timed_out
        });
        // Give the thread time to park, then wake it.
        std::thread::sleep(Duration::from_millis(50));
        exec.unpark_all(key);
        let timed_out = h.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
        assert!(!timed_out, "explicit wake must not report a timeout");
    }
}
