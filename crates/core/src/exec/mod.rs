//! The execution layer: one scheduling seam beneath every channel.
//!
//! The paper's runtime is one Java thread per KPN process (§3). PR 3 added a
//! deterministic simulation scheduler, which left the blocking paths in
//! `channel.rs` hand-interleaved between two worlds (`Option<SimScheduler>`
//! branches at every park site). This module extracts the blocking
//! discipline — the thing Kahn semantics actually live in — into a single
//! [`Exec`] trait with three implementations:
//!
//! * [`ThreadExec`] — the paper's shape: one OS thread per process, keyed
//!   condvar parking;
//! * `SimExec` (internal, built from a [`crate::sim::SimScheduler`]) — the
//!   PR-3 deterministic scheduler, now just another executor;
//! * [`PooledExec`] — M:N execution: many processes multiplexed onto a
//!   fixed worker pool with per-worker work-stealing run queues, blocked
//!   channel operations converted into parked stackful continuations, so a
//!   10 000-process graph runs on `available_parallelism()` workers.
//!
//! The module splits by executor: [`mod@self`] holds the trait, task
//! identity, and [`ExecMode`]; `thread.rs`, `sim.rs`, and `pooled.rs` hold
//! the three implementations; `deque.rs` is the Chase–Lev deque under the
//! pooled scheduler and `fiber.rs` its stackful continuations.
//!
//! ## The park/unpark protocol
//!
//! Channels never touch condvars or schedulers directly. A blocking site
//! does, conceptually:
//!
//! ```text
//! lock state;
//! loop {
//!     if !must_wait { break }
//!     let token = exec.park_token(key);   // still under the state lock
//!     unlock state;
//!     exec.park(key, token, timeout)?;    // may return spuriously
//!     lock state;
//! }
//! ```
//!
//! and every wake site calls `exec.unpark_all(key)` *after* publishing the
//! state change. Lost wakeups are impossible because of a generation
//! protocol ("absent is stale"): `park_token` reads the key's current
//! generation while the caller still holds the lock that guards the wait
//! predicate; any `unpark_all` that runs after that point bumps the
//! generation, and `park` with a stale token returns immediately. A parked
//! task can therefore only sleep through a wakeup it had already observed
//! the effects of. Spurious returns are always allowed — callers re-check
//! their predicate in a loop.
//!
//! ## Task identity
//!
//! Monitors and the flush registry used to key their bookkeeping by OS
//! thread. Under a pooled executor one worker thread runs many tasks (and
//! one task may migrate between workers), so identity moves to a
//! `TaskLocals` record carried by the task itself and installed into a
//! thread-local by whichever worker is currently running it.

mod deque;
pub(crate) mod fiber;
mod pooled;
pub mod reactor;
mod sim;
mod thread;

pub use pooled::PooledExec;
pub(crate) use sim::SimExec;
pub(crate) use thread::default_exec;
pub use thread::ThreadExec;

use crate::error::Result;
use crate::flush::Flushable;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Monotonic source of task tokens and park generations. Starting at 1
/// keeps 0 free as an always-stale sentinel.
static GLOBAL_COUNTER: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_id() -> u64 {
    GLOBAL_COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// Downgrade to an unsized `Weak<dyn Exec>` (coercion happens at the
/// return position).
pub(crate) fn weak_dyn<T: Exec>(arc: &Arc<T>) -> Weak<dyn Exec> {
    let w: Weak<T> = Arc::downgrade(arc);
    w
}

/// Buckets for the keyed wait tables (thread and pooled executors).
pub(crate) const BUCKETS: usize = 16;

pub(crate) fn bucket_of(key: usize) -> usize {
    // Keys are addresses; the low bits below 16 are alignment noise.
    (key >> 4) & (BUCKETS - 1)
}

/// The scheduling seam every channel blocks through.
///
/// Implementations decide what a "task" is (OS thread, sim task, pooled
/// fiber) and how a blocked task sleeps; channels only ever express *what*
/// they are waiting for (a `key`) and *when* the wait became unnecessary
/// (`unpark_all`).
pub trait Exec: Send + Sync + 'static {
    /// Start a new task running `body`. The task inherits nothing from the
    /// spawning thread; its identity is fresh.
    fn spawn(&self, name: &str, body: Box<dyn FnOnce() + Send>);

    /// Read the current generation for `key`, creating the key's wait entry
    /// if needed. Must be called while holding the lock that guards the
    /// caller's wait predicate; the returned token is what makes the
    /// subsequent [`Exec::park`] immune to lost wakeups.
    fn park_token(&self, key: usize) -> u64;

    /// Block the current task until `unpark_all(key)` is called with a
    /// generation newer than `token`, the timeout elapses, or spuriously.
    ///
    /// Returns `Ok(true)` if the wait timed out, `Ok(false)` otherwise.
    /// Executors that serialize or pool tasks may ignore `timeout` (they
    /// drive periodic work through [`Exec::add_idle_hook`] instead).
    /// Returns an error if this executor cannot block the calling context
    /// (e.g. a foreign OS thread blocking on a simulation's channel).
    fn park(&self, key: usize, token: u64, timeout: Option<Duration>) -> Result<bool>;

    /// Wake every task parked on `key` and invalidate outstanding tokens
    /// for it. Callable from any thread.
    fn unpark_all(&self, key: usize);

    /// A voluntary scheduling point. No-op for preemptive executors; the
    /// simulation uses it to interleave at every channel operation.
    fn yield_point(&self);

    /// Register a hook run when the executor quiesces (every task parked).
    /// The monitor's deadlock tick rides on this for executors that do not
    /// honor park timeouts.
    fn add_idle_hook(&self, hook: Box<dyn Fn() + Send + Sync>);

    /// Release tasks held at a start barrier, if the executor has one.
    fn release(&self) {}

    /// Note that the current task is entering a region that blocks the
    /// underlying OS thread outside the park protocol (socket I/O). Pooled
    /// executors use this to keep the worker pool from starving.
    fn enter_blocking(&self) {}

    /// Exit a region entered with [`Exec::enter_blocking`].
    fn exit_blocking(&self) {}

    /// Ask the executor to wind down once all tasks finish. Idempotent;
    /// no-op for executors without retained resources.
    fn shutdown(&self) {}

    /// Point-in-time scheduler counters, for executors that keep them
    /// (currently only [`PooledExec`]). `None` elsewhere.
    fn scheduler_stats(&self) -> Option<SchedulerStats> {
        None
    }

    /// The readiness reactor owned by this executor, if it can park tasks
    /// on socket readiness (currently only [`PooledExec`] on
    /// Linux/x86_64). Callers that get `None` fall back to blocking the
    /// OS thread under [`blocking_region`].
    fn reactor(&self) -> Option<Arc<reactor::Reactor>> {
        None
    }
}

// ---------------------------------------------------------------------------
// Scheduler observability
// ---------------------------------------------------------------------------

/// Per-worker scheduling counters of a [`PooledExec`], snapshotted by
/// [`Exec::scheduler_stats`]. All counters are cumulative since pool
/// creation and are maintained with relaxed atomics — they never
/// synchronize the scheduler, only observe it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Fibers this worker switched into (dispatches).
    pub fiber_switches: u64,
    /// Dispatches served by the worker's own deque (LIFO pop).
    pub local_pops: u64,
    /// Dispatches served by the worker's LIFO hot slot.
    pub hot_hits: u64,
    /// Steal sweeps attempted (one per victim probed).
    pub steal_attempts: u64,
    /// Steal sweeps that yielded at least one fiber.
    pub steal_successes: u64,
    /// Total fibers obtained by stealing (steal-half takes several).
    pub stolen_fibers: u64,
    /// Fibers taken from the global injector.
    pub injector_pops: u64,
    /// Times this worker went to sleep on the pool's condvar.
    pub parks: u64,
    /// Times this worker was woken from that sleep.
    pub unparks: u64,
    /// Run-queue depth (deque + hot slot) at snapshot time.
    pub queue_depth: u64,
    /// Highest run-queue depth observed after a local push.
    pub max_queue_depth: u64,
}

impl WorkerStats {
    fn add(&mut self, o: &WorkerStats) {
        self.fiber_switches += o.fiber_switches;
        self.local_pops += o.local_pops;
        self.hot_hits += o.hot_hits;
        self.steal_attempts += o.steal_attempts;
        self.steal_successes += o.steal_successes;
        self.stolen_fibers += o.stolen_fibers;
        self.injector_pops += o.injector_pops;
        self.parks += o.parks;
        self.unparks += o.unparks;
        self.queue_depth += o.queue_depth;
        self.max_queue_depth = self.max_queue_depth.max(o.max_queue_depth);
    }
}

/// Pool-wide scheduling counters of a [`PooledExec`] (see
/// [`Exec::scheduler_stats`]); surfaced through
/// [`crate::monitor::MonitorStats`] for networks running on a pool.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Configured steady-state worker count (the number of slots).
    pub target_workers: usize,
    /// Worker threads currently alive, including `blocking_region`
    /// compensation workers.
    pub current_workers: usize,
    /// Fibers ever pushed to the global injector (spawns, cross-worker and
    /// foreign-thread unparks, deque overflow spills).
    pub injector_pushes: u64,
    /// Fibers sitting in the injector at snapshot time.
    pub injector_depth: usize,
    /// Unparked fibers routed through the injector because the waker was
    /// not a slot-owning worker of this pool.
    pub foreign_unparks: u64,
    /// Tasks currently inside a [`blocking_region`] (the pool's
    /// `external` gauge). Snapshotted under the same central-lock
    /// acquisition as `current_workers`, so `blocked_workers <=
    /// current_workers` holds in every snapshot — `exit_blocking`'s
    /// surplus-worker retirement can never be observed halfway.
    pub blocked_workers: usize,
    /// Readiness-reactor counters, when the pool has instantiated one
    /// (see [`reactor::Reactor`]); `None` under the thread net backend.
    pub reactor: Option<reactor::ReactorStats>,
    /// Per-slot worker counters, indexed by slot.
    pub workers: Vec<WorkerStats>,
}

impl SchedulerStats {
    /// Sum of the per-worker counters (`max_queue_depth` is the max).
    pub fn totals(&self) -> WorkerStats {
        let mut t = WorkerStats::default();
        for w in &self.workers {
            t.add(w);
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Task identity
// ---------------------------------------------------------------------------

/// Per-task identity and task-local state, carried by the task itself so it
/// survives migration between pooled workers.
pub(crate) struct TaskLocals {
    /// Unique token identifying this task to the monitor.
    pub(crate) token: u64,
    /// The task's (process) name; empty for foreign threads.
    pub(crate) name: String,
    /// True for KPN process tasks, false for foreign threads.
    pub(crate) is_process: bool,
    /// The executor running this task (for `blocking_region` and pooled
    /// self-identification). Weak to avoid an `Arc` cycle.
    pub(crate) exec: Weak<dyn Exec>,
    /// Buffered sinks owned by this task: flushed before every blocking
    /// read (see [`crate::flush`]).
    pub(crate) sinks: Mutex<Vec<Weak<dyn Flushable>>>,
}

impl TaskLocals {
    pub(crate) fn new(name: &str, is_process: bool, exec: Weak<dyn Exec>) -> Arc<Self> {
        Arc::new(TaskLocals {
            token: next_id(),
            name: name.to_string(),
            is_process,
            exec,
            sinks: Mutex::new(Vec::new()),
        })
    }
}

thread_local! {
    /// The task currently running on this thread. `None` until first use on
    /// foreign threads; set by executors on task entry (and on every fiber
    /// switch-in for pooled workers).
    static CURRENT: RefCell<Option<Arc<TaskLocals>>> = const { RefCell::new(None) };
}

/// Run `f` with the current task's locals, lazily installing foreign-thread
/// locals on threads no executor owns.
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<TaskLocals>) -> R) -> R {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        if cur.is_none() {
            let exec = weak_dyn(default_exec());
            *cur = Some(TaskLocals::new("", false, exec));
        }
        f(cur.as_ref().unwrap())
    })
}

/// Install `locals` as the current task on this thread, returning the
/// previous value (restore it when the task yields the thread).
pub(crate) fn set_current(locals: Option<Arc<TaskLocals>>) -> Option<Arc<TaskLocals>> {
    CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), locals))
}

/// A stable token identifying the current task (not the current OS thread):
/// the monitor keys its blocked-set by this.
pub(crate) fn task_token() -> u64 {
    with_current(|l| l.token)
}

/// True when the caller is a KPN process task (as opposed to a foreign
/// thread touching a channel from outside the network).
pub(crate) fn is_process_task() -> bool {
    with_current(|l| l.is_process)
}

/// The current task's process name, or `None` on foreign threads.
pub(crate) fn current_task_name() -> Option<String> {
    with_current(|l| {
        if l.is_process {
            Some(l.name.clone())
        } else {
            None
        }
    })
}

/// Install process-task locals on the current thread (test helper for code
/// that blocks on channels from hand-spawned threads).
#[cfg(test)]
pub(crate) fn install_process_locals(name: &str) {
    let exec = weak_dyn(default_exec());
    set_current(Some(TaskLocals::new(name, true, exec)));
}

/// Run `f`, telling the current task's executor that the region blocks the
/// OS thread outside the park protocol (socket reads, condvar waits on
/// foreign state). Pooled executors temporarily enlarge their worker pool
/// so fibers keep running; other executors run `f` directly.
pub fn blocking_region<T>(f: impl FnOnce() -> T) -> T {
    let exec = with_current(|l| l.exec.clone()).upgrade();
    struct Guard(Option<Arc<dyn Exec>>);
    impl Drop for Guard {
        fn drop(&mut self) {
            if let Some(e) = &self.0 {
                e.exit_blocking();
            }
        }
    }
    let guard = Guard(exec);
    if let Some(e) = &guard.0 {
        e.enter_blocking();
    }
    f()
}

/// The executor running the current task — the process's executor on KPN
/// tasks, the thread-mode default executor on foreign threads, `None`
/// once the owning executor has shut down.
pub fn current_exec() -> Option<Arc<dyn Exec>> {
    with_current(|l| l.exec.clone()).upgrade()
}

// ---------------------------------------------------------------------------
// NetBackend: how remote-channel waits block
// ---------------------------------------------------------------------------

/// How the net layer waits on a socket that isn't ready.
///
/// This is a *wait mechanism* choice, not a semantic one: per-channel
/// FIFO histories — the thing Kahn determinacy lives in — are identical
/// under both backends (DESIGN.md §5j).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetBackend {
    /// Block the OS thread, compensated through [`blocking_region`]
    /// (the paper's shape; today's default).
    Threads,
    /// Park the calling fiber on socket readiness via the pool's
    /// [`reactor::Reactor`]; contexts without a reactor (foreign
    /// threads, thread/sim executors, non-Linux) fall back per-wait to
    /// `Threads` behavior.
    Reactor,
}

/// Process-wide backend override: 0 = unset (env decides), 1 = threads,
/// 2 = reactor. See [`set_net_backend`].
static NET_BACKEND: AtomicU8 = AtomicU8::new(0);

/// The `KPN_NET_BACKEND` env parse, read once per process.
static NET_BACKEND_ENV: std::sync::OnceLock<NetBackend> = std::sync::OnceLock::new();

/// The net backend in effect: a [`set_net_backend`] override if present,
/// else `KPN_NET_BACKEND` (`threads` | `reactor`, default `threads`).
pub fn net_backend() -> NetBackend {
    match NET_BACKEND.load(Ordering::Relaxed) {
        1 => NetBackend::Threads,
        2 => NetBackend::Reactor,
        _ => *NET_BACKEND_ENV.get_or_init(|| {
            match std::env::var("KPN_NET_BACKEND") {
                Ok(v) if v.trim().eq_ignore_ascii_case("reactor") => NetBackend::Reactor,
                _ => NetBackend::Threads,
            }
        }),
    }
}

/// Install (or with `None` clear) a process-wide net-backend override,
/// outranking `KPN_NET_BACKEND`. Takes effect for transports created
/// after the call; [`crate::NetworkConfig`]'s `net_backend` builder and
/// tests drive this.
pub fn set_net_backend(backend: Option<NetBackend>) {
    let v = match backend {
        None => 0,
        Some(NetBackend::Threads) => 1,
        Some(NetBackend::Reactor) => 2,
    };
    NET_BACKEND.store(v, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// ExecMode: network-level executor selection
// ---------------------------------------------------------------------------

/// Which executor a [`crate::Network`] runs its processes on.
#[derive(Clone)]
pub enum ExecMode {
    /// One OS thread per process (the paper's model).
    Thread,
    /// A fixed worker pool running processes as parked continuations;
    /// `workers == 0` means `available_parallelism()`.
    Pooled {
        /// Worker thread count (0 = `available_parallelism()`).
        workers: usize,
    },
    /// The deterministic simulation scheduler from PR 3.
    Sim(Arc<crate::sim::SimScheduler>),
}

impl std::fmt::Debug for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Thread => write!(f, "Thread"),
            ExecMode::Pooled { workers } => write!(f, "Pooled {{ workers: {workers} }}"),
            ExecMode::Sim(_) => write!(f, "Sim(..)"),
        }
    }
}

impl Default for ExecMode {
    /// Reads `KPN_EXEC` and `KPN_WORKERS` so existing programs can be
    /// switched to the pooled executor without code changes; defaults to
    /// [`ExecMode::Thread`] (see [`ExecMode::from_env`]).
    fn default() -> Self {
        Self::from_env()
    }
}

impl ExecMode {
    /// Parse the `KPN_EXEC` / `KPN_WORKERS` environment variables.
    ///
    /// `KPN_EXEC` selects the executor (`thread`, `pooled`, `pooled:N`);
    /// `KPN_WORKERS=N` sets the pooled worker count and, when `KPN_EXEC`
    /// is unset, implies `pooled`. Precedence, strongest first: an
    /// explicit [`crate::NetworkConfig::workers`] call (which bypasses
    /// this parser entirely) > `KPN_WORKERS` > `KPN_EXEC=pooled:N` >
    /// `available_parallelism()`. An explicit `KPN_EXEC=thread` wins over
    /// `KPN_WORKERS` — naming the executor outranks tuning one.
    pub fn from_env() -> ExecMode {
        let workers_env = std::env::var("KPN_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok());
        match std::env::var("KPN_EXEC") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("pooled") {
                    ExecMode::Pooled {
                        workers: workers_env.unwrap_or(0),
                    }
                } else if let Some(n) = v
                    .strip_prefix("pooled:")
                    .and_then(|n| n.parse::<usize>().ok())
                {
                    ExecMode::Pooled {
                        workers: workers_env.unwrap_or(n),
                    }
                } else {
                    ExecMode::Thread
                }
            }
            Err(_) => match workers_env {
                Some(n) => ExecMode::Pooled { workers: n },
                None => ExecMode::Thread,
            },
        }
    }

    /// True for [`ExecMode::Sim`].
    pub fn is_sim(&self) -> bool {
        matches!(self, ExecMode::Sim(_))
    }

    /// Instantiate the executor for this mode.
    pub(crate) fn build(&self) -> Arc<dyn Exec> {
        match self {
            ExecMode::Thread => default_exec().clone() as Arc<dyn Exec>,
            ExecMode::Pooled { workers } => PooledExec::new(*workers) as Arc<dyn Exec>,
            ExecMode::Sim(sched) => SimExec::new(sched.clone()) as Arc<dyn Exec>,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_mode_env_parsing() {
        // Not exercised via the env vars themselves (tests run in
        // parallel); from_env falls back to Thread when both are unset,
        // and the parser is trivial enough to exercise through the enum.
        assert!(matches!(
            ExecMode::Pooled { workers: 3 },
            ExecMode::Pooled { workers: 3 }
        ));
    }

    #[test]
    fn scheduler_stats_totals_sum_workers() {
        let a = WorkerStats {
            local_pops: 3,
            stolen_fibers: 2,
            max_queue_depth: 7,
            ..Default::default()
        };
        let b = WorkerStats {
            local_pops: 4,
            hot_hits: 5,
            max_queue_depth: 4,
            ..Default::default()
        };
        let s = SchedulerStats {
            target_workers: 2,
            workers: vec![a, b],
            ..Default::default()
        };
        let t = s.totals();
        assert_eq!(t.local_pops, 7);
        assert_eq!(t.hot_hits, 5);
        assert_eq!(t.stolen_fibers, 2);
        assert_eq!(t.max_queue_depth, 7, "depth aggregates by max, not sum");
    }

    #[test]
    fn blocking_region_on_foreign_thread_is_direct() {
        assert_eq!(blocking_region(|| 41 + 1), 42);
    }
}
