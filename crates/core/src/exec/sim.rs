//! [`SimExec`]: the PR-3 deterministic scheduler as an executor.

use super::{set_current, weak_dyn, Exec, TaskLocals};
use crate::error::{Error, Result};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

/// Adapter making [`crate::sim::SimScheduler`] an [`Exec`]. Tasks still run
/// on dedicated OS threads, but the scheduler serializes them: exactly one
/// is runnable at a time, and every park/yield is a recorded scheduling
/// decision, so a seed replays the exact interleaving.
pub(crate) struct SimExec {
    sched: Arc<crate::sim::SimScheduler>,
    self_ref: OnceLock<Weak<dyn Exec>>,
}

impl SimExec {
    pub(crate) fn new(sched: Arc<crate::sim::SimScheduler>) -> Arc<Self> {
        let exec = Arc::new(SimExec {
            sched,
            self_ref: OnceLock::new(),
        });
        let weak = weak_dyn(&exec);
        exec.self_ref.set(weak).ok();
        exec
    }
}

impl Exec for SimExec {
    fn spawn(&self, name: &str, body: Box<dyn FnOnce() + Send>) {
        // Register on the spawning thread so task ids follow program order
        // (the property that makes traces replayable across runs).
        let tid = self.sched.register_task(name);
        let sched = self.sched.clone();
        let locals = TaskLocals::new(
            name,
            true,
            self.self_ref.get().expect("self_ref set in new()").clone(),
        );
        std::thread::Builder::new()
            .name(format!("kpn:{name}"))
            .spawn(move || {
                set_current(Some(locals));
                sched.attach(tid);
                body();
                sched.finish_current();
            })
            .expect("spawn sim task thread");
    }

    fn park_token(&self, _key: usize) -> u64 {
        // The scheduler serializes execution: between reading this token
        // and calling `park` the current task *is* the running task, so no
        // scheduled task can slip a wakeup in. (Foreign threads cannot park
        // at all — see below.) A constant token is therefore sound.
        0
    }

    fn park(&self, key: usize, _token: u64, _timeout: Option<Duration>) -> Result<bool> {
        if self.sched.is_current() {
            self.sched.park(key);
            Ok(false)
        } else {
            // A foreign thread blocking on a simulation's channel would
            // dissolve determinism into wall-clock waiting (the old code
            // degraded to a clamped condvar spin here). Reject it loudly.
            Err(Error::Graph(
                "cross-executor channel use: blocking on a simulation network's channel \
                 from outside the simulation (read or write the channel from a process \
                 inside `run_sim`, or collect results after the run)"
                    .into(),
            ))
        }
    }

    fn unpark_all(&self, key: usize) {
        // Legal from any thread: readies parked tasks without running them.
        self.sched.unpark_all(key);
    }

    fn yield_point(&self) {
        if self.sched.is_current() {
            self.sched.yield_now();
        }
        // Foreign threads performing non-blocking operations are legal and
        // yield nothing to the schedule.
    }

    fn add_idle_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        self.sched.add_idle_hook(hook);
    }

    fn release(&self) {
        self.sched.release();
    }
}
