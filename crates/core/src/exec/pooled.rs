//! [`PooledExec`]: M:N execution — many fibers, a fixed worker pool — with
//! per-worker work-stealing run queues.
// Fibers circulate as `Box<Fiber>` everywhere: the deque and hot slot store
// them as raw box pointers in atomic slots, so `Vec<Box<Fiber>>` batches
// hand the same allocation through — unboxing to `Vec<Fiber>` would re-box
// at every queue boundary.
#![allow(clippy::vec_box)]
//!
//! ## Scheduling architecture
//!
//! Earlier revisions kept one central `VecDeque` behind the pool mutex:
//! every dispatch, park completion, and unpark serialized on that lock, and
//! an unparked fiber went to the *back* of a global FIFO — a pipeline of
//! 10 000 stages round-robined the whole ring once per token hop. Work now
//! lives in three places, checked in cache-warmth order:
//!
//! 1. **Hot slot** — a single-fiber LIFO slot per worker. When a fiber
//!    running on a worker unparks another fiber (a writer filling the
//!    channel its reader is parked on), the woken fiber lands here and runs
//!    *next* on the same worker: the channel state it is about to touch is
//!    still in cache, and no lock is taken. A budget of [`HOT_BUDGET`]
//!    consecutive hot dispatches bounds starvation of the other queues.
//! 2. **Local deque** — a bounded Chase–Lev deque ([`super::deque`]),
//!    LIFO for the owner, stolen FIFO from the top by idle workers.
//!    Overflow spills to the injector.
//! 3. **Injector** — a global `VecDeque` under the central mutex, fed by
//!    `spawn`, by unparks from threads that are not slot-owning workers of
//!    this pool, and by deque overflow. Workers poll it on a fair tick
//!    (every [`FAIR_TICK`]-th dispatch, and before stealing) so injected
//!    work cannot starve behind a busy local queue.
//!
//! An idle worker steals: it sweeps the other workers' deques (taking half
//! the victim's queue on success, oldest first), then their hot slots.
//! Hot-slot theft matters for liveness, not just throughput — a fiber
//! sitting in the hot slot of a worker that is stuck in a syscall must be
//! runnable by someone else.
//!
//! ## Sleep/wake protocol
//!
//! A submission wakes at most one sleeping worker, and only when no worker
//! is already searching for work (`searching` gate) — the classic
//! work-stealing wake throttle. The lost-wakeup race this opens is closed
//! Dekker-style: a worker about to sleep first publishes itself
//! (`parked_hint`, SeqCst) and then *rescans every queue* — injector, all
//! deques, all hot slots — while holding the central lock; a producer
//! pushes work first and then checks `parked_hint` behind a SeqCst fence.
//! Whichever ordering the race resolves to, either the producer sees the
//! sleeper (and notifies) or the sleeper sees the work (and does not
//! sleep). The rescan is also what makes the hot slot safe with respect to
//! Parks' deadlock detection: the monitor's quiescence tick only runs when
//! every queue — hot slots included — was observed empty, so a woken-but-
//! unscheduled fiber can never masquerade as global quiescence (see
//! DESIGN.md §5g).
//!
//! Every worker keeps relaxed-atomic counters (dispatch sources, steal
//! traffic, parks); [`Exec::scheduler_stats`] snapshots them without
//! perturbing the scheduler.

use super::deque::{Steal, WorkDeque};
use super::{
    bucket_of, fiber, next_id, reactor, set_current, weak_dyn, with_current, Exec, SchedulerStats,
    TaskLocals, WorkerStats, BUCKETS,
};
use crate::error::Result;
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

/// Consecutive hot-slot dispatches allowed before the worker gives its
/// deque and the injector a turn. Bounds latency for cold work while
/// keeping producer→consumer chains on the fast path.
const HOT_BUDGET: u32 = 32;

/// Every FAIR_TICK-th dispatch drains the injector before local work, so
/// globally submitted fibers make progress even on a saturated worker.
/// Prime, so the fair tick does not phase-lock with request patterns.
const FAIR_TICK: u64 = 61;

/// Per-worker deque capacity; overflow spills to the injector.
const DEQUE_CAPACITY: usize = 256;

/// How many extra fibers a worker moves from the injector into its own
/// deque per injector visit (beyond the one it runs), amortizing the
/// central lock.
const INJECTOR_BATCH: usize = 16;

thread_local! {
    /// `(pool address, slot index)` for pool-worker threads; slot is
    /// `usize::MAX` for compensation workers that own no slot. Lets
    /// `unpark_all` detect "the waker is a slot-owning worker of this very
    /// pool" without any lock.
    static WORKER_ID: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Cumulative per-slot counters; relaxed atomics, observation only. The
/// counters belong to the *slot*: a compensation worker that later claims
/// slot `i` continues slot `i`'s series.
#[derive(Default)]
struct WorkerCounters {
    fiber_switches: AtomicU64,
    local_pops: AtomicU64,
    hot_hits: AtomicU64,
    steal_attempts: AtomicU64,
    steal_successes: AtomicU64,
    stolen_fibers: AtomicU64,
    injector_pops: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
    max_queue_depth: AtomicU64,
}

impl WorkerCounters {
    fn snapshot(&self, queue_depth: u64) -> WorkerStats {
        WorkerStats {
            fiber_switches: self.fiber_switches.load(Ordering::Relaxed),
            local_pops: self.local_pops.load(Ordering::Relaxed),
            hot_hits: self.hot_hits.load(Ordering::Relaxed),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            steal_successes: self.steal_successes.load(Ordering::Relaxed),
            stolen_fibers: self.stolen_fibers.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            unparks: self.unparks.load(Ordering::Relaxed),
            queue_depth,
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// One worker's scheduling state. Slots are fixed at pool creation
/// (`target` of them); worker threads claim and release them, so the
/// compensation workers spawned around `blocking_region` run slotless
/// (injector + steal only) until a slot frees up.
struct WorkerSlot {
    deque: WorkDeque<fiber::Fiber>,
    /// LIFO hot slot: a raw `Box<Fiber>` pointer, null when empty. Filled
    /// only by the owning worker; drained by the owner *or* by thieves
    /// (atomic swap either way, so ownership transfer is race-free).
    hot: AtomicPtr<fiber::Fiber>,
    occupied: AtomicBool,
    stats: WorkerCounters,
}

impl WorkerSlot {
    fn new() -> Self {
        WorkerSlot {
            deque: WorkDeque::new(DEQUE_CAPACITY),
            hot: AtomicPtr::new(std::ptr::null_mut()),
            occupied: AtomicBool::new(false),
            stats: WorkerCounters::default(),
        }
    }

    fn take_hot(&self) -> Option<Box<fiber::Fiber>> {
        let p = self.hot.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if p.is_null() {
            None
        } else {
            Some(unsafe { Box::from_raw(p) })
        }
    }

    /// Install `f` as the hot fiber, returning the one it displaced.
    fn put_hot(&self, f: Box<fiber::Fiber>) -> Option<Box<fiber::Fiber>> {
        let old = self.hot.swap(Box::into_raw(f), Ordering::AcqRel);
        if old.is_null() {
            None
        } else {
            Some(unsafe { Box::from_raw(old) })
        }
    }

    fn hot_occupied(&self) -> bool {
        !self.hot.load(Ordering::SeqCst).is_null()
    }

    fn note_depth(&self) {
        let d = self.deque.len() as u64 + u64::from(self.hot_occupied());
        self.stats.max_queue_depth.fetch_max(d, Ordering::Relaxed);
    }
}

impl Drop for WorkerSlot {
    fn drop(&mut self) {
        // The deque drains itself; the hot slot is ours to free.
        drop(self.take_hot());
    }
}

struct PoolEntry {
    gen: u64,
    fibers: Vec<Box<fiber::Fiber>>,
    thread_waiters: usize,
}

struct PoolBucket {
    map: Mutex<HashMap<usize, PoolEntry>>,
    cv: Condvar,
}

impl Default for PoolBucket {
    fn default() -> Self {
        PoolBucket {
            map: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }
}

/// State behind the central mutex: the injector plus pool-lifecycle
/// bookkeeping. Dispatch itself no longer touches this lock — only
/// spawn/injector traffic, sleeping, and worker lifecycle do.
struct PoolState {
    injector: VecDeque<Box<fiber::Fiber>>,
    /// Tasks spawned and not yet finished (runnable, running, or parked).
    alive: usize,
    /// Worker threads in existence (slotted + slotless).
    workers: usize,
    /// Workers currently inside a `blocking_region`.
    external: usize,
    /// Workers asleep on `work_cv` (authoritative; `parked_hint` is the
    /// lock-free shadow producers read).
    parked: usize,
    /// A worker is currently running idle hooks.
    ticking: bool,
    shutdown: bool,
    injector_pushes: u64,
    foreign_unparks: u64,
}

/// M:N executor: tasks are stackful fibers multiplexed onto a fixed pool
/// of worker threads, each with its own work-stealing run queue (see the
/// module docs for the scheduling architecture). A blocked channel
/// operation parks the fiber — the worker moves on to the next runnable
/// task — so graph size is bounded by memory, not by OS thread limits. On
/// targets without the context-switch assembly (non-x86_64) it degrades to
/// thread-per-task.
pub struct PooledExec {
    /// Steady-state worker count (== number of slots).
    target: usize,
    central: Mutex<PoolState>,
    work_cv: Condvar,
    slots: Box<[WorkerSlot]>,
    /// Workers currently running a fiber. Atomic so dispatch does not take
    /// the central lock; the quiescence check tolerates the resulting
    /// in-transit raciness (spurious monitor ticks are re-verified by the
    /// monitor, and the quiescent poll has a timeout).
    busy: AtomicUsize,
    /// Workers currently sweeping for steals; submissions skip their
    /// wakeup while one is live (it will find the work or rescan).
    searching: AtomicUsize,
    /// Lock-free shadow of `PoolState::parked` for the producer-side
    /// Dekker check.
    parked_hint: AtomicUsize,
    buckets: [PoolBucket; BUCKETS],
    idle_hooks: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
    /// Readiness reactor, created lazily on the first [`Exec::reactor`]
    /// call (i.e. only when the net layer actually selects the reactor
    /// backend). `Some(None)` caches "unavailable on this platform".
    reactor: OnceLock<Option<Arc<reactor::Reactor>>>,
    self_ref: OnceLock<Weak<dyn Exec>>,
    self_pool: OnceLock<Weak<PooledExec>>,
}

impl PooledExec {
    /// Create a pooled executor with `workers` worker threads (0 means
    /// `available_parallelism()`).
    pub fn new(workers: usize) -> Arc<Self> {
        let target = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let exec = Arc::new(PooledExec {
            target,
            central: Mutex::new(PoolState {
                injector: VecDeque::new(),
                alive: 0,
                workers: 0,
                external: 0,
                parked: 0,
                ticking: false,
                shutdown: false,
                injector_pushes: 0,
                foreign_unparks: 0,
            }),
            work_cv: Condvar::new(),
            slots: (0..target).map(|_| WorkerSlot::new()).collect(),
            busy: AtomicUsize::new(0),
            searching: AtomicUsize::new(0),
            parked_hint: AtomicUsize::new(0),
            buckets: Default::default(),
            idle_hooks: Mutex::new(Vec::new()),
            reactor: OnceLock::new(),
            self_ref: OnceLock::new(),
            self_pool: OnceLock::new(),
        });
        let weak = weak_dyn(&exec);
        exec.self_ref.set(weak).ok();
        exec.self_pool.set(Arc::downgrade(&exec)).ok();
        exec
    }

    /// True when the calling code runs on one of *this* pool's fibers.
    /// (A fiber of pool A blocking on pool B's channel must use B's
    /// thread-waiter path: parking it as a fiber in B would strand it.)
    fn is_own_fiber(&self) -> bool {
        fiber::on_fiber()
            && with_current(|l| {
                self.self_ref
                    .get()
                    .map(|me| Weak::ptr_eq(&l.exec, me))
                    .unwrap_or(false)
            })
    }

    fn spawn_worker(&self) {
        let pool = self
            .self_pool
            .get()
            .and_then(Weak::upgrade)
            .expect("pool alive while spawning workers");
        std::thread::Builder::new()
            .name("kpn-pool-worker".into())
            .spawn(move || pool.worker_loop())
            .expect("spawn pool worker");
    }

    fn claim_slot(&self) -> Option<usize> {
        (0..self.slots.len()).find(|&i| {
            self.slots[i]
                .occupied
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        })
    }

    /// Spill a retiring worker's local queues into the injector (caller
    /// holds the central lock and owns slot `i`).
    fn drain_slot_locked(&self, st: &mut PoolState, i: usize) {
        let slot = &self.slots[i];
        while let Some(f) = slot.deque.pop() {
            st.injector.push_back(f);
            st.injector_pushes += 1;
        }
        if let Some(f) = slot.take_hot() {
            st.injector.push_back(f);
            st.injector_pushes += 1;
        }
    }

    fn release_slot(&self, i: usize) {
        // Queues were drained under the central lock in park_worker; a
        // later claimant starts clean.
        self.slots[i].occupied.store(false, Ordering::Release);
    }

    fn worker_loop(self: Arc<Self>) {
        let mut worker_ctx: usize = 0;
        fiber::set_worker_ctx(&mut worker_ctx as *mut usize);
        let addr = Arc::as_ptr(&self) as usize;
        let mut slot = self.claim_slot();
        WORKER_ID.with(|c| c.set(Some((addr, slot.unwrap_or(usize::MAX)))));
        let mut hot_streak: u32 = 0;
        let mut tick: u64 = 0;
        loop {
            if slot.is_none() {
                // Compensation worker: adopt a slot as soon as one frees.
                slot = self.claim_slot();
                if let Some(i) = slot {
                    WORKER_ID.with(|c| c.set(Some((addr, i))));
                }
            }
            if let Some(f) = self.find_work(slot, &mut hot_streak, &mut tick) {
                self.run_fiber(f, slot, &mut worker_ctx);
                continue;
            }
            if self.park_worker(slot) {
                if let Some(i) = slot {
                    self.release_slot(i);
                }
                WORKER_ID.with(|c| c.set(None));
                return;
            }
        }
    }

    /// Next fiber to run, in cache-warmth order: hot slot, local deque,
    /// injector, steal. The fair tick and the hot budget invert the order
    /// so no source starves.
    fn find_work(
        &self,
        slot: Option<usize>,
        hot_streak: &mut u32,
        tick: &mut u64,
    ) -> Option<Box<fiber::Fiber>> {
        *tick += 1;
        let Some(idx) = slot else {
            // Slotless compensation worker: nowhere local to queue, so
            // take from the injector or steal a single fiber.
            return self.pop_injector(None).or_else(|| self.steal_work(None));
        };
        let me = &self.slots[idx];
        let fair = tick.is_multiple_of(FAIR_TICK);
        if !fair && *hot_streak < HOT_BUDGET {
            if let Some(f) = me.take_hot() {
                *hot_streak += 1;
                me.stats.hot_hits.fetch_add(1, Ordering::Relaxed);
                return Some(f);
            }
        } else if fair {
            // Fair tick: reactor readiness and global work first, so a
            // ready socket's fiber gets scheduled even on a worker that
            // never goes idle.
            self.poll_reactor();
            if let Some(f) = self.pop_injector(slot) {
                *hot_streak = 0;
                return Some(f);
            }
        }
        // Budget exhausted or hot slot empty: local deque, then injector,
        // then the hot fiber after all (one bypass per HOT_BUDGET streak is
        // enough to keep every queue draining).
        if let Some(f) = me.deque.pop() {
            *hot_streak = 0;
            me.stats.local_pops.fetch_add(1, Ordering::Relaxed);
            return Some(f);
        }
        if let Some(f) = self.pop_injector(slot) {
            *hot_streak = 0;
            return Some(f);
        }
        if let Some(f) = me.take_hot() {
            *hot_streak = 1;
            me.stats.hot_hits.fetch_add(1, Ordering::Relaxed);
            return Some(f);
        }
        *hot_streak = 0;
        self.steal_work(slot)
    }

    /// Pop one fiber from the injector; slotted callers also move a batch
    /// into their own deque to amortize the central lock.
    fn pop_injector(&self, slot: Option<usize>) -> Option<Box<fiber::Fiber>> {
        let mut st = self.central.lock();
        let first = st.injector.pop_front()?;
        let mut taken = 1u64;
        if let Some(i) = slot {
            let me = &self.slots[i];
            let batch = (st.injector.len() / self.slots.len().max(1)).min(INJECTOR_BATCH);
            for _ in 0..batch {
                let Some(f) = st.injector.pop_front() else { break };
                match me.deque.push(f) {
                    Ok(()) => taken += 1,
                    Err(f) => {
                        st.injector.push_front(f);
                        break;
                    }
                }
            }
            me.note_depth();
        }
        let notify = !st.injector.is_empty() && st.parked > 0;
        drop(st);
        if let Some(i) = slot {
            self.slots[i]
                .stats
                .injector_pops
                .fetch_add(taken, Ordering::Relaxed);
        }
        if notify && self.searching.load(Ordering::SeqCst) == 0 {
            // Leftover global work and sleeping workers: hand one of them
            // the remainder.
            self.work_cv.notify_one();
        }
        Some(first)
    }

    /// Steal sweep over the other workers: deques first (half the victim's
    /// queue), hot slots as a last resort. `Retry` outcomes re-run the
    /// sweep; `Empty` everywhere ends it.
    fn steal_work(&self, slot: Option<usize>) -> Option<Box<fiber::Fiber>> {
        if self.slots.len() <= 1 && slot.is_some() {
            return None; // sole slot owner: nobody to steal from
        }
        self.searching.fetch_add(1, Ordering::SeqCst);
        let got = self.steal_sweep(slot);
        self.searching.fetch_sub(1, Ordering::SeqCst);
        if got.is_some() {
            // The pool is imbalanced; let a sleeper rebalance further.
            self.notify_work();
        }
        got
    }

    fn steal_sweep(&self, slot: Option<usize>) -> Option<Box<fiber::Fiber>> {
        let n = self.slots.len();
        let start = slot.map(|i| i + 1).unwrap_or(0);
        loop {
            let mut retry = false;
            for k in 0..n {
                let v = (start + k) % n;
                if Some(v) == slot {
                    continue;
                }
                if let Some(i) = slot {
                    self.slots[i]
                        .stats
                        .steal_attempts
                        .fetch_add(1, Ordering::Relaxed);
                }
                let victim = &self.slots[v];
                match victim.deque.steal() {
                    Steal::Success(first) => {
                        let mut extra = 0u64;
                        if let Some(i) = slot {
                            // Steal half the victim's remaining queue in
                            // one sweep; a fiber at a time would just
                            // bounce the imbalance back and forth.
                            let me = &self.slots[i];
                            let want = victim.deque.len().div_ceil(2);
                            for _ in 0..want {
                                match victim.deque.steal() {
                                    Steal::Success(f) => {
                                        extra += 1;
                                        if let Err(f) = me.deque.push(f) {
                                            self.inject(vec![f]);
                                            break;
                                        }
                                    }
                                    _ => break,
                                }
                            }
                            me.note_depth();
                            me.stats.steal_successes.fetch_add(1, Ordering::Relaxed);
                            me.stats
                                .stolen_fibers
                                .fetch_add(1 + extra, Ordering::Relaxed);
                        }
                        return Some(first);
                    }
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            // Second pass: hot slots. Last resort because taking one
            // robs its owner of a cache-warm dispatch — but a hot fiber
            // whose owner is stuck in a syscall must stay runnable.
            for k in 0..n {
                let v = (start + k) % n;
                if Some(v) == slot {
                    continue;
                }
                if let Some(f) = self.slots[v].take_hot() {
                    if let Some(i) = slot {
                        let me = &self.slots[i];
                        me.stats.steal_successes.fetch_add(1, Ordering::Relaxed);
                        me.stats.stolen_fibers.fetch_add(1, Ordering::Relaxed);
                    }
                    return Some(f);
                }
            }
            if !retry {
                return None;
            }
            std::hint::spin_loop();
        }
    }

    fn run_fiber(&self, mut f: Box<fiber::Fiber>, slot: Option<usize>, worker_ctx: &mut usize) {
        self.busy.fetch_add(1, Ordering::SeqCst);
        if let Some(i) = slot {
            self.slots[i]
                .stats
                .fiber_switches
                .fetch_add(1, Ordering::Relaxed);
        }
        let prev = set_current(Some(f.locals.clone()));
        f.run(worker_ctx);
        set_current(prev);
        if f.done {
            let mut st = self.central.lock();
            st.alive -= 1;
            let finished = st.alive == 0;
            drop(st);
            self.busy.fetch_sub(1, Ordering::SeqCst);
            if finished {
                self.work_cv.notify_all();
            }
            return;
        }
        if let Some((key, token)) = fiber::PARK_REQUEST.with(|c| c.take()) {
            // Complete the park the fiber requested. Its stack is quiescent
            // now, so it is safe to hand the Box to the wait table — unless
            // the token went stale while the fiber was switching out, in
            // which case the wakeup already happened and the fiber goes
            // straight back to a run queue.
            let mut parked = Some(f);
            {
                let mut map = self.buckets[bucket_of(key)].map.lock();
                if let Some(e) = map.get_mut(&key) {
                    if e.gen == token {
                        e.fibers.push(parked.take().unwrap());
                    }
                }
            }
            self.busy.fetch_sub(1, Ordering::SeqCst);
            if let Some(f) = parked {
                self.enqueue_local(slot, f);
                self.notify_work();
            }
            return;
        }
        // Voluntary yield: requeue locally; this worker keeps running.
        self.enqueue_local(slot, f);
        self.busy.fetch_sub(1, Ordering::SeqCst);
    }

    /// Queue `f` on the caller's own deque (spilling to the injector when
    /// full), or on the injector if the caller has no slot.
    fn enqueue_local(&self, slot: Option<usize>, f: Box<fiber::Fiber>) {
        match slot {
            Some(i) => {
                let me = &self.slots[i];
                if let Err(f) = me.deque.push(f) {
                    self.inject(vec![f]);
                } else {
                    me.note_depth();
                }
            }
            None => self.inject(vec![f]),
        }
    }

    /// Push fibers onto the global injector and wake a sleeper if needed.
    fn inject(&self, fibers: Vec<Box<fiber::Fiber>>) {
        let n = fibers.len() as u64;
        if n == 0 {
            return;
        }
        let mut st = self.central.lock();
        for f in fibers {
            st.injector.push_back(f);
        }
        st.injector_pushes += n;
        let notify = st.parked > 0;
        drop(st);
        if notify && self.searching.load(Ordering::SeqCst) == 0 {
            self.work_cv.notify_one();
        }
    }

    /// Producer half of the Dekker handshake: after publishing work to a
    /// deque or hot slot, wake one sleeper unless a searcher is live.
    fn notify_work(&self) {
        fence(Ordering::SeqCst);
        if self.searching.load(Ordering::Relaxed) > 0 {
            return; // the searcher will find it, or rescan before sleeping
        }
        if self.parked_hint.load(Ordering::Relaxed) == 0 {
            return; // nobody is asleep (or they are mid-rescan and will see it)
        }
        let st = self.central.lock();
        let notify = st.parked > 0;
        drop(st);
        if notify {
            self.work_cv.notify_one();
        }
    }

    /// Injector, every deque, every hot slot — the consumer half of the
    /// Dekker handshake, run under the central lock after publishing
    /// `parked_hint`. The hot slots are scanned too: this is the invariant
    /// that keeps the LIFO slot from masking quiescence to the deadlock
    /// monitor (DESIGN.md §5g).
    fn any_work_visible(&self, st: &PoolState) -> bool {
        !st.injector.is_empty()
            || self
                .slots
                .iter()
                .any(|s| !s.deque.is_empty() || s.hot_occupied())
    }

    /// No work anywhere: retire if surplus, tick the monitor if quiescent,
    /// otherwise sleep until notified. Returns `true` when the worker
    /// should exit.
    fn park_worker(&self, slot: Option<usize>) -> bool {
        // Socket readiness first: anything ready becomes queued work that
        // the quiescence check and the Dekker rescan below will see.
        self.poll_reactor();
        let mut st = self.central.lock();
        if st.shutdown && st.alive == 0 {
            st.workers -= 1;
            return true;
        }
        if st.workers - st.external > self.target {
            // Surplus worker left over from a blocking region: retire,
            // spilling any local work first.
            if let Some(i) = slot {
                self.drain_slot_locked(&mut st, i);
            }
            st.workers -= 1;
            let more =
                st.parked > 0 && (st.workers - st.external > self.target || !st.injector.is_empty());
            drop(st);
            if more {
                self.work_cv.notify_one();
            }
            return true;
        }
        // Quiescent (every non-external task parked): run idle hooks —
        // this is where the deadlock monitor's tick comes from, since
        // parked fibers cannot honor timeouts.
        let quiesce = self.busy.load(Ordering::SeqCst) <= st.external
            && st.alive > 0
            && !st.ticking
            && !st.shutdown;
        if quiesce {
            st.ticking = true;
            drop(st);
            {
                let hooks = self.idle_hooks.lock();
                for h in hooks.iter() {
                    h();
                }
            }
            st = self.central.lock();
            st.ticking = false;
        }
        // Dekker sleep: publish ourselves, then rescan everything under
        // the central lock. Either a producer sees `parked_hint` and
        // notifies, or we see its push here and skip the sleep.
        st.parked += 1;
        self.parked_hint.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if self.any_work_visible(&st) || (st.shutdown && st.alive == 0) {
            st.parked -= 1;
            self.parked_hint.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        if let Some(i) = slot {
            self.slots[i].stats.parks.fetch_add(1, Ordering::Relaxed);
        }
        if quiesce || self.reactor_ref().is_some() {
            // Keep polling while the pool looks deadlock-candidate so the
            // monitor ticks even if no event arrives — and whenever a
            // reactor exists, so sleeping workers keep draining readiness
            // even if every other worker is pinned in a long fiber.
            let _ = self.work_cv.wait_for(&mut st, Duration::from_millis(1));
        } else {
            self.work_cv.wait(&mut st);
        }
        st.parked -= 1;
        self.parked_hint.fetch_sub(1, Ordering::SeqCst);
        if let Some(i) = slot {
            self.slots[i].stats.unparks.fetch_add(1, Ordering::Relaxed);
        }
        false
    }

    /// The reactor, if one has been instantiated (only the net layer's
    /// reactor backend does that, via [`Exec::reactor`]).
    fn reactor_ref(&self) -> Option<&Arc<reactor::Reactor>> {
        self.reactor.get().and_then(|o| o.as_ref())
    }

    /// Drain socket readiness and expired timers into the run queues: each
    /// ready park key is an ordinary `unpark_all`. Runs at worker poll
    /// points only (pre-sleep and the fair tick) and never blocks; the
    /// pre-sleep call sits *before* the quiescence computation and the
    /// Dekker rescan, so readiness observed here becomes visible queued
    /// work and a ready socket can never fake an idle pool.
    fn poll_reactor(&self) -> bool {
        let Some(r) = self.reactor_ref() else {
            return false;
        };
        let keys = r.poll();
        if keys.is_empty() {
            return false;
        }
        for key in keys {
            self.unpark_all(key);
        }
        true
    }

    /// Route freshly unparked fibers to a run queue. When the waker is a
    /// slot-owning worker of this pool, the first fiber takes its hot slot
    /// (it is the consumer of data the waker just produced — the warmest
    /// possible dispatch) and the rest go to its deque. Anything else —
    /// foreign threads, other pools' fibers, slotless workers — goes
    /// through the injector.
    fn dispatch_unparked(&self, fibers: Vec<Box<fiber::Fiber>>) {
        let my_slot = WORKER_ID.with(|c| c.get()).and_then(|(pool, i)| {
            (pool == self as *const PooledExec as usize && i != usize::MAX).then_some(i)
        });
        match my_slot {
            Some(i) => {
                let me = &self.slots[i];
                let mut spill = Vec::new();
                let mut iter = fibers.into_iter();
                if let Some(first) = iter.next() {
                    if let Some(displaced) = me.put_hot(first) {
                        if let Err(f) = me.deque.push(displaced) {
                            spill.push(f);
                        }
                    }
                }
                for f in iter {
                    if let Err(f) = me.deque.push(f) {
                        spill.push(f);
                    }
                }
                me.note_depth();
                self.inject(spill);
                self.notify_work();
            }
            None => {
                let n = fibers.len() as u64;
                let mut st = self.central.lock();
                for f in fibers {
                    st.injector.push_back(f);
                }
                st.injector_pushes += n;
                st.foreign_unparks += n;
                let notify = st.parked > 0;
                drop(st);
                if notify && self.searching.load(Ordering::SeqCst) == 0 {
                    self.work_cv.notify_one();
                }
            }
        }
    }
}

impl Exec for PooledExec {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    fn spawn(&self, name: &str, body: Box<dyn FnOnce() + Send>) {
        let locals = TaskLocals::new(
            name,
            true,
            self.self_ref.get().expect("self_ref set in new()").clone(),
        );
        let f = fiber::Fiber::new(locals, body);
        let mut st = self.central.lock();
        st.alive += 1;
        st.injector.push_back(f);
        st.injector_pushes += 1;
        let grow = st.workers - st.external < self.target && !st.shutdown;
        if grow {
            st.workers += 1;
        }
        let notify = st.parked > 0;
        drop(st);
        if grow {
            self.spawn_worker();
        }
        if notify && self.searching.load(Ordering::SeqCst) == 0 {
            self.work_cv.notify_one();
        }
    }

    #[cfg(any(not(target_arch = "x86_64"), miri))]
    fn spawn(&self, name: &str, body: Box<dyn FnOnce() + Send>) {
        // Thread-per-task fallback: parking uses the thread-waiter path.
        let locals = TaskLocals::new(
            name,
            true,
            self.self_ref.get().expect("self_ref set in new()").clone(),
        );
        std::thread::Builder::new()
            .name(format!("kpn:{name}"))
            .spawn(move || {
                set_current(Some(locals));
                body();
            })
            .expect("spawn process thread");
    }

    fn park_token(&self, key: usize) -> u64 {
        let mut map = self.buckets[bucket_of(key)].map.lock();
        map.entry(key)
            .or_insert_with(|| PoolEntry {
                gen: next_id(),
                fibers: Vec::new(),
                thread_waiters: 0,
            })
            .gen
    }

    fn park(&self, key: usize, token: u64, timeout: Option<Duration>) -> Result<bool> {
        if self.is_own_fiber() {
            // Ask the worker to park us once our stack is off the CPU.
            // Timeouts are not honored on this path; periodic work rides
            // on the pool's idle hooks instead.
            fiber::PARK_REQUEST.with(|c| c.set(Some((key, token))));
            fiber::switch_to_worker();
            return Ok(false);
        }
        // Foreign thread (or another pool's fiber): keyed condvar wait,
        // same protocol as ThreadExec.
        let b = &self.buckets[bucket_of(key)];
        let mut map = b.map.lock();
        let stale = match map.get(&key) {
            None => true,
            Some(e) => e.gen != token,
        };
        if stale {
            return Ok(false);
        }
        map.get_mut(&key).unwrap().thread_waiters += 1;
        let timed_out = match timeout {
            Some(d) => b.cv.wait_for(&mut map, d).timed_out(),
            None => {
                b.cv.wait(&mut map);
                false
            }
        };
        if let Some(e) = map.get_mut(&key) {
            e.thread_waiters -= 1;
            if e.thread_waiters == 0 && e.fibers.is_empty() {
                map.remove(&key);
            }
        }
        Ok(timed_out)
    }

    fn unpark_all(&self, key: usize) {
        let b = &self.buckets[bucket_of(key)];
        let mut woken: Vec<Box<fiber::Fiber>> = Vec::new();
        {
            let mut map = b.map.lock();
            if let Some(e) = map.get_mut(&key) {
                e.gen = next_id();
                woken = std::mem::take(&mut e.fibers);
                if e.thread_waiters > 0 {
                    b.cv.notify_all();
                } else {
                    map.remove(&key);
                }
            }
        }
        if !woken.is_empty() {
            self.dispatch_unparked(woken);
        }
    }

    fn yield_point(&self) {
        // Kahn processes reschedule by blocking; forcing a fiber switch at
        // every channel op would round-robin 10k fibers per op.
    }

    fn add_idle_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        self.idle_hooks.lock().push(hook);
    }

    fn enter_blocking(&self) {
        if self.is_own_fiber() {
            let mut st = self.central.lock();
            st.external += 1;
            // Keep `target` workers available for fibers while this one
            // sits in a syscall.
            if st.workers - st.external < self.target && !st.shutdown {
                st.workers += 1;
                drop(st);
                self.spawn_worker();
            }
        }
    }

    fn exit_blocking(&self) {
        if self.is_own_fiber() {
            let mut st = self.central.lock();
            st.external -= 1;
            // The compensation worker spawned for this region is now
            // surplus; wake a sleeper so it notices and retires instead of
            // lingering until the next unrelated wakeup.
            let surplus = st.workers - st.external > self.target && st.parked > 0;
            drop(st);
            if surplus {
                self.work_cv.notify_one();
            }
        }
    }

    fn shutdown(&self) {
        let mut st = self.central.lock();
        st.shutdown = true;
        drop(st);
        self.work_cv.notify_all();
    }

    fn scheduler_stats(&self) -> Option<SchedulerStats> {
        // `workers` and `external` move together under the central lock
        // (enter/exit_blocking, surplus retirement), so they must be read
        // in ONE acquisition: snapshotting them separately could observe
        // a retirement halfway and report more blocked workers than
        // alive ones.
        let (injector_pushes, injector_depth, foreign_unparks, current_workers, blocked_workers) = {
            let st = self.central.lock();
            (
                st.injector_pushes,
                st.injector.len(),
                st.foreign_unparks,
                st.workers,
                st.external,
            )
        };
        let workers = self
            .slots
            .iter()
            .map(|s| {
                let depth = s.deque.len() as u64 + u64::from(s.hot_occupied());
                s.stats.snapshot(depth)
            })
            .collect();
        Some(SchedulerStats {
            target_workers: self.target,
            current_workers,
            injector_pushes,
            injector_depth,
            foreign_unparks,
            blocked_workers,
            reactor: self.reactor_ref().map(|r| r.stats()),
            workers,
        })
    }

    fn reactor(&self) -> Option<Arc<reactor::Reactor>> {
        self.reactor.get_or_init(reactor::Reactor::new).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::super::blocking_region;
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Instant;

    fn wait_until(deadline_s: u64, what: &str, mut pred: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(deadline_s);
        while !pred() {
            assert!(Instant::now() < deadline, "timed out waiting: {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn pooled_runs_many_tasks_on_one_worker() {
        let ex = PooledExec::new(1);
        let n = 500;
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..n {
            let c = count.clone();
            ex.spawn(
                &format!("t{i}"),
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        wait_until(30, "pool drains 500 tasks", || {
            count.load(Ordering::SeqCst) >= n
        });
        ex.shutdown();
    }

    #[test]
    fn pooled_park_unpark_across_tasks() {
        // One fiber parks; another unparks it. With a single worker this
        // only completes if parking actually releases the worker.
        let ex = PooledExec::new(1);
        let flag = Arc::new(AtomicUsize::new(0));
        let key = 0x4000;
        let (f1, f2) = (flag.clone(), flag.clone());
        let (e1, e2) = (ex.clone(), ex.clone());
        ex.spawn(
            "parker",
            Box::new(move || {
                while f1.load(Ordering::SeqCst) == 0 {
                    let token = e1.park_token(key);
                    if f1.load(Ordering::SeqCst) != 0 {
                        break;
                    }
                    e1.park(key, token, None).unwrap();
                }
                f1.store(2, Ordering::SeqCst);
            }),
        );
        ex.spawn(
            "waker",
            Box::new(move || {
                f2.store(1, Ordering::SeqCst);
                e2.unpark_all(key);
            }),
        );
        wait_until(30, "park/unpark handshake", || {
            flag.load(Ordering::SeqCst) == 2
        });
        ex.shutdown();
    }

    #[test]
    fn pooled_park_unpark_many_pairs_four_workers() {
        // Eight parker/waker pairs on distinct keys across four workers:
        // exercises hot-slot dispatch, cross-worker unparks, and the
        // sleep/wake protocol under real contention.
        let ex = PooledExec::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        const PAIRS: usize = 8;
        for p in 0..PAIRS {
            let key = 0x6000 + p * 0x100;
            let flag = Arc::new(AtomicUsize::new(0));
            let (f1, f2) = (flag.clone(), flag.clone());
            let (e1, e2) = (ex.clone(), ex.clone());
            let d = done.clone();
            ex.spawn(
                &format!("parker{p}"),
                Box::new(move || {
                    while f1.load(Ordering::SeqCst) == 0 {
                        let token = e1.park_token(key);
                        if f1.load(Ordering::SeqCst) != 0 {
                            break;
                        }
                        e1.park(key, token, None).unwrap();
                    }
                    d.fetch_add(1, Ordering::SeqCst);
                }),
            );
            ex.spawn(
                &format!("waker{p}"),
                Box::new(move || {
                    f2.store(1, Ordering::SeqCst);
                    e2.unpark_all(key);
                }),
            );
        }
        wait_until(30, "all pairs complete", || {
            done.load(Ordering::SeqCst) == PAIRS
        });
        ex.shutdown();
    }

    #[test]
    fn blocking_region_runs_closure_everywhere() {
        // Foreign thread: direct execution.
        assert_eq!(blocking_region(|| 41 + 1), 42);
        // Pooled fiber: worker pool must not deadlock even with one worker.
        let ex = PooledExec::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        ex.spawn(
            "blocker",
            Box::new(move || {
                let v = blocking_region(|| 7);
                d.store(v, Ordering::SeqCst);
            }),
        );
        wait_until(30, "blocking region completes", || {
            done.load(Ordering::SeqCst) == 7
        });
        ex.shutdown();
    }

    // The remaining tests need real fibers (compensation workers and
    // scheduler counters do not exist on the thread-per-task fallback).
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn blocking_pool_size_returns_to_target() {
        let ex = PooledExec::new(2);
        for round in 0..4 {
            let done = Arc::new(AtomicUsize::new(0));
            const BLOCKERS: usize = 4;
            for b in 0..BLOCKERS {
                let d = done.clone();
                ex.spawn(
                    &format!("blocker{round}-{b}"),
                    Box::new(move || {
                        blocking_region(|| std::thread::sleep(Duration::from_millis(5)));
                        d.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }
            wait_until(30, "round of blocking regions", || {
                done.load(Ordering::SeqCst) == BLOCKERS
            });
        }
        // Every compensation worker must retire once its blocked fiber
        // resumed: the pool settles back to exactly the configured size.
        wait_until(30, "pool shrinks back to target", || {
            let s = ex.scheduler_stats().unwrap();
            s.current_workers == s.target_workers
        });
        ex.shutdown();
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn scheduler_stats_expose_per_worker_counters() {
        let ex = PooledExec::new(2);
        let n = 300usize;
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..n {
            let c = count.clone();
            ex.spawn(
                &format!("t{i}"),
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        wait_until(30, "tasks drain", || count.load(Ordering::SeqCst) >= n);
        let s = ex.scheduler_stats().unwrap();
        assert_eq!(s.target_workers, 2);
        assert_eq!(s.workers.len(), 2, "one stats row per slot");
        assert!(s.injector_pushes >= n as u64, "spawns route via injector");
        let t = s.totals();
        assert_eq!(
            t.fiber_switches, n as u64,
            "every task dispatched exactly once"
        );
        // Acquisition counters cover every dispatch, but batch moves count
        // twice (once leaving the injector or victim, once popped from the
        // local deque), so this is a lower bound, not an identity.
        assert!(
            t.injector_pops + t.local_pops + t.hot_hits + t.stolen_fibers >= n as u64,
            "dispatch sources must cover all dispatches: {t:?}"
        );
        ex.shutdown();
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn scheduler_counters_conserve_dispatches() {
        // Conservation of fibers over a fully drained seeded run on four
        // workers. Every fiber acquisition is counted exactly once per
        // move (hot slot / local deque / injector take / steal), every
        // dispatch exactly once, so with all queues empty at the end:
        //
        //   sources := hot_hits + local_pops + injector_pops + stolen_fibers
        //   sources = dispatches + transits
        //
        // where a transit is a fiber changing queues without running (an
        // injector batch move or a steal-sweep extra). Each transit lands
        // the fiber in a deque, and each landing is later drained by a
        // local pop or another steal — which bounds the slack from both
        // sides instead of only asserting "sources ≥ dispatches".
        let ex = PooledExec::new(4);
        let n = 600usize;
        let count = Arc::new(AtomicUsize::new(0));
        let mut seed = 0x5EEDu64;
        for i in 0..n {
            // Seeded unequal task lengths so the injector batches and the
            // deques run imbalanced — the regime steals exist for.
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let spin = (seed >> 60) as usize * 40;
            let c = count.clone();
            ex.spawn(
                &format!("t{i}"),
                Box::new(move || {
                    for _ in 0..spin {
                        std::hint::spin_loop();
                    }
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        wait_until(30, "seeded workload drains", || {
            count.load(Ordering::SeqCst) >= n
        });
        let s = ex.scheduler_stats().unwrap();
        let t = s.totals();
        let n = n as u64;
        assert_eq!(t.fiber_switches, n, "each task dispatches exactly once");
        let sources = t.hot_hits + t.local_pops + t.injector_pops + t.stolen_fibers;
        assert!(
            sources >= n,
            "acquisitions must cover every dispatch: {sources} < {n} ({t:?})"
        );
        assert!(
            sources <= n + t.local_pops + t.stolen_fibers,
            "over-count exceeds possible queue transits: {t:?}"
        );
        // Internal consistency of the steal and injector columns.
        assert!(t.steal_successes <= t.steal_attempts, "{t:?}");
        assert!(t.stolen_fibers >= t.steal_successes, "{t:?}");
        assert!(s.injector_pushes >= n, "every spawn routes via the injector");
        assert!(
            t.injector_pops <= s.injector_pushes,
            "cannot take more fibers than were ever pushed: {t:?}"
        );
        assert_eq!(s.injector_depth, 0, "drained run leaves an empty injector");
        ex.shutdown();
    }
}
