//! Stackful fibers (x86_64): the continuations behind
//! [`super::PooledExec`], with a thread-per-task fallback shim for targets
//! without the context-switch assembly.

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod imp {
    //! Minimal stackful coroutines: a fiber is a heap stack plus a saved
    //! stack pointer. Switching saves the six SysV callee-saved registers
    //! on the outgoing stack and restores them from the incoming one; all
    //! caller-saved state is already spilled by the `extern "C"` call
    //! boundary. No dependencies, ~20 instructions.

    use super::super::TaskLocals;
    use std::cell::Cell;
    use std::sync::Arc;

    /// 256 KiB per fiber. Allocated with the global allocator, which mmaps
    /// chunks this size, so untouched pages cost address space, not RAM —
    /// 10 000 fibers commit far less than 2.5 GiB.
    const STACK_SIZE: usize = 256 * 1024;
    /// Sentinel at the lowest stack address, checked after every switch
    /// back to the worker; corruption means the fiber overflowed.
    const CANARY: u64 = 0xDEAD_F1BE_5AFE_C0DE;

    core::arch::global_asm!(
        ".text",
        ".balign 16",
        ".globl kpn_core_fiber_switch",
        ".hidden kpn_core_fiber_switch",
        // fn kpn_core_fiber_switch(save: *mut usize /*rdi*/, to: usize /*rsi*/)
        // Saves the current context into *save, resumes the context whose
        // stack pointer is `to`.
        "kpn_core_fiber_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        ".balign 16",
        ".globl kpn_core_fiber_start",
        ".hidden kpn_core_fiber_start",
        // First resume of a new fiber "returns" here (the address is
        // planted on the fresh stack). r15 carries the Fiber pointer.
        // rsp is 16-aligned at this point, so the call leaves rsp ≡ 8
        // (mod 16) at the callee's entry, as the SysV ABI requires.
        "kpn_core_fiber_start:",
        "mov rdi, r15",
        "call kpn_core_fiber_entry",
        "ud2",
    );

    extern "C" {
        fn kpn_core_fiber_switch(save: *mut usize, to: usize);
        fn kpn_core_fiber_start();
    }

    struct FiberStack {
        base: *mut u8,
    }

    impl FiberStack {
        fn layout() -> std::alloc::Layout {
            std::alloc::Layout::from_size_align(STACK_SIZE, 16).unwrap()
        }

        fn new() -> FiberStack {
            let base = unsafe { std::alloc::alloc(Self::layout()) };
            assert!(!base.is_null(), "fiber stack allocation failed");
            unsafe { (base as *mut u64).write(CANARY) };
            FiberStack { base }
        }

        /// Highest usable address, 16-aligned.
        fn top(&self) -> usize {
            (self.base as usize + STACK_SIZE) & !15
        }
    }

    impl Drop for FiberStack {
        fn drop(&mut self) {
            unsafe { std::alloc::dealloc(self.base, Self::layout()) }
        }
    }

    /// A parked or runnable task: stack, saved stack pointer, identity.
    pub(in crate::exec) struct Fiber {
        stack: FiberStack,
        /// Saved rsp while suspended; garbage while running.
        ctx: usize,
        pub(in crate::exec) locals: Arc<TaskLocals>,
        entry: Option<Box<dyn FnOnce() + Send>>,
        pub(in crate::exec) done: bool,
    }

    // The stack pointer is only dereferenced by the worker currently
    // running the fiber, and ownership of the Box hands off through
    // mutex-protected queues.
    unsafe impl Send for Fiber {}

    impl Fiber {
        pub(in crate::exec) fn new(
            locals: Arc<TaskLocals>,
            entry: Box<dyn FnOnce() + Send>,
        ) -> Box<Fiber> {
            let stack = FiberStack::new();
            let top = stack.top();
            let mut f = Box::new(Fiber {
                stack,
                ctx: 0,
                locals,
                entry: Some(entry),
                done: false,
            });
            // Seed the stack so the first switch-in pops zeroed registers
            // (r15 = Fiber pointer) and "returns" into fiber_start.
            let ctx = top - 56;
            unsafe {
                let p = ctx as *mut usize;
                p.write(&mut *f as *mut Fiber as usize); // r15
                p.add(1).write(0); // r14
                p.add(2).write(0); // r13
                p.add(3).write(0); // r12
                p.add(4).write(0); // rbx
                p.add(5).write(0); // rbp
                p.add(6).write(kpn_core_fiber_start as *const () as usize); // return addr
            }
            f.ctx = ctx;
            f
        }

        /// Resume this fiber on the current worker thread. Returns when the
        /// fiber parks, yields, or finishes.
        pub(in crate::exec) fn run(&mut self, worker_ctx: &mut usize) {
            ACTIVE_FIBER.with(|c| c.set(self as *mut Fiber));
            unsafe { kpn_core_fiber_switch(worker_ctx as *mut usize, self.ctx) };
            ACTIVE_FIBER.with(|c| c.set(std::ptr::null_mut()));
            let canary = unsafe { (self.stack.base as *const u64).read() };
            if canary != CANARY {
                eprintln!(
                    "kpn-core: fiber stack overflow detected (task '{}'); aborting",
                    self.locals.name
                );
                std::process::abort();
            }
        }
    }

    thread_local! {
        /// Points at the running worker's context save slot; fibers switch
        /// back through it.
        static WORKER_CTX: Cell<*mut usize> = const { Cell::new(std::ptr::null_mut()) };
        /// The fiber currently running on this thread, if any.
        static ACTIVE_FIBER: Cell<*mut Fiber> = const { Cell::new(std::ptr::null_mut()) };
        /// Set by a parking fiber just before switching out; the worker
        /// completes the wait-table registration (the fiber must not be
        /// registered while its stack is still live).
        pub(in crate::exec) static PARK_REQUEST: Cell<Option<(usize, u64)>> =
            const { Cell::new(None) };
    }

    /// True when the calling code is executing on a fiber.
    pub(in crate::exec) fn on_fiber() -> bool {
        ACTIVE_FIBER.with(|c| !c.get().is_null())
    }

    /// Install the worker's save slot for the duration of the worker loop.
    pub(in crate::exec) fn set_worker_ctx(slot: *mut usize) {
        WORKER_CTX.with(|c| c.set(slot));
    }

    /// Suspend the current fiber, returning control to its worker. The
    /// worker observes `PARK_REQUEST` (set by the caller) or treats the
    /// suspension as a yield.
    pub(in crate::exec) fn switch_to_worker() {
        let f = ACTIVE_FIBER.with(|c| c.get());
        debug_assert!(!f.is_null(), "switch_to_worker outside a fiber");
        let slot = WORKER_CTX.with(|c| c.get());
        unsafe { kpn_core_fiber_switch(&mut (*f).ctx, *slot) };
    }

    /// Entry point for every fiber; `f` arrives in r15 via fiber_start.
    #[no_mangle]
    extern "C" fn kpn_core_fiber_entry(f: *mut Fiber) -> ! {
        {
            let fiber = unsafe { &mut *f };
            let body = fiber.entry.take().expect("fiber entry body");
            // Never unwind into the assembly trampoline. Process panics are
            // already caught and recorded by the network's spawn wrapper;
            // this is the backstop.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
            fiber.done = true;
        }
        switch_to_worker();
        unreachable!("finished fiber resumed")
    }
}

#[cfg(any(not(target_arch = "x86_64"), miri))]
mod imp {
    //! Fallback for targets without the context-switch assembly: the
    //! pooled executor degrades to thread-per-task (see
    //! [`crate::exec::PooledExec`]), so no fiber is ever constructed.

    use super::super::TaskLocals;
    use std::cell::Cell;
    use std::sync::Arc;

    pub(in crate::exec) struct Fiber {
        pub(in crate::exec) locals: Arc<TaskLocals>,
        pub(in crate::exec) done: bool,
    }

    impl Fiber {
        pub(in crate::exec) fn run(&mut self, _worker_ctx: &mut usize) {
            unreachable!("fibers are not constructed on this target")
        }
    }

    thread_local! {
        pub(in crate::exec) static PARK_REQUEST: Cell<Option<(usize, u64)>> =
            const { Cell::new(None) };
    }

    pub(in crate::exec) fn on_fiber() -> bool {
        false
    }

    pub(in crate::exec) fn set_worker_ctx(_slot: *mut usize) {}

    pub(in crate::exec) fn switch_to_worker() {
        unreachable!("fibers are not constructed on this target")
    }
}

pub(in crate::exec) use imp::{on_fiber, set_worker_ctx, switch_to_worker, Fiber, PARK_REQUEST};
