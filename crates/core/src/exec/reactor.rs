//! Socket-readiness reactor for the pooled executor.
//!
//! The thread backend maps every blocked remote-channel operation onto a
//! compensated OS thread (`blocking_region`): correct, but 10k blocked
//! remote channels cost 10k threads while 10k blocked *local* channels
//! cost none. This module is the other half of that asymmetry: an
//! epoll-based readiness queue owned by a [`super::PooledExec`], so a
//! remote wait can park its *fiber* through the ordinary
//! `park_token`/`park` protocol and be woken when the socket becomes
//! readable or writable. Determinacy is untouched — a reactor wakeup is
//! just an `unpark_all` on the waiter's key, indistinguishable from any
//! other wake site (DESIGN.md §5j).
//!
//! The reactor never blocks and owns no thread. Workers drain it from the
//! scheduler loop (the pre-sleep path and the fair tick), with the same
//! Dekker rescan discipline that guards the run queues: readiness is
//! drained *before* quiescence is computed, so a ready socket can never
//! fake an idle pool.
//!
//! Events are armed `EPOLLONESHOT` with the waiter's park key in the
//! event's data word. One-shot arming makes the wakeup protocol
//! self-cleaning: each wait re-arms after taking a fresh park token, and a
//! stale event (the waiter already gone) is a harmless spurious
//! `unpark_all` on a dead key. A small timer heap stands in for park
//! timeouts, which the pooled fiber path deliberately ignores
//! (idle-driven deadlock detection): timed waits arm a deadline here and
//! are unparked when it expires.
//!
//! Everything is `#[cfg]`-gated to Linux/x86_64 outside Miri — the same
//! gate as the fiber context switch. Elsewhere [`Reactor::new`] returns
//! `None` and the net layer stays on the thread backend.

/// Cumulative reactor counters, surfaced through
/// [`super::SchedulerStats::reactor`] and from there through
/// `MonitorStats` (maintained with relaxed atomics; observation only).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// File descriptors ever attached to the epoll set.
    pub registrations: u64,
    /// File descriptors attached at snapshot time.
    pub current_registered: usize,
    /// Park keys woken by socket readiness (real progress signals: data,
    /// buffer space, hangup). Frozen across probe polls during a true
    /// deadlock, which is what lets the cluster probe treat it as a
    /// freshness input.
    pub wakeups: u64,
    /// Park keys woken by timer expiry (idle-poll deadlines; *not*
    /// progress — a deadlocked endpoint re-arms these forever).
    pub timer_wakeups: u64,
    /// Times the reactor was polled.
    pub polls: u64,
    /// Polls that found no ready key (neither fd nor timer).
    pub spurious_polls: u64,
    /// Deepest ready batch a single poll returned.
    pub max_poll_batch: u64,
}

/// Readiness direction for [`Reactor::arm`] / [`poll_fd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Wake when the source is readable (or hung up).
    Read,
    /// Wake when the sink is writable (or errored).
    Write,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
mod imp {
    use super::{Interest, ReactorStats};
    use parking_lot::Mutex;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    use std::io;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Raw syscalls: the workspace vendors no libc, and the only kernel
    /// interfaces needed here are stable-ABI x86_64 syscall numbers.
    mod sys {
        use std::arch::asm;

        pub const SYS_POLL: usize = 7;
        pub const SYS_CLOSE: usize = 3;
        pub const SYS_EPOLL_WAIT: usize = 232;
        pub const SYS_EPOLL_CTL: usize = 233;
        pub const SYS_EPOLL_CREATE1: usize = 291;

        pub const EPOLL_CLOEXEC: usize = 0x80000;
        pub const EPOLL_CTL_ADD: usize = 1;
        pub const EPOLL_CTL_DEL: usize = 2;
        pub const EPOLL_CTL_MOD: usize = 3;

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLRDHUP: u32 = 0x2000;
        pub const EPOLLONESHOT: u32 = 1 << 30;

        pub const POLLIN: i16 = 0x001;
        pub const POLLOUT: i16 = 0x004;

        pub const ENOENT: isize = 2;
        pub const EINTR: isize = 4;

        /// `struct epoll_event`; packed on x86_64 (12 bytes), per the
        /// kernel ABI.
        #[repr(C, packed)]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        /// `struct pollfd` for the foreign-thread fallback path.
        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct PollFd {
            pub fd: i32,
            pub events: i16,
            pub revents: i16,
        }

        /// Four-argument syscall; returns the raw kernel result
        /// (negative errno on failure).
        pub unsafe fn syscall4(n: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
            let ret: isize;
            asm!(
                "syscall",
                inlateout("rax") n as isize => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
            ret
        }
    }

    /// The epoll instance plus a timer heap, owned by one `PooledExec`.
    pub struct Reactor {
        epfd: i32,
        /// Fds currently attached (drives the workers' sleep mode: any
        /// registration switches indefinite sleeps to 1 ms polling naps).
        attached: AtomicUsize,
        /// Pending wake deadlines, min-first. Lazy: entries are never
        /// cancelled; an expired entry for a waiter that already resumed
        /// is a spurious `unpark_all` on a stale generation.
        timers: Mutex<BinaryHeap<Reverse<(Instant, usize)>>>,
        registrations: AtomicU64,
        wakeups: AtomicU64,
        timer_wakeups: AtomicU64,
        polls: AtomicU64,
        spurious_polls: AtomicU64,
        max_poll_batch: AtomicU64,
    }

    // The epoll fd is used from any worker; all syscalls on it are
    // thread-safe per the kernel contract.
    unsafe impl Send for Reactor {}
    unsafe impl Sync for Reactor {}

    impl Reactor {
        /// Create a reactor, or `None` if the kernel refuses an epoll
        /// instance (the caller falls back to the thread backend).
        pub fn new() -> Option<Arc<Reactor>> {
            let epfd =
                unsafe { sys::syscall4(sys::SYS_EPOLL_CREATE1, sys::EPOLL_CLOEXEC, 0, 0, 0) };
            if epfd < 0 {
                return None;
            }
            Some(Arc::new(Reactor {
                epfd: epfd as i32,
                attached: AtomicUsize::new(0),
                timers: Mutex::new(BinaryHeap::new()),
                registrations: AtomicU64::new(0),
                wakeups: AtomicU64::new(0),
                timer_wakeups: AtomicU64::new(0),
                polls: AtomicU64::new(0),
                spurious_polls: AtomicU64::new(0),
                max_poll_batch: AtomicU64::new(0),
            }))
        }

        fn ctl(&self, op: usize, fd: i32, events: u32, data: u64) -> isize {
            let mut ev = sys::EpollEvent { events, data };
            unsafe {
                sys::syscall4(
                    sys::SYS_EPOLL_CTL,
                    self.epfd as usize,
                    op,
                    fd as usize,
                    std::ptr::addr_of_mut!(ev) as usize,
                )
            }
        }

        /// Add `fd` to the epoll set, disarmed (no interest yet).
        pub fn attach(&self, fd: i32) -> io::Result<()> {
            let r = self.ctl(sys::EPOLL_CTL_ADD, fd, 0, 0);
            if r < 0 {
                return Err(io::Error::from_raw_os_error(-r as i32));
            }
            self.attached.fetch_add(1, Ordering::Relaxed);
            self.registrations.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }

        /// Remove `fd` from the epoll set. Must run before the fd closes.
        pub fn detach(&self, fd: i32) {
            if self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0) >= 0 {
                self.attached.fetch_sub(1, Ordering::Relaxed);
            }
        }

        /// Arm a one-shot readiness watch on an attached `fd`, delivering
        /// `key` when it fires. Callers MUST take their park token
        /// *before* arming: one-shot delivery consumed before the token
        /// exists would be a lost wakeup, while any delivery after
        /// `park_token` invalidates the token and the park returns
        /// immediately.
        pub fn arm(&self, fd: i32, key: usize, interest: Interest) -> io::Result<()> {
            let events = match interest {
                Interest::Read => sys::EPOLLIN | sys::EPOLLRDHUP,
                Interest::Write => sys::EPOLLOUT,
            } | sys::EPOLLONESHOT;
            let mut r = self.ctl(sys::EPOLL_CTL_MOD, fd, events, key as u64);
            if r == -sys::ENOENT {
                // Not attached (or detached by a racing teardown): attach
                // armed in one step.
                r = self.ctl(sys::EPOLL_CTL_ADD, fd, events, key as u64);
                if r >= 0 {
                    self.attached.fetch_add(1, Ordering::Relaxed);
                    self.registrations.fetch_add(1, Ordering::Relaxed);
                }
            }
            if r < 0 {
                return Err(io::Error::from_raw_os_error(-r as i32));
            }
            Ok(())
        }

        /// Arrange for `unpark_all(key)` no earlier than `deadline`.
        pub fn add_timer(&self, deadline: Instant, key: usize) {
            self.timers.lock().push(Reverse((deadline, key)));
        }

        /// True when any fd or timer is outstanding: workers must keep
        /// polling (1 ms naps) rather than sleep indefinitely.
        pub fn has_work(&self) -> bool {
            self.attached.load(Ordering::Relaxed) > 0 || !self.timers.lock().is_empty()
        }

        /// Drain ready events and expired timers without blocking,
        /// returning the park keys to wake. Runs on whichever worker hits
        /// the scheduler's poll points; never blocks.
        pub fn poll(&self) -> Vec<usize> {
            let mut keys = Vec::new();
            self.polls.fetch_add(1, Ordering::Relaxed);
            if self.attached.load(Ordering::Relaxed) > 0 {
                const BATCH: usize = 64;
                let mut events = [sys::EpollEvent { events: 0, data: 0 }; BATCH];
                let n = unsafe {
                    sys::syscall4(
                        sys::SYS_EPOLL_WAIT,
                        self.epfd as usize,
                        events.as_mut_ptr() as usize,
                        BATCH,
                        0, // timeout: never block a worker here
                    )
                };
                if n > 0 {
                    for ev in events.iter().take(n as usize) {
                        keys.push(ev.data as usize);
                    }
                    self.wakeups.fetch_add(n as u64, Ordering::Relaxed);
                    self.max_poll_batch.fetch_max(n as u64, Ordering::Relaxed);
                }
            }
            let fd_ready = keys.len();
            {
                let now = Instant::now();
                let mut timers = self.timers.lock();
                while let Some(Reverse((deadline, key))) = timers.peek().copied() {
                    if deadline > now {
                        break;
                    }
                    timers.pop();
                    keys.push(key);
                }
                self.timer_wakeups
                    .fetch_add((keys.len() - fd_ready) as u64, Ordering::Relaxed);
            }
            if keys.is_empty() {
                self.spurious_polls.fetch_add(1, Ordering::Relaxed);
            }
            keys
        }

        /// Snapshot the counters.
        pub fn stats(&self) -> ReactorStats {
            ReactorStats {
                registrations: self.registrations.load(Ordering::Relaxed),
                current_registered: self.attached.load(Ordering::Relaxed),
                wakeups: self.wakeups.load(Ordering::Relaxed),
                timer_wakeups: self.timer_wakeups.load(Ordering::Relaxed),
                polls: self.polls.load(Ordering::Relaxed),
                spurious_polls: self.spurious_polls.load(Ordering::Relaxed),
                max_poll_batch: self.max_poll_batch.load(Ordering::Relaxed),
            }
        }
    }

    impl Drop for Reactor {
        fn drop(&mut self) {
            unsafe {
                sys::syscall4(sys::SYS_CLOSE, self.epfd as usize, 0, 0, 0);
            }
        }
    }

    impl std::fmt::Debug for Reactor {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Reactor")
                .field("attached", &self.attached.load(Ordering::Relaxed))
                .finish()
        }
    }

    /// Blocking readiness wait on one fd, for contexts that cannot park a
    /// fiber (foreign threads, the sink linger thread). `poll(2)`, so no
    /// registration state; returns `Ok(true)` when ready, `Ok(false)` on
    /// timeout or `EINTR` (callers loop on a deadline).
    pub fn poll_fd(fd: i32, interest: Interest, timeout: Option<Duration>) -> io::Result<bool> {
        let mut pfd = sys::PollFd {
            fd,
            events: match interest {
                Interest::Read => sys::POLLIN,
                Interest::Write => sys::POLLOUT,
            },
            revents: 0,
        };
        let ms: isize = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as isize,
        };
        let r = unsafe {
            sys::syscall4(
                sys::SYS_POLL,
                std::ptr::addr_of_mut!(pfd) as usize,
                1,
                ms as usize,
                0,
            )
        };
        match r {
            n if n > 0 => Ok(true),
            0 => Ok(false),
            e if e == -sys::EINTR => Ok(false),
            e => Err(io::Error::from_raw_os_error(-e as i32)),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        fn pair() -> (TcpStream, TcpStream) {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
            let (b, _) = l.accept().unwrap();
            (a, b)
        }

        #[test]
        fn oneshot_arm_delivers_key_once() {
            let r = Reactor::new().expect("epoll available on linux");
            let (mut w, rd) = pair();
            r.attach(rd.as_raw_fd()).unwrap();
            assert!(r.poll().is_empty(), "disarmed fd must not fire");
            r.arm(rd.as_raw_fd(), 0x1234, Interest::Read).unwrap();
            assert!(r.poll().is_empty(), "no data yet");
            w.write_all(b"x").unwrap();
            w.flush().unwrap();
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            let mut got = Vec::new();
            while got.is_empty() && std::time::Instant::now() < deadline {
                got = r.poll();
                std::thread::sleep(Duration::from_millis(1));
            }
            assert_eq!(got, vec![0x1234]);
            // One-shot: without re-arming the event must not re-fire.
            assert!(r.poll().is_empty());
            r.detach(rd.as_raw_fd());
            assert_eq!(r.stats().current_registered, 0);
        }

        #[test]
        fn timers_fire_in_deadline_order() {
            let r = Reactor::new().unwrap();
            let now = Instant::now();
            r.add_timer(now + Duration::from_millis(30), 2);
            r.add_timer(now + Duration::from_millis(5), 1);
            assert!(r.has_work());
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(r.poll(), vec![1]);
            std::thread::sleep(Duration::from_millis(25));
            assert_eq!(r.poll(), vec![2]);
            assert!(!r.has_work());
            let s = r.stats();
            assert_eq!(s.timer_wakeups, 2);
            assert!(s.polls >= 2);
        }

        #[test]
        fn poll_fd_sees_readiness_and_timeout() {
            let (mut w, rd) = pair();
            assert!(!poll_fd(
                rd.as_raw_fd(),
                Interest::Read,
                Some(Duration::from_millis(1))
            )
            .unwrap());
            w.write_all(b"y").unwrap();
            assert!(poll_fd(rd.as_raw_fd(), Interest::Read, None).unwrap());
            // A fresh socket's send buffer is writable immediately.
            assert!(poll_fd(w.as_raw_fd(), Interest::Write, Some(Duration::ZERO)).unwrap());
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
mod imp {
    use super::{Interest, ReactorStats};
    use std::io;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Stub reactor for platforms without the epoll backend (and Miri):
    /// [`Reactor::new`] yields `None`, so no instance ever exists and the
    /// net layer keeps today's thread-backend behavior.
    #[derive(Debug)]
    pub struct Reactor {
        _never: std::convert::Infallible,
    }

    impl Reactor {
        /// Always `None` here; see the Linux implementation.
        pub fn new() -> Option<Arc<Reactor>> {
            None
        }

        /// Unreachable (no instance can exist).
        pub fn attach(&self, _fd: i32) -> io::Result<()> {
            match self._never {}
        }

        /// Unreachable (no instance can exist).
        pub fn detach(&self, _fd: i32) {
            match self._never {}
        }

        /// Unreachable (no instance can exist).
        pub fn arm(&self, _fd: i32, _key: usize, _interest: Interest) -> io::Result<()> {
            match self._never {}
        }

        /// Unreachable (no instance can exist).
        pub fn add_timer(&self, _deadline: Instant, _key: usize) {
            match self._never {}
        }

        /// Unreachable (no instance can exist).
        pub fn has_work(&self) -> bool {
            match self._never {}
        }

        /// Unreachable (no instance can exist).
        pub fn poll(&self) -> Vec<usize> {
            match self._never {}
        }

        /// Unreachable (no instance can exist).
        pub fn stats(&self) -> ReactorStats {
            match self._never {}
        }
    }

    /// Readiness waits degrade to "assume ready" off-Linux; the caller's
    /// subsequent blocking I/O provides the actual wait. Only reachable
    /// if a caller opts into readiness waits without a reactor, which the
    /// net layer never does off-Linux.
    pub fn poll_fd(_fd: i32, _interest: Interest, _timeout: Option<Duration>) -> io::Result<bool> {
        Ok(true)
    }
}

pub use imp::{poll_fd, Reactor};
