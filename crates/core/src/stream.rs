//! Typed layering over byte channels (§3.1).
//!
//! All inter-process communication is a stream of bytes; a process that
//! wants to exchange richer values layers a formatter over its endpoint
//! *inside the process*, exactly like wrapping a Java
//! `DataOutputStream`/`DataInputStream` around a channel stream. Values are
//! encoded big-endian, matching the Java wire format, so a `Duplicate` or
//! `Cons` that copies raw bytes composes transparently with typed producers
//! and consumers.
//!
//! For full object graphs (`ObjectOutputStream` analogue) see `kpn-codec`,
//! which provides a serde-based binary format over any `io::Write`/`Read` —
//! including these channel endpoints.

use crate::channel::{ChannelReader, ChannelWriter};
use crate::error::Result;

/// Writes primitive values big-endian onto a channel
/// (`java.io.DataOutputStream` analogue).
#[derive(Debug)]
pub struct DataWriter {
    inner: ChannelWriter,
}

impl DataWriter {
    /// Wraps a channel writer.
    pub fn new(inner: ChannelWriter) -> Self {
        DataWriter { inner }
    }

    /// Recovers the underlying byte endpoint.
    pub fn into_inner(self) -> ChannelWriter {
        self.inner
    }

    /// Mutable access to the underlying endpoint (for mixed byte/typed use).
    pub fn inner_mut(&mut self) -> &mut ChannelWriter {
        &mut self.inner
    }

    /// Writes a single byte.
    pub fn write_u8(&mut self, v: u8) -> Result<()> {
        self.inner.write_all(&[v])
    }

    /// Writes a boolean as one byte (0/1).
    pub fn write_bool(&mut self, v: bool) -> Result<()> {
        self.write_u8(v as u8)
    }

    /// Writes a big-endian `i32`.
    pub fn write_i32(&mut self, v: i32) -> Result<()> {
        self.inner.write_all(&v.to_be_bytes())
    }

    /// Writes a big-endian `i64` (`writeLong`).
    pub fn write_i64(&mut self, v: i64) -> Result<()> {
        self.inner.write_all(&v.to_be_bytes())
    }

    /// Writes a big-endian `u64`.
    pub fn write_u64(&mut self, v: u64) -> Result<()> {
        self.inner.write_all(&v.to_be_bytes())
    }

    /// Writes a big-endian IEEE-754 `f64` (`writeDouble`).
    pub fn write_f64(&mut self, v: f64) -> Result<()> {
        self.inner.write_all(&v.to_be_bytes())
    }

    /// Writes a length-prefixed byte block (u32 length, then bytes).
    pub fn write_block(&mut self, bytes: &[u8]) -> Result<()> {
        self.inner.write_all(&(bytes.len() as u32).to_be_bytes())?;
        self.inner.write_all(bytes)
    }

    /// Writes a UTF-8 string with a u16 byte-length prefix — the wire
    /// shape of Java's `writeUTF` (for strings without supplementary
    /// characters, which Java encodes in modified UTF-8).
    pub fn write_utf(&mut self, s: &str) -> Result<()> {
        let bytes = s.as_bytes();
        let len = u16::try_from(bytes.len()).map_err(|_| {
            crate::error::Error::Codec("writeUTF string longer than 65535 bytes".into())
        })?;
        self.inner.write_all(&len.to_be_bytes())?;
        self.inner.write_all(bytes)
    }

    /// Flushes the underlying endpoint.
    pub fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    /// Gracefully closes the stream.
    pub fn close(&mut self) {
        self.inner.close()
    }
}

/// Reads primitive values big-endian from a channel
/// (`java.io.DataInputStream` analogue). Every read blocks until the value
/// is complete and fails with [`crate::Error::Eof`] at end of stream.
#[derive(Debug)]
pub struct DataReader {
    inner: ChannelReader,
}

impl DataReader {
    /// Wraps a channel reader.
    pub fn new(inner: ChannelReader) -> Self {
        DataReader { inner }
    }

    /// Recovers the underlying byte endpoint.
    pub fn into_inner(self) -> ChannelReader {
        self.inner
    }

    /// Mutable access to the underlying endpoint.
    pub fn inner_mut(&mut self) -> &mut ChannelReader {
        &mut self.inner
    }

    /// Reads a single byte.
    pub fn read_u8(&mut self) -> Result<u8> {
        let mut b = [0u8; 1];
        self.inner.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Reads a boolean (any nonzero byte is `true`).
    pub fn read_bool(&mut self) -> Result<bool> {
        Ok(self.read_u8()? != 0)
    }

    /// Reads a big-endian `i32`.
    pub fn read_i32(&mut self) -> Result<i32> {
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b)?;
        Ok(i32::from_be_bytes(b))
    }

    /// Reads a big-endian `i64` (`readLong`).
    pub fn read_i64(&mut self) -> Result<i64> {
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b)?;
        Ok(i64::from_be_bytes(b))
    }

    /// Reads a big-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b)?;
        Ok(u64::from_be_bytes(b))
    }

    /// Reads a big-endian IEEE-754 `f64` (`readDouble`).
    pub fn read_f64(&mut self) -> Result<f64> {
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b)?;
        Ok(f64::from_be_bytes(b))
    }

    /// Reads a length-prefixed byte block written by
    /// [`DataWriter::write_block`].
    pub fn read_block(&mut self) -> Result<Vec<u8>> {
        let mut lb = [0u8; 4];
        self.inner.read_exact(&mut lb)?;
        let len = u32::from_be_bytes(lb) as usize;
        let mut out = vec![0u8; len];
        self.inner.read_exact(&mut out)?;
        Ok(out)
    }

    /// Reads a string written by [`DataWriter::write_utf`].
    pub fn read_utf(&mut self) -> Result<String> {
        let mut lb = [0u8; 2];
        self.inner.read_exact(&mut lb)?;
        let len = u16::from_be_bytes(lb) as usize;
        let mut bytes = vec![0u8; len];
        self.inner.read_exact(&mut bytes)?;
        String::from_utf8(bytes)
            .map_err(|e| crate::error::Error::Codec(format!("invalid utf-8: {e}")))
    }

    /// Closes the stream (writers fail on next write).
    pub fn close(&mut self) {
        self.inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel;
    use crate::error::Error;

    #[test]
    fn primitive_roundtrip() {
        let (w, r) = channel();
        let mut dw = DataWriter::new(w);
        let mut dr = DataReader::new(r);
        dw.write_u8(0xAB).unwrap();
        dw.write_bool(true).unwrap();
        dw.write_i32(-7).unwrap();
        dw.write_i64(i64::MIN).unwrap();
        dw.write_u64(u64::MAX).unwrap();
        dw.write_f64(core::f64::consts::PI).unwrap();
        assert_eq!(dr.read_u8().unwrap(), 0xAB);
        assert!(dr.read_bool().unwrap());
        assert_eq!(dr.read_i32().unwrap(), -7);
        assert_eq!(dr.read_i64().unwrap(), i64::MIN);
        assert_eq!(dr.read_u64().unwrap(), u64::MAX);
        assert_eq!(dr.read_f64().unwrap(), core::f64::consts::PI);
    }

    #[test]
    fn big_endian_wire_format() {
        // Java interop property: writeLong(1) is 7 zero bytes then 0x01.
        let (w, mut r) = channel();
        let mut dw = DataWriter::new(w);
        dw.write_i64(1).unwrap();
        drop(dw);
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn block_roundtrip() {
        let (w, r) = channel();
        let mut dw = DataWriter::new(w);
        let mut dr = DataReader::new(r);
        dw.write_block(b"hello world").unwrap();
        dw.write_block(b"").unwrap();
        assert_eq!(dr.read_block().unwrap(), b"hello world");
        assert_eq!(dr.read_block().unwrap(), b"");
    }

    #[test]
    fn utf_roundtrip() {
        let (w, r) = channel();
        let mut dw = DataWriter::new(w);
        let mut dr = DataReader::new(r);
        dw.write_utf("").unwrap();
        dw.write_utf("plain ascii").unwrap();
        dw.write_utf("ユニコード").unwrap();
        assert_eq!(dr.read_utf().unwrap(), "");
        assert_eq!(dr.read_utf().unwrap(), "plain ascii");
        assert_eq!(dr.read_utf().unwrap(), "ユニコード");
    }

    #[test]
    fn utf_wire_format_matches_java() {
        // writeUTF("ab") = 0x00 0x02 'a' 'b'
        let (w, mut r) = channel();
        let mut dw = DataWriter::new(w);
        dw.write_utf("ab").unwrap();
        drop(dw);
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [0, 2, b'a', b'b']);
    }

    #[test]
    fn utf_oversized_rejected() {
        let (w, _r) = channel();
        let mut dw = DataWriter::new(w);
        let big = "x".repeat(70_000);
        assert!(dw.write_utf(&big).is_err());
    }

    #[test]
    fn eof_mid_value() {
        let (mut w, r) = channel();
        w.write_all(&[0, 0, 0]).unwrap(); // 3 of 8 bytes of an i64
        drop(w);
        let mut dr = DataReader::new(r);
        assert!(matches!(dr.read_i64(), Err(Error::Eof)));
    }

    #[test]
    fn typed_over_byte_copy_is_transparent() {
        // A byte-level identity stage between typed endpoints must not
        // disturb values — the property that makes Duplicate/Cons
        // type-independent (§3.1).
        let (w1, mut r1) = channel();
        let (mut w2, r2) = channel();
        let mut dw = DataWriter::new(w1);
        dw.write_i64(42).unwrap();
        dw.write_f64(-0.5).unwrap();
        drop(dw);
        // byte-level copy stage
        let mut buf = [0u8; 3];
        loop {
            let n = r1.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            w2.write_all(&buf[..n]).unwrap();
        }
        drop(w2);
        let mut dr = DataReader::new(r2);
        assert_eq!(dr.read_i64().unwrap(), 42);
        assert_eq!(dr.read_f64().unwrap(), -0.5);
    }
}
