//! Typed layering over byte channels (§3.1).
//!
//! All inter-process communication is a stream of bytes; a process that
//! wants to exchange richer values layers a formatter over its endpoint
//! *inside the process*, exactly like wrapping a Java
//! `DataOutputStream`/`DataInputStream` around a channel stream. Values are
//! encoded big-endian, matching the Java wire format, so a `Duplicate` or
//! `Cons` that copies raw bytes composes transparently with typed producers
//! and consumers.
//!
//! Both typed endpoints are **buffered** (default [`DEFAULT_STREAM_BUFFER`]
//! bytes), the `Buffered{Output,Input}Stream` layer Java gave the paper for
//! free: a burst of small typed tokens costs one channel transfer per chunk
//! instead of one mutex round-trip each. Write-side buffering lives in the
//! [`ChannelWriter`] itself (via [`ChannelWriter::ensure_buffered`]), so
//! `into_inner` round-trips are lossless; buffered bytes become visible on
//! flush/close/drop, when the chunk fills, and automatically before the
//! owning thread parks on any blocking read — the flush rule that keeps
//! buffering invisible to Kahn determinacy and to the deadlock monitor (see
//! [`crate::flush`]). Read-side buffering is plain read-ahead inside
//! [`DataReader`]; unconsumed read-ahead is pushed back with
//! [`ChannelReader::unread`] when the reader is unwrapped.
//!
//! For full object graphs (`ObjectOutputStream` analogue) see `kpn-codec`,
//! which provides a serde-based binary format over any `io::Write`/`Read` —
//! including these channel endpoints.

use crate::channel::{ChannelReader, ChannelWriter};
use crate::error::Result;

pub use crate::channel::DEFAULT_STREAM_BUFFER;

/// Writes primitive values big-endian onto a channel
/// (`java.io.DataOutputStream` analogue). Buffered by default; see the
/// module docs for visibility and flush rules.
#[derive(Debug)]
pub struct DataWriter {
    inner: ChannelWriter,
}

impl DataWriter {
    /// Wraps a channel writer, installing a [`DEFAULT_STREAM_BUFFER`]-sized
    /// write buffer (no-op if the writer is already buffered).
    pub fn new(inner: ChannelWriter) -> Self {
        Self::with_buffer_capacity(inner, DEFAULT_STREAM_BUFFER)
    }

    /// Wraps a channel writer with an explicit buffer capacity. A capacity
    /// of zero leaves the writer unbuffered (every token is a channel
    /// transfer, the pre-buffering behaviour).
    pub fn with_buffer_capacity(mut inner: ChannelWriter, capacity: usize) -> Self {
        inner.declare_framing(crate::topology::StreamFraming::Data);
        inner.ensure_buffered(capacity);
        DataWriter { inner }
    }

    /// Wraps a channel writer without installing a buffer. Equivalent to
    /// `with_buffer_capacity(inner, 0)`; useful for latency-critical single
    /// tokens and for benchmarking the unbatched path.
    pub fn unbuffered(inner: ChannelWriter) -> Self {
        inner.declare_framing(crate::topology::StreamFraming::Data);
        DataWriter { inner }
    }

    /// Recovers the underlying byte endpoint. Any installed buffer stays
    /// with the returned [`ChannelWriter`] (buffering lives in the sink),
    /// so no bytes are lost or reordered; call [`DataWriter::flush`] first
    /// if pending bytes must be visible immediately.
    pub fn into_inner(self) -> ChannelWriter {
        self.inner
    }

    /// Mutable access to the underlying endpoint (for mixed byte/typed use).
    pub fn inner_mut(&mut self) -> &mut ChannelWriter {
        &mut self.inner
    }

    /// Writes a single byte.
    pub fn write_u8(&mut self, v: u8) -> Result<()> {
        self.inner.write_all(&[v])
    }

    /// Writes a boolean as one byte (0/1).
    pub fn write_bool(&mut self, v: bool) -> Result<()> {
        self.write_u8(v as u8)
    }

    /// Writes a big-endian `i32`.
    pub fn write_i32(&mut self, v: i32) -> Result<()> {
        self.inner.write_all(&v.to_be_bytes())
    }

    /// Writes a big-endian `i64` (`writeLong`).
    pub fn write_i64(&mut self, v: i64) -> Result<()> {
        self.inner.write_all(&v.to_be_bytes())
    }

    /// Writes a big-endian `u64`.
    pub fn write_u64(&mut self, v: u64) -> Result<()> {
        self.inner.write_all(&v.to_be_bytes())
    }

    /// Writes a big-endian IEEE-754 `f64` (`writeDouble`).
    pub fn write_f64(&mut self, v: f64) -> Result<()> {
        self.inner.write_all(&v.to_be_bytes())
    }

    /// Writes a length-prefixed byte block (u32 length, then bytes). Small
    /// blocks are assembled on the stack and issued as a *single* buffered
    /// write; larger ones write prefix and payload back-to-back into the
    /// same buffer chunk.
    pub fn write_block(&mut self, bytes: &[u8]) -> Result<()> {
        let len = (bytes.len() as u32).to_be_bytes();
        if bytes.len() <= 124 {
            let mut frame = [0u8; 128];
            frame[..4].copy_from_slice(&len);
            frame[4..4 + bytes.len()].copy_from_slice(bytes);
            self.inner.write_all(&frame[..4 + bytes.len()])
        } else {
            self.inner.write_all(&len)?;
            self.inner.write_all(bytes)
        }
    }

    /// Writes a UTF-8 string with a u16 byte-length prefix — the wire
    /// shape of Java's `writeUTF` (for strings without supplementary
    /// characters, which Java encodes in modified UTF-8).
    pub fn write_utf(&mut self, s: &str) -> Result<()> {
        let bytes = s.as_bytes();
        let len = u16::try_from(bytes.len()).map_err(|_| {
            crate::error::Error::Codec("writeUTF string longer than 65535 bytes".into())
        })?;
        self.inner.write_all(&len.to_be_bytes())?;
        self.inner.write_all(bytes)
    }

    /// Flushes the underlying endpoint.
    pub fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    /// Gracefully closes the stream.
    pub fn close(&mut self) {
        self.inner.close()
    }
}

/// Reads primitive values big-endian from a channel
/// (`java.io.DataInputStream` analogue). Every read blocks until the value
/// is complete and fails with [`crate::Error::Eof`] at end of stream.
///
/// Buffered by default: each refill drains whatever the channel currently
/// holds (up to the buffer size) in one transfer, and subsequent token reads
/// are served from the private buffer lock-free. Unwrapping the reader via
/// [`DataReader::into_inner`]/[`DataReader::inner_mut`] pushes unconsumed
/// read-ahead back onto the stream ([`ChannelReader::unread`]), so the
/// wrap/unwrap cycles of dynamic graphs (the sieve, §3.3) stay lossless.
pub struct DataReader {
    inner: ChannelReader,
    /// Read-ahead storage; empty when the reader is unbuffered.
    buf: Box<[u8]>,
    start: usize,
    end: usize,
}

impl std::fmt::Debug for DataReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataReader")
            .field("inner", &self.inner)
            .field("buffered", &(self.end - self.start))
            .field("capacity", &self.buf.len())
            .finish()
    }
}

impl DataReader {
    /// Wraps a channel reader with [`DEFAULT_STREAM_BUFFER`] bytes of
    /// read-ahead.
    pub fn new(inner: ChannelReader) -> Self {
        Self::with_buffer_capacity(inner, DEFAULT_STREAM_BUFFER)
    }

    /// Wraps a channel reader with an explicit read-ahead capacity. Zero
    /// disables read-ahead (every token is a channel transfer).
    pub fn with_buffer_capacity(inner: ChannelReader, capacity: usize) -> Self {
        inner.declare_framing(crate::topology::StreamFraming::Data);
        DataReader {
            inner,
            buf: vec![0u8; capacity].into_boxed_slice(),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a channel reader without read-ahead. Equivalent to
    /// `with_buffer_capacity(inner, 0)`.
    pub fn unbuffered(inner: ChannelReader) -> Self {
        Self::with_buffer_capacity(inner, 0)
    }

    /// Recovers the underlying byte endpoint. Unconsumed read-ahead is
    /// pushed back to the front of the stream first, so no byte is lost.
    pub fn into_inner(mut self) -> ChannelReader {
        self.push_back_readahead();
        self.inner
    }

    /// Mutable access to the underlying endpoint. Unconsumed read-ahead is
    /// pushed back first so byte-level access observes the true stream
    /// position.
    pub fn inner_mut(&mut self) -> &mut ChannelReader {
        self.push_back_readahead();
        &mut self.inner
    }

    fn push_back_readahead(&mut self) {
        if self.start != self.end {
            let pending = self.buf[self.start..self.end].to_vec();
            self.inner.unread(pending);
            self.start = 0;
            self.end = 0;
        }
    }

    /// `read_exact` through the read-ahead buffer. Requests at least as
    /// large as the buffer bypass it once it has drained.
    fn fill_exact(&mut self, out: &mut [u8]) -> Result<()> {
        let mut filled = 0;
        while filled < out.len() {
            if self.start == self.end {
                let want = out.len() - filled;
                if want >= self.buf.len() {
                    // Unbuffered reader, or an oversized request: go direct.
                    return self.inner.read_exact(&mut out[filled..]);
                }
                let n = self.inner.read(&mut self.buf)?;
                if n == 0 {
                    return Err(crate::error::Error::Eof);
                }
                self.start = 0;
                self.end = n;
            }
            let take = (self.end - self.start).min(out.len() - filled);
            out[filled..filled + take].copy_from_slice(&self.buf[self.start..self.start + take]);
            self.start += take;
            filled += take;
        }
        Ok(())
    }

    /// Reads a single byte.
    pub fn read_u8(&mut self) -> Result<u8> {
        let mut b = [0u8; 1];
        self.fill_exact(&mut b)?;
        Ok(b[0])
    }

    /// Reads a boolean (any nonzero byte is `true`).
    pub fn read_bool(&mut self) -> Result<bool> {
        Ok(self.read_u8()? != 0)
    }

    /// Reads a big-endian `i32`.
    pub fn read_i32(&mut self) -> Result<i32> {
        let mut b = [0u8; 4];
        self.fill_exact(&mut b)?;
        Ok(i32::from_be_bytes(b))
    }

    /// Reads a big-endian `i64` (`readLong`).
    pub fn read_i64(&mut self) -> Result<i64> {
        let mut b = [0u8; 8];
        self.fill_exact(&mut b)?;
        Ok(i64::from_be_bytes(b))
    }

    /// Reads a big-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        self.fill_exact(&mut b)?;
        Ok(u64::from_be_bytes(b))
    }

    /// Reads a big-endian IEEE-754 `f64` (`readDouble`).
    pub fn read_f64(&mut self) -> Result<f64> {
        let mut b = [0u8; 8];
        self.fill_exact(&mut b)?;
        Ok(f64::from_be_bytes(b))
    }

    /// Reads a length-prefixed byte block written by
    /// [`DataWriter::write_block`].
    pub fn read_block(&mut self) -> Result<Vec<u8>> {
        let mut lb = [0u8; 4];
        self.fill_exact(&mut lb)?;
        let len = u32::from_be_bytes(lb) as usize;
        let mut out = vec![0u8; len];
        self.fill_exact(&mut out)?;
        Ok(out)
    }

    /// Reads a string written by [`DataWriter::write_utf`].
    pub fn read_utf(&mut self) -> Result<String> {
        let mut lb = [0u8; 2];
        self.fill_exact(&mut lb)?;
        let len = u16::from_be_bytes(lb) as usize;
        let mut bytes = vec![0u8; len];
        self.fill_exact(&mut bytes)?;
        String::from_utf8(bytes)
            .map_err(|e| crate::error::Error::Codec(format!("invalid utf-8: {e}")))
    }

    /// Closes the stream (writers fail on next write). Discards read-ahead.
    pub fn close(&mut self) {
        self.start = 0;
        self.end = 0;
        self.inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel;
    use crate::error::Error;

    #[test]
    fn primitive_roundtrip() {
        let (w, r) = channel();
        let mut dw = DataWriter::new(w);
        let mut dr = DataReader::new(r);
        dw.write_u8(0xAB).unwrap();
        dw.write_bool(true).unwrap();
        dw.write_i32(-7).unwrap();
        dw.write_i64(i64::MIN).unwrap();
        dw.write_u64(u64::MAX).unwrap();
        dw.write_f64(core::f64::consts::PI).unwrap();
        assert_eq!(dr.read_u8().unwrap(), 0xAB);
        assert!(dr.read_bool().unwrap());
        assert_eq!(dr.read_i32().unwrap(), -7);
        assert_eq!(dr.read_i64().unwrap(), i64::MIN);
        assert_eq!(dr.read_u64().unwrap(), u64::MAX);
        assert_eq!(dr.read_f64().unwrap(), core::f64::consts::PI);
    }

    #[test]
    fn big_endian_wire_format() {
        // Java interop property: writeLong(1) is 7 zero bytes then 0x01.
        let (w, mut r) = channel();
        let mut dw = DataWriter::new(w);
        dw.write_i64(1).unwrap();
        drop(dw);
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn block_roundtrip() {
        let (w, r) = channel();
        let mut dw = DataWriter::new(w);
        let mut dr = DataReader::new(r);
        dw.write_block(b"hello world").unwrap();
        dw.write_block(b"").unwrap();
        assert_eq!(dr.read_block().unwrap(), b"hello world");
        assert_eq!(dr.read_block().unwrap(), b"");
    }

    #[test]
    fn utf_roundtrip() {
        let (w, r) = channel();
        let mut dw = DataWriter::new(w);
        let mut dr = DataReader::new(r);
        dw.write_utf("").unwrap();
        dw.write_utf("plain ascii").unwrap();
        dw.write_utf("ユニコード").unwrap();
        assert_eq!(dr.read_utf().unwrap(), "");
        assert_eq!(dr.read_utf().unwrap(), "plain ascii");
        assert_eq!(dr.read_utf().unwrap(), "ユニコード");
    }

    #[test]
    fn utf_wire_format_matches_java() {
        // writeUTF("ab") = 0x00 0x02 'a' 'b'
        let (w, mut r) = channel();
        let mut dw = DataWriter::new(w);
        dw.write_utf("ab").unwrap();
        drop(dw);
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [0, 2, b'a', b'b']);
    }

    #[test]
    fn utf_oversized_rejected() {
        let (w, _r) = channel();
        let mut dw = DataWriter::new(w);
        let big = "x".repeat(70_000);
        assert!(dw.write_utf(&big).is_err());
    }

    #[test]
    fn eof_mid_value() {
        let (mut w, r) = channel();
        w.write_all(&[0, 0, 0]).unwrap(); // 3 of 8 bytes of an i64
        drop(w);
        let mut dr = DataReader::new(r);
        assert!(matches!(dr.read_i64(), Err(Error::Eof)));
    }

    #[test]
    fn writer_buffers_until_flush() {
        let (w, mut r) = channel();
        let mut dw = DataWriter::new(w);
        dw.write_i64(7).unwrap();
        dw.flush().unwrap();
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(i64::from_be_bytes(buf), 7);
    }

    #[test]
    fn reader_into_inner_returns_readahead() {
        // The sieve's pattern: wrap, read one token, unwrap — the bytes the
        // read-ahead pulled in beyond that token must come back.
        let (w, r) = channel();
        let mut dw = DataWriter::new(w);
        for v in 0..10i64 {
            dw.write_i64(v).unwrap();
        }
        drop(dw);
        let mut dr = DataReader::new(r);
        assert_eq!(dr.read_i64().unwrap(), 0);
        let inner = dr.into_inner(); // 9 tokens of read-ahead pushed back
        let mut dr2 = DataReader::new(inner);
        for v in 1..10i64 {
            assert_eq!(dr2.read_i64().unwrap(), v);
        }
        assert!(matches!(dr2.read_i64(), Err(Error::Eof)));
    }

    #[test]
    fn reader_inner_mut_observes_true_position() {
        let (w, r) = channel();
        let mut dw = DataWriter::new(w);
        dw.write_i64(1).unwrap();
        dw.write_i64(2).unwrap();
        drop(dw);
        let mut dr = DataReader::new(r);
        assert_eq!(dr.read_i64().unwrap(), 1);
        let mut raw = [0u8; 8];
        dr.inner_mut().read_exact(&mut raw).unwrap();
        assert_eq!(i64::from_be_bytes(raw), 2);
    }

    #[test]
    fn unbuffered_endpoints_are_immediate() {
        let (w, r) = channel();
        let mut dw = DataWriter::unbuffered(w);
        let mut dr = DataReader::unbuffered(r);
        dw.write_i64(99).unwrap(); // visible without any flush
        assert_eq!(dr.read_i64().unwrap(), 99);
    }

    #[test]
    fn large_block_roundtrip_through_buffered_streams() {
        // Payload far beyond the stream buffer: exercises the bypass path
        // on both sides.
        let (w, r) = channel();
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let h = std::thread::spawn(move || {
            let mut dw = DataWriter::new(w);
            dw.write_block(&payload).unwrap();
        });
        let mut dr = DataReader::new(r);
        assert_eq!(dr.read_block().unwrap(), expect);
        h.join().unwrap();
    }

    #[test]
    fn typed_over_byte_copy_is_transparent() {
        // A byte-level identity stage between typed endpoints must not
        // disturb values — the property that makes Duplicate/Cons
        // type-independent (§3.1).
        let (w1, mut r1) = channel();
        let (mut w2, r2) = channel();
        let mut dw = DataWriter::new(w1);
        dw.write_i64(42).unwrap();
        dw.write_f64(-0.5).unwrap();
        drop(dw);
        // byte-level copy stage
        let mut buf = [0u8; 3];
        loop {
            let n = r1.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            w2.write_all(&buf[..n]).unwrap();
        }
        drop(w2);
        let mut dr = DataReader::new(r2);
        assert_eq!(dr.read_i64().unwrap(), 42);
        assert_eq!(dr.read_f64().unwrap(), -0.5);
    }
}
