//! Deterministic simulation: run a whole process network on one OS thread
//! at a time under an explicit, replayable schedule.
//!
//! The paper's central claim (§2–3) is that blocking reads make every
//! channel's history independent of *scheduling*. The regular runtime can
//! only sample whatever interleavings the OS produces; this module makes
//! the schedule an **input**. A [`SimScheduler`] serializes all process
//! threads behind a single run token: exactly one task executes at any
//! moment, and at every preemption point (channel operation entry, park,
//! task exit) the scheduler picks which ready task runs next. The pick
//! sequence — the *decision list* — fully determines the execution, so
//!
//! * a seeded random walk ([`SchedulePolicy::RandomWalk`]) explores many
//!   distinct interleavings reproducibly,
//! * a recorded decision list ([`SchedulePolicy::Replay`]) re-executes one
//!   schedule exactly, and
//! * bounded DFS over decision prefixes ([`explore_dfs`]) enumerates *all*
//!   schedules of a small graph up to a preemption depth.
//!
//! ## Why explored schedules are sound w.r.t. the real runtime
//!
//! Under simulation a task advances only between preemption points, and the
//! points chosen — blocking channel operations — are exactly the places
//! where the real runtime can context-switch *observably*: all inter-task
//! communication flows through channels, so two schedules that order the
//! channel operations identically are indistinguishable to the program.
//! Every simulated schedule corresponds to a real-thread execution (one in
//! which the OS happens to run the chosen task until its next channel
//! operation), and conversely any observable real execution orders channel
//! operations some way a decision list can express. The monitor runs with
//! [`crate::monitor::MonitorTiming::zero`] because its settling delay exists
//! only to reject concurrent-activity races that serial execution cannot
//! produce; its verdicts (grow smallest full channel / abort) are reached
//! through the same code path as the real runtime.
//!
//! ## Histories and the determinacy oracle
//!
//! With [`crate::NetworkConfig::record_history`] set, every local channel
//! records the byte sequence pushed through it, keyed by *(creator process,
//! per-creator creation index)* — a name that is stable across schedules
//! even when channels are created dynamically (the Sieve's `Sift` inserting
//! a `Modulo` stage, Figures 7/8). [`compare_histories`] then asserts the
//! Kahn property: histories from different schedules must be bit-identical
//! ([`HistoryCheck::Exact`]) for networks that drain fully, or
//! prefix-ordered ([`HistoryCheck::PrefixClosed`]) for networks stopped
//! externally by a sink limit (§3.4 mode 2), where schedules legitimately
//! truncate each history at different points of the *same* unique stream.
//!
//! ## Replaying a failure
//!
//! Harness panics and oracle failures print a [`ScheduleTrace`]: the seed
//! plus the decision list. `SchedulePolicy::Replay(trace.decisions)`
//! re-executes that schedule exactly; see `tests/sim_schedules.rs`.

use crate::error::{Error, Result};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, seedable, and good enough to de-correlate schedule
/// decisions. Kept private to the schedule policy so decision draws are the
/// only consumer of the stream.
#[derive(Debug, Clone)]
struct SimRng(u64);

impl SimRng {
    fn new(seed: u64) -> Self {
        SimRng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

// ---------------------------------------------------------------------------
// Policy and trace
// ---------------------------------------------------------------------------

/// How the scheduler picks the next task at each decision point.
#[derive(Debug, Clone)]
pub enum SchedulePolicy {
    /// Pick uniformly at random from the ready set, seeded: the same seed
    /// always yields the same schedule.
    RandomWalk {
        /// Seed for the decision stream.
        seed: u64,
    },
    /// Follow a recorded decision list exactly. If the program itself is
    /// deterministic given the schedule (every KPN is), the replay cannot
    /// diverge; if it does (a racy program past its divergence point),
    /// out-of-range choices are clamped to the ready-set size.
    Replay(Vec<u32>),
    /// Follow the given decisions, then always pick the first ready task.
    /// The DFS explorer uses this to branch off a known prefix.
    Prefix(Vec<u32>),
}

/// A completed run's schedule: the seed (for random walks) and the exact
/// decision list, replayable via [`SchedulePolicy::Replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Seed of the random walk that produced this trace, if any.
    pub seed: Option<u64>,
    /// Index into the (TaskId-sorted) ready set chosen at each decision
    /// point.
    pub decisions: Vec<u32>,
    /// Size of the ready set at each decision point (`decisions[i] <
    /// arities[i]`); tells the DFS explorer where alternatives exist.
    pub arities: Vec<u32>,
}

impl ScheduleTrace {
    /// A 64-bit fingerprint of the decision list, used to count *distinct*
    /// explored schedules.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the u32 stream
        for &d in &self.decisions {
            for b in d.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

impl std::fmt::Display for ScheduleTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.seed {
            Some(s) => write!(f, "seed={s:#x} ")?,
            None => write!(f, "seed=- ")?,
        }
        write!(f, "decisions[{}]=", self.decisions.len())?;
        const SHOWN: usize = 96;
        for (i, d) in self.decisions.iter().take(SHOWN).enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        if self.decisions.len() > SHOWN {
            write!(f, ",…(+{})", self.decisions.len() - SHOWN)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Runnable, waiting to be granted the token.
    Ready,
    /// Holds the run token.
    Running,
    /// Waiting for an `unpark_all` on the given key.
    Parked(usize),
    Finished,
}

struct Task {
    name: String,
    state: TaskState,
}

struct SchedState {
    tasks: Vec<Task>,
    /// Task currently granted the run token.
    current: Option<usize>,
    /// False until [`SimScheduler::release`]: tasks registered during graph
    /// construction wait so the initial grant covers the whole batch.
    released: bool,
    policy: SchedulePolicy,
    rng: SimRng,
    decisions: Vec<u32>,
    arities: Vec<u32>,
    /// Set on irreducible quiescence; every waiter panics with this.
    failed: Option<String>,
}

/// The deterministic cooperative scheduler. Create one per simulated run,
/// pass it via [`crate::ExecMode::Sim`] in [`crate::NetworkConfig::mode`],
/// and read the [`ScheduleTrace`] back after the run.
pub struct SimScheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    /// Run when no task is ready but some are parked — the deadlock
    /// monitor's tick, which may grow a channel or abort the network (both
    /// of which unpark tasks). Belt-and-braces: the event-driven detection
    /// in `enter_block` usually resolves before the last task parks.
    idle_hooks: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
}

thread_local! {
    /// The scheduler+task this OS thread is attached to, if any.
    static CURRENT: RefCell<Option<(Arc<SimScheduler>, usize)>> = const { RefCell::new(None) };
}

enum Dispatch {
    /// A task was granted the token (waiters must be notified).
    Granted,
    /// Nothing ready, nothing parked: the network has finished.
    Done,
    /// Nothing ready but tasks are parked: quiescent.
    Idle,
}

impl SimScheduler {
    /// A scheduler following `policy`.
    pub fn new(policy: SchedulePolicy) -> Arc<Self> {
        let (rng, _seed) = match &policy {
            SchedulePolicy::RandomWalk { seed } => (SimRng::new(*seed), Some(*seed)),
            _ => (SimRng::new(0), None),
        };
        Arc::new(SimScheduler {
            state: Mutex::new(SchedState {
                tasks: Vec::new(),
                current: None,
                released: false,
                policy,
                rng,
                decisions: Vec::new(),
                arities: Vec::new(),
                failed: None,
            }),
            cv: Condvar::new(),
            idle_hooks: Mutex::new(Vec::new()),
        })
    }

    /// Registers an idle hook (the network's monitor tick).
    pub(crate) fn add_idle_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        self.idle_hooks.lock().push(hook);
    }

    /// Registers a task. Must be called on the *spawning* thread before the
    /// task's OS thread is created, so task ids follow program order — the
    /// property that makes ids stable across runs of the same schedule.
    pub(crate) fn register_task(&self, name: &str) -> usize {
        let mut st = self.state.lock();
        st.tasks.push(Task {
            name: name.to_string(),
            state: TaskState::Ready,
        });
        st.tasks.len() - 1
    }

    /// Binds the calling OS thread to task `tid` and blocks until the
    /// scheduler grants it the token. First call a task's thread makes.
    pub(crate) fn attach(self: &Arc<Self>, tid: usize) {
        CURRENT.with(|c| *c.borrow_mut() = Some((self.clone(), tid)));
        let mut st = self.state.lock();
        self.wait_for_grant(&mut st, tid);
    }

    /// Opens scheduling: called once the initial batch of tasks is
    /// registered ([`crate::Network::start`]). Idempotent.
    pub(crate) fn release(self: &Arc<Self>) {
        let mut st = self.state.lock();
        if st.released {
            return;
        }
        st.released = true;
        if st.current.is_none() {
            drop(st);
            self.dispatch_and_notify();
        }
    }

    /// Preemption point: the current task offers the token. The scheduler
    /// may pick any ready task — including the caller — so every call is
    /// one decision. No-op when called from a thread that is not this
    /// scheduler's current task.
    pub(crate) fn yield_now(self: &Arc<Self>) {
        let Some(tid) = self.current_tid() else {
            return;
        };
        {
            let mut st = self.state.lock();
            st.tasks[tid].state = TaskState::Ready;
            st.current = None;
        }
        self.dispatch_and_notify();
        let mut st = self.state.lock();
        self.wait_for_grant(&mut st, tid);
    }

    /// Parks the current task on `key` until [`SimScheduler::unpark_all`]
    /// with the same key, handing the token to another task.
    pub(crate) fn park(self: &Arc<Self>, key: usize) {
        let Some(tid) = self.current_tid() else {
            return;
        };
        {
            let mut st = self.state.lock();
            st.tasks[tid].state = TaskState::Parked(key);
            st.current = None;
        }
        self.dispatch_and_notify();
        let mut st = self.state.lock();
        self.wait_for_grant(&mut st, tid);
    }

    /// Makes every task parked on `key` ready. The caller keeps the token;
    /// woken tasks run when a later decision picks them.
    pub(crate) fn unpark_all(&self, key: usize) {
        let mut st = self.state.lock();
        for t in &mut st.tasks {
            if t.state == TaskState::Parked(key) {
                t.state = TaskState::Ready;
            }
        }
    }

    /// Marks the current task finished and hands the token on. Last thing a
    /// task's thread does.
    pub(crate) fn finish_current(self: &Arc<Self>) {
        let Some(tid) = self.current_tid() else {
            return;
        };
        CURRENT.with(|c| *c.borrow_mut() = None);
        {
            let mut st = self.state.lock();
            st.tasks[tid].state = TaskState::Finished;
            st.current = None;
        }
        self.dispatch_and_notify();
    }

    /// The task id bound to this thread, if the thread belongs to *this*
    /// scheduler.
    fn current_tid(self: &Arc<Self>) -> Option<usize> {
        CURRENT.with(|c| match &*c.borrow() {
            Some((sched, tid)) if Arc::ptr_eq(sched, self) => Some(*tid),
            _ => None,
        })
    }

    /// True when the calling thread is a task of this scheduler.
    pub(crate) fn is_current(self: &Arc<Self>) -> bool {
        self.current_tid().is_some()
    }

    /// Picks and grants the next task; on quiescence runs the idle hooks
    /// (deadlock resolution) and retries once before declaring the run
    /// irreducibly stuck.
    fn dispatch_and_notify(self: &Arc<Self>) {
        let outcome = {
            let mut st = self.state.lock();
            self.dispatch_locked(&mut st)
        };
        match outcome {
            Dispatch::Granted | Dispatch::Done => {
                self.cv.notify_all();
            }
            Dispatch::Idle => {
                // Quiescent: some tasks parked, none ready. Give the
                // monitor a chance to resolve (grow a channel / poison the
                // network), which unparks tasks via the channel wake paths.
                // Holding the hooks lock while running them is fine: hooks
                // only re-enter through `unpark_all` (the state lock).
                {
                    let hooks = self.idle_hooks.lock();
                    for hook in hooks.iter() {
                        hook();
                    }
                }
                let outcome = {
                    let mut st = self.state.lock();
                    self.dispatch_locked(&mut st)
                };
                match outcome {
                    Dispatch::Granted | Dispatch::Done => self.cv.notify_all(),
                    Dispatch::Idle => {
                        let mut st = self.state.lock();
                        let parked: Vec<String> = st
                            .tasks
                            .iter()
                            .filter(|t| matches!(t.state, TaskState::Parked(_)))
                            .map(|t| t.name.clone())
                            .collect();
                        let trace = Self::trace_locked(&st);
                        st.failed = Some(format!(
                            "sim: irreducible quiescence (tasks {parked:?} parked, none \
                             ready, idle hooks did not resolve) — schedule: {trace}"
                        ));
                        drop(st);
                        self.cv.notify_all();
                        // The caller is one of the stuck tasks' threads (or
                        // release()); propagate the failure there too.
                        let msg = self.state.lock().failed.clone().unwrap();
                        panic!("{msg}");
                    }
                }
            }
        }
    }

    /// Picks the next task per policy. Caller holds the state lock.
    fn dispatch_locked(&self, st: &mut SchedState) -> Dispatch {
        if !st.released || st.current.is_some() {
            return Dispatch::Granted; // nothing to do yet / already granted
        }
        let ready: Vec<usize> = st
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == TaskState::Ready)
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            let any_parked = st
                .tasks
                .iter()
                .any(|t| matches!(t.state, TaskState::Parked(_)));
            return if any_parked {
                Dispatch::Idle
            } else {
                Dispatch::Done
            };
        }
        let arity = ready.len() as u32;
        let pos = st.decisions.len();
        let choice = match &st.policy {
            SchedulePolicy::RandomWalk { .. } => (st.rng.next() % arity as u64) as u32,
            SchedulePolicy::Replay(list) => list.get(pos).copied().unwrap_or(0).min(arity - 1),
            SchedulePolicy::Prefix(list) => list.get(pos).copied().unwrap_or(0).min(arity - 1),
        };
        st.decisions.push(choice);
        st.arities.push(arity);
        let tid = ready[choice as usize];
        st.current = Some(tid);
        Dispatch::Granted
    }

    /// Blocks until `tid` holds the token (or the run failed).
    fn wait_for_grant(&self, st: &mut parking_lot::MutexGuard<'_, SchedState>, tid: usize) {
        loop {
            if let Some(msg) = &st.failed {
                let msg = msg.clone();
                panic!("{msg}");
            }
            if st.current == Some(tid) {
                st.tasks[tid].state = TaskState::Running;
                return;
            }
            self.cv.wait(st);
        }
    }

    fn trace_locked(st: &SchedState) -> ScheduleTrace {
        ScheduleTrace {
            seed: match &st.policy {
                SchedulePolicy::RandomWalk { seed } => Some(*seed),
                _ => None,
            },
            decisions: st.decisions.clone(),
            arities: st.arities.clone(),
        }
    }

    /// The schedule executed so far (complete once the network has joined).
    pub fn trace(&self) -> ScheduleTrace {
        Self::trace_locked(&self.state.lock())
    }

}

impl std::fmt::Debug for SimScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SimScheduler")
            .field("tasks", &st.tasks.len())
            .field("decisions", &st.decisions.len())
            .field("released", &st.released)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// History recorder
// ---------------------------------------------------------------------------

/// Identifies one channel across schedules: the registered name of the
/// process that created it (`"main"` outside any task) and the index among
/// that creator's channels, in creation order. Stable across interleavings
/// because each creator's own program order is schedule-independent.
pub type ChannelKey = (String, u32);

struct RecState {
    histories: Vec<(ChannelKey, Vec<u8>)>,
    per_creator: HashMap<String, u32>,
}

/// Records the byte history of every channel of one network (see
/// [`crate::NetworkConfig::record_history`]).
pub struct HistoryRecorder {
    state: Mutex<RecState>,
}

impl HistoryRecorder {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(HistoryRecorder {
            state: Mutex::new(RecState {
                histories: Vec::new(),
                per_creator: HashMap::new(),
            }),
        })
    }

    /// Registers a channel created by the current task (or "main" for
    /// foreign threads); returns the slot the channel records into. Task
    /// names come from the executor layer, so the keying is identical
    /// under thread, pooled, and sim execution — what lets the exec-matrix
    /// tests compare histories across modes.
    pub(crate) fn register(&self) -> usize {
        let creator = crate::exec::current_task_name().unwrap_or_else(|| "main".to_string());
        let mut st = self.state.lock();
        let seq = st.per_creator.entry(creator.clone()).or_insert(0);
        let key = (creator, *seq);
        *seq += 1;
        st.histories.push((key, Vec::new()));
        st.histories.len() - 1
    }

    pub(crate) fn record(&self, slot: usize, bytes: &[u8]) {
        self.state.lock().histories[slot].1.extend_from_slice(bytes);
    }

    /// All recorded histories, sorted by channel key.
    pub fn histories(&self) -> Vec<(ChannelKey, Vec<u8>)> {
        let mut out = self.state.lock().histories.clone();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl std::fmt::Debug for HistoryRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HistoryRecorder({} channels)", self.state.lock().histories.len())
    }
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

/// How strictly two runs' histories must agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryCheck {
    /// Bit-identical byte-for-byte: networks that drain fully (§3.4 mode 1
    /// termination) must reproduce every channel exactly.
    Exact,
    /// Prefix-ordered: for each channel, one run's history must be a prefix
    /// of the other's. This is the Kahn guarantee for networks stopped
    /// externally (a sink limit's `WriteClosed` cascade, §3.4 mode 2):
    /// every schedule computes a prefix of the same unique stream, cut at a
    /// schedule-dependent point.
    PrefixClosed,
}

/// Compares two runs' channel histories under `check`. `Err` describes the
/// first divergence (channel key, offset) — determinacy is broken.
pub fn compare_histories(
    baseline: &[(ChannelKey, Vec<u8>)],
    candidate: &[(ChannelKey, Vec<u8>)],
    check: HistoryCheck,
) -> std::result::Result<(), String> {
    let base: HashMap<&ChannelKey, &Vec<u8>> = baseline.iter().map(|(k, v)| (k, v)).collect();
    let cand: HashMap<&ChannelKey, &Vec<u8>> = candidate.iter().map(|(k, v)| (k, v)).collect();
    // Under Exact the channel *sets* must match too; under PrefixClosed a
    // channel may be absent from the run that was cut before its creation.
    if check == HistoryCheck::Exact {
        for k in base.keys() {
            if !cand.contains_key(*k) {
                return Err(format!("channel {k:?} missing from candidate run"));
            }
        }
        for k in cand.keys() {
            if !base.contains_key(*k) {
                return Err(format!("channel {k:?} missing from baseline run"));
            }
        }
    }
    for (k, b) in &base {
        let Some(c) = cand.get(*k) else { continue };
        let common = b.len().min(c.len());
        if let Some(off) = (0..common).find(|&i| b[i] != c[i]) {
            return Err(format!(
                "channel {k:?} diverges at byte {off} (baseline {:#04x}, candidate {:#04x}; \
                 lengths {} vs {})",
                b[off],
                c[off],
                b.len(),
                c.len()
            ));
        }
        if check == HistoryCheck::Exact && b.len() != c.len() {
            return Err(format!(
                "channel {k:?} lengths differ: baseline {} vs candidate {} (identical prefix)",
                b.len(),
                c.len()
            ));
        }
    }
    Ok(())
}

/// One simulated run's observable outcome.
#[derive(Debug)]
pub struct SimRun {
    /// Per-channel byte histories (empty unless `record_history` was set).
    pub histories: Vec<(ChannelKey, Vec<u8>)>,
    /// The schedule that produced them.
    pub trace: ScheduleTrace,
}

/// Builds a network with `build`, runs it to completion under `policy` with
/// history recording on, and returns the histories plus the executed
/// schedule. The network error (deadlock, process failure) passes through
/// unchanged so tests can assert on it; the schedule of a failed run is in
/// [`SimScheduler::trace`] — rerun with the same policy to reproduce.
pub fn run_sim<F>(policy: SchedulePolicy, build: F) -> Result<SimRun>
where
    F: FnOnce(&crate::Network),
{
    let sched = SimScheduler::new(policy);
    let config = crate::NetworkConfig {
        mode: crate::ExecMode::Sim(sched.clone()),
        record_history: true,
        ..Default::default()
    };
    let net = crate::Network::with_config(config);
    build(&net);
    let outcome = net.run();
    let run = SimRun {
        histories: net.histories().unwrap_or_default(),
        trace: sched.trace(),
    };
    outcome.map(|_| run)
}

/// Runs `body` once per policy and checks Kahn determinacy: every run's
/// histories must agree with the first run's under `check`. Returns the
/// number of *distinct* schedules explored. The error message embeds the
/// offending [`ScheduleTrace`] so the schedule can be replayed.
pub fn check_determinacy<F>(
    policies: impl IntoIterator<Item = SchedulePolicy>,
    check: HistoryCheck,
    mut body: F,
) -> Result<usize>
where
    F: FnMut(SchedulePolicy) -> Result<SimRun>,
{
    let mut baseline: Option<SimRun> = None;
    let mut fingerprints = std::collections::HashSet::new();
    for policy in policies {
        let run = body(policy)?;
        fingerprints.insert(run.trace.fingerprint());
        match &baseline {
            None => baseline = Some(run),
            Some(base) => {
                if let Err(msg) = compare_histories(&base.histories, &run.histories, check) {
                    return Err(Error::Graph(format!(
                        "determinacy broken: {msg}\n  baseline schedule: {}\n  breaking \
                         schedule: {}",
                        base.trace, run.trace
                    )));
                }
            }
        }
    }
    Ok(fingerprints.len())
}

/// Report of a bounded DFS exploration.
#[derive(Debug)]
pub struct DfsReport {
    /// Total schedules executed.
    pub runs: usize,
    /// Distinct decision lists among them.
    pub distinct: usize,
}

/// Bounded depth-first exploration of the schedule space: starting from the
/// empty prefix, runs each frontier prefix under [`SchedulePolicy::Prefix`],
/// then branches a new prefix for every untaken alternative at decision
/// depths below `max_depth`, until the frontier is exhausted or `max_runs`
/// schedules have executed. Each run's histories are checked against the
/// first run's under `check`.
///
/// Each generated prefix ends in a not-yet-taken choice, so no schedule is
/// executed twice; for small graphs and a `max_depth` covering the whole
/// run this enumerates *every* schedule.
pub fn explore_dfs<F>(
    max_runs: usize,
    max_depth: usize,
    check: HistoryCheck,
    mut body: F,
) -> Result<DfsReport>
where
    F: FnMut(SchedulePolicy) -> Result<SimRun>,
{
    let mut frontier: Vec<Vec<u32>> = vec![Vec::new()];
    let mut baseline: Option<SimRun> = None;
    let mut fingerprints = std::collections::HashSet::new();
    let mut runs = 0;
    while let Some(prefix) = frontier.pop() {
        if runs >= max_runs {
            break;
        }
        let run = body(SchedulePolicy::Prefix(prefix.clone()))?;
        runs += 1;
        fingerprints.insert(run.trace.fingerprint());
        // Branch on every untaken alternative discovered past the prefix.
        for i in prefix.len()..run.trace.decisions.len().min(max_depth) {
            for alt in (run.trace.decisions[i] + 1)..run.trace.arities[i] {
                let mut p = run.trace.decisions[..i].to_vec();
                p.push(alt);
                frontier.push(p);
            }
        }
        match &baseline {
            None => baseline = Some(run),
            Some(base) => {
                if let Err(msg) = compare_histories(&base.histories, &run.histories, check) {
                    return Err(Error::Graph(format!(
                        "determinacy broken (DFS): {msg}\n  baseline schedule: {}\n  breaking \
                         schedule: {}",
                        base.trace, run.trace
                    )));
                }
            }
        }
    }
    Ok(DfsReport {
        runs,
        distinct: fingerprints.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::{mod_merge_dag, primes_below, primes_reference, GraphOptions};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn sim_pipeline_histories_identical_across_seeds() {
        // Sequence -> Scale -> Collect under three different schedules:
        // every channel history must be bit-identical (full drain => Exact).
        let run = |seed| {
            run_sim(SchedulePolicy::RandomWalk { seed }, |net| {
                use crate::stdlib::{Collect, Scale, Sequence};
                let (aw, ar) = net.channel_with_capacity(64);
                let (bw, br) = net.channel_with_capacity(64);
                let out = Arc::new(StdMutex::new(Vec::new()));
                net.add(Sequence::new(0, 50, aw));
                net.add(Scale::new(3, ar, bw));
                net.add(Collect::new(br, out.clone()));
            })
            .unwrap()
        };
        let base = run(1);
        assert!(!base.histories.is_empty());
        for seed in 2..6 {
            let r = run(seed);
            compare_histories(&base.histories, &r.histories, HistoryCheck::Exact).unwrap();
        }
    }

    #[test]
    fn sim_replay_reproduces_schedule_exactly() {
        let build = |net: &crate::Network| {
            let _ = primes_below(
                net,
                30,
                &GraphOptions {
                    channel_capacity: 64,
                    ..Default::default()
                },
            );
        };
        let walk = run_sim(SchedulePolicy::RandomWalk { seed: 0xfeed }, build).unwrap();
        let replay = run_sim(SchedulePolicy::Replay(walk.trace.decisions.clone()), build).unwrap();
        assert_eq!(walk.trace.decisions, replay.trace.decisions);
        assert_eq!(walk.trace.arities, replay.trace.arities);
        compare_histories(&walk.histories, &replay.histories, HistoryCheck::Exact).unwrap();
    }

    #[test]
    fn sim_resolves_artificial_deadlock_by_growth() {
        // Figure 13's undersized-channel graph needs monitor growth to
        // finish; under sim the growth happens deterministically (smallest
        // capacity, then lowest channel id).
        let run = |seed| {
            let out = Arc::new(StdMutex::new(Vec::new()));
            let captured = out.clone();
            let r = run_sim(SchedulePolicy::RandomWalk { seed }, move |net| {
                let got = mod_merge_dag(net, 10, 100, 8);
                *captured.lock().unwrap() = vec![got];
            })
            .unwrap();
            let inner = out.lock().unwrap()[0].lock().unwrap().clone();
            (r, inner)
        };
        let (base, base_out) = run(7);
        assert!(!base_out.is_empty());
        let (other, other_out) = run(8);
        assert_eq!(base_out, other_out);
        compare_histories(&base.histories, &other.histories, HistoryCheck::Exact).unwrap();
    }

    #[test]
    fn sim_detects_true_deadlock_without_wall_clock() {
        // Two processes each read-blocked on the other: a genuine Kahn
        // deadlock, detected purely through scheduler quiescence + the
        // monitor's event-driven check — no timeouts involved.
        use crate::stream::{DataReader, DataWriter};
        let outcome = run_sim(SchedulePolicy::RandomWalk { seed: 3 }, |net| {
            let (aw, ar) = net.channel();
            let (bw, br) = net.channel();
            net.add_fn("p1", move |_| {
                let mut r = DataReader::new(br);
                let mut w = DataWriter::new(aw);
                loop {
                    let v = r.read_i64()?;
                    w.write_i64(v)?;
                }
            });
            net.add_fn("p2", move |_| {
                let mut r = DataReader::new(ar);
                let mut w = DataWriter::new(bw);
                loop {
                    let v = r.read_i64()?;
                    w.write_i64(v)?;
                }
            });
        });
        assert!(matches!(outcome, Err(Error::Deadlocked)));
    }

    #[test]
    fn sim_sieve_output_matches_reference() {
        // The sieve reconfigures dynamically (Sift splices Modulo stages),
        // yet under sim its output still matches the reference exactly.
        let slot = Arc::new(StdMutex::new(Vec::new()));
        let captured = slot.clone();
        run_sim(SchedulePolicy::RandomWalk { seed: 11 }, move |net| {
            let out = primes_below(
                net,
                50,
                &GraphOptions {
                    channel_capacity: 32,
                    ..Default::default()
                },
            );
            *captured.lock().unwrap() = vec![out];
        })
        .unwrap();
        let got = slot.lock().unwrap()[0].lock().unwrap().clone();
        assert_eq!(got, primes_reference(50));
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = SimRng::new(43);
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn trace_fingerprint_distinguishes_decisions() {
        let t1 = ScheduleTrace {
            seed: None,
            decisions: vec![0, 1, 0],
            arities: vec![2, 2, 2],
        };
        let t2 = ScheduleTrace {
            seed: None,
            decisions: vec![0, 1, 1],
            arities: vec![2, 2, 2],
        };
        assert_ne!(t1.fingerprint(), t2.fingerprint());
        assert_eq!(t1.fingerprint(), t1.clone().fingerprint());
    }

    #[test]
    fn trace_display_is_compact() {
        let t = ScheduleTrace {
            seed: Some(0xBEEF),
            decisions: (0..200).map(|i| i % 3).collect(),
            arities: vec![3; 200],
        };
        let s = t.to_string();
        assert!(s.starts_with("seed=0xbeef "));
        assert!(s.contains("…(+104)"), "long traces truncate: {s}");
    }

    #[test]
    fn compare_exact_catches_divergence_and_length() {
        let k = ("p".to_string(), 0);
        let a = vec![(k.clone(), vec![1, 2, 3])];
        let b = vec![(k.clone(), vec![1, 9, 3])];
        assert!(compare_histories(&a, &b, HistoryCheck::Exact).is_err());
        let c = vec![(k.clone(), vec![1, 2])];
        assert!(compare_histories(&a, &c, HistoryCheck::Exact).is_err());
        assert!(compare_histories(&a, &c, HistoryCheck::PrefixClosed).is_ok());
        assert!(compare_histories(&a, &a, HistoryCheck::Exact).is_ok());
    }

    #[test]
    fn compare_exact_requires_same_channel_set() {
        let a = vec![(("p".to_string(), 0), vec![1])];
        let b: Vec<(ChannelKey, Vec<u8>)> = vec![];
        assert!(compare_histories(&a, &b, HistoryCheck::Exact).is_err());
        assert!(compare_histories(&a, &b, HistoryCheck::PrefixClosed).is_ok());
    }

    #[test]
    fn prefix_check_rejects_non_prefix() {
        let k = ("p".to_string(), 0);
        let a = vec![(k.clone(), vec![1, 2, 3, 4])];
        let b = vec![(k.clone(), vec![1, 2, 9])];
        assert!(compare_histories(&a, &b, HistoryCheck::PrefixClosed).is_err());
    }
}
