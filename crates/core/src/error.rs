//! Error and result types for channel and process operations.
//!
//! The paper's Java implementation signals every stream condition with an
//! `IOException`; the run loop of `IterativeProcess` catches it and stops the
//! process (§3.2, Figure 4). We mirror that with a single [`Error`] enum:
//! any `Err` returned from a process `step` terminates the process, closing
//! its endpoints and propagating the cascade described in §3.4.

use std::fmt;

/// Errors produced by channel operations and process steps.
#[derive(Debug)]
pub enum Error {
    /// A read reached the true end of the stream: the writer closed its end
    /// and all buffered data has been consumed (§3.4: "an exception occurs
    /// only after the end of the data stream is reached").
    Eof,
    /// A write was attempted on a channel whose reader has been closed
    /// (§3.4: "closing an InputStream causes an exception to occur the next
    /// time the corresponding OutputStream is written to").
    WriteClosed,
    /// The network was aborted because the deadlock monitor declared a true
    /// (non-artificial) deadlock, or because [`crate::Network::abort`] was
    /// called. All blocked operations fail with this error.
    Deadlocked,
    /// A remote peer disconnected abruptly (socket error without a graceful
    /// close frame). Treated like an exception in the Java implementation:
    /// the process stops and the termination cascade proceeds.
    Disconnected(String),
    /// Transport-level I/O failure on a distributed channel.
    Io(std::io::Error),
    /// A typed or object stream could not decode the incoming bytes.
    Codec(String),
    /// Graph construction or migration error (bad spec, unknown process
    /// type, unroutable endpoint).
    Graph(String),
    /// The static lint pass found structural defects and the network is
    /// configured with [`crate::topology::LintLevel::Deny`]. Carries every
    /// finding from the run.
    Lint(Vec<crate::topology::Diagnostic>),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Eof => write!(f, "end of stream"),
            Error::WriteClosed => write!(f, "write on channel with closed reader"),
            Error::Deadlocked => write!(f, "network deadlocked"),
            Error::Disconnected(why) => write!(f, "peer disconnected: {why}"),
            Error::Io(e) => write!(f, "transport error: {e}"),
            Error::Codec(why) => write!(f, "codec error: {why}"),
            Error::Graph(why) => write!(f, "graph error: {why}"),
            Error::Lint(diags) => {
                write!(f, "lint found {} issue(s)", diags.len())?;
                for d in diags {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => Error::Eof,
            std::io::ErrorKind::BrokenPipe => Error::WriteClosed,
            _ => Error::Io(e),
        }
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        use std::io::ErrorKind;
        match e {
            Error::Eof => std::io::Error::new(ErrorKind::UnexpectedEof, "kpn: end of stream"),
            Error::WriteClosed => std::io::Error::new(ErrorKind::BrokenPipe, "kpn: reader closed"),
            Error::Io(inner) => inner,
            other => std::io::Error::other(other.to_string()),
        }
    }
}

impl Error {
    /// True when the error is an orderly end-of-computation signal (EOF or
    /// reader-closed) rather than a fault. The termination cascade of §3.4
    /// is made of exactly these.
    pub fn is_graceful(&self) -> bool {
        matches!(self, Error::Eof | Error::WriteClosed)
    }
}

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Error::Eof.to_string(), "end of stream");
        assert_eq!(
            Error::WriteClosed.to_string(),
            "write on channel with closed reader"
        );
        assert!(Error::Codec("bad tag".into())
            .to_string()
            .contains("bad tag"));
    }

    #[test]
    fn graceful_classification() {
        assert!(Error::Eof.is_graceful());
        assert!(Error::WriteClosed.is_graceful());
        assert!(!Error::Deadlocked.is_graceful());
        assert!(!Error::Disconnected("x".into()).is_graceful());
    }

    #[test]
    fn io_roundtrip_eof() {
        let io: std::io::Error = Error::Eof.into();
        assert_eq!(io.kind(), std::io::ErrorKind::UnexpectedEof);
        let back: Error = io.into();
        assert!(matches!(back, Error::Eof));
    }

    #[test]
    fn io_roundtrip_broken_pipe() {
        let io: std::io::Error = Error::WriteClosed.into();
        assert_eq!(io.kind(), std::io::ErrorKind::BrokenPipe);
        let back: Error = io.into();
        assert!(matches!(back, Error::WriteClosed));
    }

    #[test]
    fn io_other_maps_to_io_variant() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
