//! FIFO byte channels with blocking reads and bounded blocking writes.
//!
//! This is the operational embodiment of Kahn's streams (§3.1): a
//! [`ChannelWriter`]/[`ChannelReader`] pair connected by a shared in-memory
//! ring buffer. Reads **block** when no data is available — the condition
//! Kahn requires for determinacy — and writes block when the bounded buffer
//! is full (§3.5), which both enforces scheduling fairness and enables
//! Parks' bounded-scheduling buffer management.
//!
//! Three features beyond a plain pipe reproduce the paper's machinery:
//!
//! * **Sequence readers** (`java.io.SequenceInputStream` analogue): a
//!   [`ChannelReader`] holds a *queue* of byte sources and advances to the
//!   next when one ends, so channels can be spliced together during dynamic
//!   reconfiguration without losing or duplicating bytes (Figures 9/10).
//! * **Writer retirement** ([`ChannelWriter::retire`]): a process that
//!   removes itself from the graph hands its *input* reader over to its
//!   output channel as a continuation; the downstream reader drains the
//!   buffer, then transparently continues reading from the spliced source.
//! * **Pluggable transports**: both endpoints are trait objects
//!   ([`Sink`]/[`Source`]), so the lowest layer can be swapped between the
//!   local shared buffer and a network socket (Figure 3's bottom layer),
//!   including mid-stream via [`SourceRead::Splice`] (used by the redirect
//!   protocol of §4.3).

use crate::buffer::RingBuffer;
use crate::error::{Error, Result};
use crate::flush::{self, Flushable};
use crate::exec::Exec;
use crate::monitor::{BlockGuard, BlockKind, ChannelIoStats, Monitor, MonitoredChannel};
use crate::sim::HistoryRecorder;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Default channel capacity in bytes, analogous to the default buffer size
/// of Java piped streams ("the default buffer capacities for Java streams
/// are sufficient for many programs", §3.5).
pub const DEFAULT_CAPACITY: usize = 8 * 1024;

static NEXT_CHANNEL_ID: AtomicU64 = AtomicU64::new(1);

/// Outcome of a single [`Source::read`] call.
pub enum SourceRead {
    /// `n > 0` bytes were copied into the buffer.
    Data(usize),
    /// This source ended; the reader should advance to its next source (or
    /// report EOF if there is none).
    End,
    /// This source ended *and* delivered a continuation: the reader splices
    /// the given reader's sources in place of this source and keeps going.
    /// Produced by writer retirement (Figures 9/10) and by transport
    /// redirects (§4.3).
    Splice(ChannelReader),
}

/// A blocking byte source: one stage of a [`ChannelReader`]'s sequence.
pub trait Source: Send {
    /// Blocks until at least one byte is available, the source ends, or an
    /// error occurs. `buf` is non-empty.
    fn read(&mut self, buf: &mut [u8]) -> Result<SourceRead>;
    /// The reader abandons this source (process terminated): release
    /// resources and make the corresponding writer fail on its next write.
    fn close(&mut self);
}

/// A blocking byte sink: the write end of a channel.
pub trait Sink: Send {
    /// Blocks until every byte has been accepted. Fails with
    /// [`Error::WriteClosed`] once the reader has closed.
    fn write_all(&mut self, buf: &[u8]) -> Result<()>;
    /// Pushes buffered bytes toward the reader (no-op for local channels).
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
    /// Gracefully ends the stream: the reader drains remaining data, then
    /// sees EOF.
    fn close(&mut self);
    /// Ends the stream with a continuation: the reader drains remaining
    /// data, then continues reading from `upstream` (writer retirement,
    /// Figures 9/10). Only local sinks support this.
    fn retire(self: Box<Self>, upstream: ChannelReader) -> Result<()> {
        drop(upstream); // closing it propagates upstream cancellation
        Err(Error::Graph("retire unsupported on this transport".into()))
    }
}

// ---------------------------------------------------------------------------
// Local shared-buffer transport
// ---------------------------------------------------------------------------

struct BufState {
    buf: RingBuffer,
    write_closed: bool,
    read_closed: bool,
    poisoned: bool,
    continuation: Option<ChannelReader>,
    // Waiter counts per side: unparks are skipped entirely when nobody is
    // parked, which removes a syscall-bound wakeup from the uncontended
    // fast path. Sound because waiters re-check their predicate under this
    // same mutex before (and after) every park.
    read_waiters: u32,
    write_waiters: u32,
    // I/O counters (ChannelIoStats).
    bytes_written: u64,
    write_blocks: u64,
    read_blocks: u64,
    peak_occupancy: usize,
}

/// Shared state of a local channel. Registered with the network's deadlock
/// monitor when created through [`crate::Network::channel`].
pub(crate) struct Shared {
    id: u64,
    state: Mutex<BufState>,
    monitor: Option<Arc<Monitor>>,
    /// The executor every blocking operation on this channel parks through
    /// — the single scheduling seam (thread, pooled, or sim; see
    /// [`crate::exec`]).
    exec: Arc<dyn Exec>,
    /// When set, every byte pushed through the ring buffer is appended to
    /// the recorder slot (the determinacy oracle's channel history).
    recorder: Option<(Arc<HistoryRecorder>, usize)>,
}

impl Shared {
    fn new(
        capacity: usize,
        monitor: Option<Arc<Monitor>>,
        exec: Arc<dyn Exec>,
        recorder: Option<(Arc<HistoryRecorder>, usize)>,
    ) -> Arc<Self> {
        Arc::new(Shared {
            id: NEXT_CHANNEL_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(BufState {
                buf: RingBuffer::with_capacity(capacity),
                write_closed: false,
                read_closed: false,
                poisoned: false,
                continuation: None,
                read_waiters: 0,
                write_waiters: 0,
                bytes_written: 0,
                write_blocks: 0,
                read_blocks: 0,
                peak_occupancy: 0,
            }),
            monitor,
            exec,
            recorder,
        })
    }

    /// Park keys, one per side, derived from this allocation's address
    /// (unique for the channel's lifetime, which is as long as anyone can
    /// be parked on it).
    fn read_key(&self) -> usize {
        self as *const Shared as usize
    }

    fn write_key(&self) -> usize {
        self as *const Shared as usize + 8
    }

    /// Wakes every task parked waiting for this channel to become readable.
    fn wake_readers(&self) {
        self.exec.unpark_all(self.read_key());
    }

    /// Wakes every task parked waiting for this channel to become writable.
    fn wake_writers(&self) {
        self.exec.unpark_all(self.write_key());
    }

    /// The blocking seam: parks the current task while `pred` holds (it is
    /// evaluated under the state lock). Maintains the side's waiter count;
    /// timed-out waits re-run the monitor's detection tick. Returns an
    /// error only when the executor refuses to block this context
    /// (cross-executor use).
    fn park_while(
        &self,
        side: BlockKind,
        timeout: Option<std::time::Duration>,
        pred: impl Fn(&BufState) -> bool,
    ) -> Result<()> {
        let key = match side {
            BlockKind::Read => self.read_key(),
            BlockKind::Write => self.write_key(),
        };
        let mut st = self.state.lock();
        match side {
            BlockKind::Read => st.read_waiters += 1,
            BlockKind::Write => st.write_waiters += 1,
        }
        let mut res = Ok(());
        loop {
            if !pred(&st) {
                break;
            }
            // The token is read under the state lock with the predicate
            // still true: any wake that happens after we release the lock
            // bumps the generation, and `park` returns immediately on a
            // stale token — no lost wakeups, no wait-loop in the executor.
            let token = self.exec.park_token(key);
            drop(st);
            match self.exec.park(key, token, timeout) {
                Ok(timed_out) => {
                    if timed_out {
                        if let Some(m) = &self.monitor {
                            m.tick();
                        }
                    }
                }
                Err(e) => {
                    st = self.state.lock();
                    res = Err(e);
                    break;
                }
            }
            st = self.state.lock();
        }
        match side {
            BlockKind::Read => st.read_waiters -= 1,
            BlockKind::Write => st.write_waiters -= 1,
        }
        res
    }
}

impl Drop for Shared {
    fn drop(&mut self) {
        // Preserve this channel's final counters in the monitor's report.
        if let Some(m) = &self.monitor {
            let st = self.state.get_mut();
            m.channel_retired(
                self.id,
                ChannelIoStats {
                    bytes_written: st.bytes_written,
                    write_blocks: st.write_blocks,
                    read_blocks: st.read_blocks,
                    peak_occupancy: st.peak_occupancy,
                    capacity: st.buf.capacity(),
                },
            );
        }
    }
}

impl MonitoredChannel for Shared {
    fn capacity(&self) -> usize {
        self.state.lock().buf.capacity()
    }

    fn is_full(&self) -> bool {
        self.state.lock().buf.is_full()
    }

    fn buffered(&self) -> usize {
        self.state.lock().buf.len()
    }

    fn is_write_closed(&self) -> bool {
        self.state.lock().write_closed
    }

    fn is_read_closed(&self) -> bool {
        self.state.lock().read_closed
    }

    fn grow_if_full(&self, max: Option<usize>) -> Option<(usize, usize)> {
        let mut st = self.state.lock();
        if !st.buf.is_full() {
            return None;
        }
        let old = st.buf.capacity();
        let new = old.saturating_mul(2).min(max.unwrap_or(usize::MAX));
        if new <= old {
            return None;
        }
        st.buf.grow(new);
        let wake = st.write_waiters > 0;
        drop(st);
        if wake {
            self.wake_writers();
        }
        Some((old, new))
    }

    fn ensure_capacity(&self, min: usize) -> bool {
        let mut st = self.state.lock();
        let old = st.buf.capacity();
        if old >= min {
            return false;
        }
        st.buf.grow(min);
        let wake = st.write_waiters > 0;
        drop(st);
        if wake {
            self.wake_writers();
        }
        true
    }

    fn poison(&self) {
        let mut st = self.state.lock();
        st.poisoned = true;
        // Wake only the sides that actually have parked tasks: poisoning
        // an idle channel (the common case when a whole network aborts)
        // costs two flag reads instead of two broadcast wakeups.
        let (wake_readers, wake_writers) = (st.read_waiters > 0, st.write_waiters > 0);
        drop(st);
        if wake_readers {
            self.wake_readers();
        }
        if wake_writers {
            self.wake_writers();
        }
    }

    fn io_stats(&self) -> ChannelIoStats {
        let st = self.state.lock();
        ChannelIoStats {
            bytes_written: st.bytes_written,
            write_blocks: st.write_blocks,
            read_blocks: st.read_blocks,
            peak_occupancy: st.peak_occupancy,
            capacity: st.buf.capacity(),
        }
    }
}

/// The write end of a local channel.
struct LocalSink {
    shared: Arc<Shared>,
    closed: bool,
}

impl LocalSink {
    /// Blocks until the buffer has free space, the reader closes, or the
    /// network is poisoned. Returns with the state lock *not* held.
    fn block_until_writable(&self) -> Result<()> {
        let sh = &self.shared;
        loop {
            let mut st = sh.state.lock();
            if st.poisoned {
                return Err(Error::Deadlocked);
            }
            if st.read_closed {
                return Err(Error::WriteClosed);
            }
            if !st.buf.is_full() {
                return Ok(());
            }
            st.write_blocks += 1;
            drop(st);
            let pred =
                |st: &BufState| st.buf.is_full() && !st.read_closed && !st.poisoned;
            match &sh.monitor {
                Some(m) => {
                    // Register with the monitor *before* re-checking the
                    // predicate inside `park_while`: if our registration
                    // completes an all-blocked picture and detection grows
                    // this channel, the re-check sees the new capacity.
                    let guard = BlockGuard::enter(m, BlockKind::Write, sh.id)?;
                    // The timeout is the monitor's detection fallback; the
                    // clamp keeps a zero tick from busy-spinning (executors
                    // that cannot honor timeouts tick via idle hooks
                    // instead).
                    let tick = m.timing().tick.max(std::time::Duration::from_millis(1));
                    sh.park_while(BlockKind::Write, Some(tick), pred)?;
                    drop(guard);
                }
                None => sh.park_while(BlockKind::Write, None, pred)?,
            }
        }
    }
}

impl Sink for LocalSink {
    fn write_all(&mut self, mut buf: &[u8]) -> Result<()> {
        let sh = self.shared.clone();
        // Preemption point: under sim every channel operation is a place
        // the schedule may switch tasks (a no-op on other executors).
        sh.exec.yield_point();
        // An empty write still surfaces a closed/poisoned channel promptly.
        if buf.is_empty() {
            let st = sh.state.lock();
            if st.poisoned {
                return Err(Error::Deadlocked);
            }
            if st.read_closed {
                return Err(Error::WriteClosed);
            }
            return Ok(());
        }
        while !buf.is_empty() {
            self.block_until_writable()?;
            let mut st = sh.state.lock();
            if st.poisoned {
                return Err(Error::Deadlocked);
            }
            if st.read_closed {
                return Err(Error::WriteClosed);
            }
            let n = st.buf.push(buf);
            if let Some((rec, slot)) = &sh.recorder {
                rec.record(*slot, &buf[..n]);
            }
            buf = &buf[n..];
            st.bytes_written += n as u64;
            st.peak_occupancy = st.peak_occupancy.max(st.buf.len());
            let wake = n > 0 && st.read_waiters > 0;
            drop(st);
            if wake {
                sh.wake_readers();
            }
        }
        Ok(())
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let mut st = self.shared.state.lock();
        st.write_closed = true;
        // Close only wakes the side that can act on it: blocked *readers*
        // must observe EOF. Writers on this channel are us — nothing to wake.
        let wake = st.read_waiters > 0;
        drop(st);
        if wake {
            self.shared.wake_readers();
        }
    }

    fn retire(mut self: Box<Self>, upstream: ChannelReader) -> Result<()> {
        self.closed = true;
        let mut st = self.shared.state.lock();
        if st.read_closed {
            // Downstream is gone; just propagate cancellation upstream.
            drop(st);
            drop(upstream);
            return Err(Error::WriteClosed);
        }
        st.continuation = Some(upstream);
        st.write_closed = true;
        let wake = st.read_waiters > 0;
        drop(st);
        if wake {
            self.shared.wake_readers();
        }
        Ok(())
    }
}

impl Drop for LocalSink {
    fn drop(&mut self) {
        self.close();
    }
}

/// The read end of a local channel.
struct LocalSource {
    shared: Arc<Shared>,
    closed: bool,
}

impl Source for LocalSource {
    fn read(&mut self, out: &mut [u8]) -> Result<SourceRead> {
        debug_assert!(!out.is_empty());
        let sh = self.shared.clone();
        // Preemption point (see the matching hook in `write_all`).
        sh.exec.yield_point();
        loop {
            let mut st = sh.state.lock();
            if st.poisoned {
                return Err(Error::Deadlocked);
            }
            if !st.buf.is_empty() {
                let n = st.buf.pop(out);
                let wake = st.write_waiters > 0;
                drop(st);
                if wake {
                    sh.wake_writers();
                }
                return Ok(SourceRead::Data(n));
            }
            if st.write_closed {
                return match st.continuation.take() {
                    Some(cont) => Ok(SourceRead::Splice(cont)),
                    None => Ok(SourceRead::End),
                };
            }
            st.read_blocks += 1;
            drop(st);
            // Deadlock-safe flush (see `crate::flush`): before parking, make
            // every buffered byte this thread has written visible. A token
            // stranded in a private buffer here could be exactly the one the
            // producer of *this* channel is waiting for, and the monitor
            // cannot see it either — without this hook, buffering would turn
            // live networks into falsely "true" deadlocks.
            flush::flush_before_block();
            let pred =
                |st: &BufState| st.buf.is_empty() && !st.write_closed && !st.poisoned;
            match &sh.monitor {
                Some(m) => {
                    let guard = BlockGuard::enter(m, BlockKind::Read, sh.id)?;
                    let tick = m.timing().tick.max(std::time::Duration::from_millis(1));
                    sh.park_while(BlockKind::Read, Some(tick), pred)?;
                    drop(guard);
                }
                None => sh.park_while(BlockKind::Read, None, pred)?,
            }
        }
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let (cont, wake) = {
            let mut st = self.shared.state.lock();
            st.read_closed = true;
            (st.continuation.take(), st.write_waiters > 0)
        };
        if wake {
            self.shared.wake_writers();
        }
        // Dropping a pending continuation closes it, cancelling upstream.
        drop(cont);
        // The channel stays registered with the monitor until the Shared
        // itself drops: a writer can still be parked here with its
        // `WriteClosed` wake in flight, and the monitor must be able to see
        // `read_closed` to veto growing some *other* channel during the
        // termination cascade.
    }
}

impl Drop for LocalSource {
    fn drop(&mut self) {
        self.close();
    }
}

// ---------------------------------------------------------------------------
// Buffered sink (batching fast path)
// ---------------------------------------------------------------------------

/// Default size of the private write buffer installed by
/// [`ChannelWriter::ensure_buffered`] and the typed streams — the
/// `BufferedOutputStream` default Java gave the paper's implementation for
/// free.
pub const DEFAULT_STREAM_BUFFER: usize = 4 * 1024;

/// Replays a stashed error for re-delivery on a later call. `io::Error` is
/// not `Clone`, so transport errors are reconstructed from kind + message.
fn replay(e: &Error) -> Error {
    match e {
        Error::Eof => Error::Eof,
        Error::WriteClosed => Error::WriteClosed,
        Error::Deadlocked => Error::Deadlocked,
        Error::Disconnected(s) => Error::Disconnected(s.clone()),
        Error::Io(io) => Error::Io(std::io::Error::new(io.kind(), io.to_string())),
        Error::Codec(s) => Error::Codec(s.clone()),
        Error::Graph(s) => Error::Graph(s.clone()),
        Error::Lint(ds) => Error::Lint(ds.clone()),
    }
}

struct BufCore {
    buf: Vec<u8>,
    cap: usize,
    inner: Option<Box<dyn Sink>>,
    /// Flush-registry token of the thread that last wrote (the owner).
    owner: u64,
    /// First error seen by a flush whose caller could not consume it (a
    /// read-path auto-flush). Sticky: surfaced on every later operation,
    /// reproducing §3.4's "exception on the next write".
    stashed: Option<Error>,
}

/// Shared state of a [`BufferedSink`], also reachable (weakly) from the
/// per-thread flush registries.
struct BufferedShared {
    state: Mutex<BufCore>,
}

impl BufferedShared {
    /// Drains the private buffer into the inner sink and flushes the inner
    /// sink (so remote transports push to the socket too). Caller holds the
    /// lock. Clears the buffer even on error — the bytes are lost exactly as
    /// they would be on an unbuffered failed write to a closed channel.
    fn flush_locked(st: &mut BufCore) -> Result<()> {
        if let Some(e) = &st.stashed {
            return Err(replay(e));
        }
        let Some(inner) = st.inner.as_mut() else {
            return if st.buf.is_empty() {
                Ok(())
            } else {
                Err(Error::WriteClosed)
            };
        };
        if st.buf.is_empty() {
            return Ok(());
        }
        let res = inner.write_all(&st.buf).and_then(|()| inner.flush());
        st.buf.clear();
        if let Err(e) = res {
            st.stashed = Some(replay(&e));
            return Err(e);
        }
        Ok(())
    }
}

impl Flushable for BufferedShared {
    fn flush_owned(&self, owner: u64) -> Result<()> {
        // try_lock, not lock: a sink busy on another thread is by definition
        // not ours to flush (its registry entry here is stale), and blocking
        // on it from a read path could deadlock two flushing threads.
        let Some(mut st) = self.state.try_lock() else {
            return Ok(());
        };
        if st.owner != owner || st.buf.is_empty() {
            return Ok(());
        }
        // On error the stash has recorded it for the owner's next write;
        // read-path callers swallow the return value while
        // `ProcessCtx::flush_sinks` propagates it.
        BufferedShared::flush_locked(&mut st)
    }
}

/// A [`Sink`] adapter that batches small writes into one inner transfer per
/// [`DEFAULT_STREAM_BUFFER`]-sized chunk. Installed by
/// [`ChannelWriter::ensure_buffered`]; typed tokens then cost a `Vec` append
/// instead of a channel mutex round-trip each.
///
/// Deadlock safety: the sink registers with the owning thread's flush
/// registry (re-registering lazily when written from a new thread, since
/// processes are built on the main thread and run on their own), and every
/// blocking read path calls [`flush::flush_before_block`] so buffered bytes
/// are never invisible to a blocked consumer or to the deadlock monitor.
struct BufferedSink {
    shared: Arc<BufferedShared>,
    /// Task token this sink last registered under (0 = never).
    registered_for: u64,
}

impl BufferedSink {
    fn new(inner: Box<dyn Sink>, capacity: usize) -> Self {
        BufferedSink {
            shared: Arc::new(BufferedShared {
                state: Mutex::new(BufCore {
                    buf: Vec::with_capacity(capacity),
                    cap: capacity.max(1),
                    inner: Some(inner),
                    owner: 0,
                    stashed: None,
                }),
            }),
            registered_for: 0,
        }
    }

    /// Registers with the calling task's flush registry and takes
    /// ownership, once per task the sink is written from.
    fn adopt(&mut self) -> u64 {
        let tok = flush::task_token();
        if self.registered_for != tok {
            self.registered_for = tok;
            flush::register(Arc::downgrade(&self.shared) as std::sync::Weak<dyn Flushable>);
        }
        tok
    }
}

impl Sink for BufferedSink {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        let tok = self.adopt();
        let mut st = self.shared.state.lock();
        if let Some(e) = &st.stashed {
            return Err(replay(e));
        }
        st.owner = tok;
        if st.buf.len() + buf.len() <= st.cap {
            st.buf.extend_from_slice(buf);
            return Ok(());
        }
        BufferedShared::flush_locked(&mut st)?;
        if buf.len() >= st.cap {
            // Oversized writes bypass the buffer: one inner transfer, no copy.
            let inner = st.inner.as_mut().expect("flush_locked verified inner");
            let res = inner.write_all(buf);
            if let Err(e) = res {
                st.stashed = Some(replay(&e));
                return Err(e);
            }
            Ok(())
        } else {
            st.buf.extend_from_slice(buf);
            Ok(())
        }
    }

    fn flush(&mut self) -> Result<()> {
        let tok = self.adopt();
        let mut st = self.shared.state.lock();
        st.owner = tok;
        BufferedShared::flush_locked(&mut st)
    }

    fn close(&mut self) {
        let mut st = self.shared.state.lock();
        let _ = BufferedShared::flush_locked(&mut st);
        if let Some(mut inner) = st.inner.take() {
            inner.close();
        }
    }

    fn retire(self: Box<Self>, upstream: ChannelReader) -> Result<()> {
        let mut st = self.shared.state.lock();
        BufferedShared::flush_locked(&mut st)?;
        match st.inner.take() {
            Some(inner) => inner.retire(upstream),
            None => {
                drop(upstream);
                Err(Error::WriteClosed)
            }
        }
    }
}

impl Drop for BufferedSink {
    fn drop(&mut self) {
        // A dropped-but-unclosed sink must still publish its buffer before
        // the inner sink's own drop closes the stream.
        self.close();
    }
}

/// An in-memory source holding bytes pushed back by a buffered reader
/// ([`ChannelReader::unread`]). Serves its bytes, then ends.
struct MemSource {
    data: Vec<u8>,
    pos: usize,
}

impl Source for MemSource {
    fn read(&mut self, buf: &mut [u8]) -> Result<SourceRead> {
        if self.pos == self.data.len() {
            return Ok(SourceRead::End);
        }
        let n = buf.len().min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(SourceRead::Data(n))
    }

    fn close(&mut self) {
        self.pos = self.data.len();
    }
}

// ---------------------------------------------------------------------------
// Public endpoints
// ---------------------------------------------------------------------------

/// The write end of a channel. Dropping it closes the stream gracefully
/// (the reader drains buffered data, then sees EOF) — exactly the `onStop`
/// behaviour of the paper's `IterativeProcess` (§3.2, §3.4).
pub struct ChannelWriter {
    sink: Option<Box<dyn Sink>>,
    /// True when `sink` is a [`BufferedSink`]; prevents double-wrapping.
    buffered: bool,
    /// Back-link into the owning network's topology registry, when this
    /// endpoint was created through a [`crate::Network`]. Pure metadata for
    /// the lint pass; never affects data flow.
    topo: Option<crate::topology::EndpointTopo>,
}

impl ChannelWriter {
    /// Wraps an arbitrary transport sink.
    pub fn from_sink(sink: Box<dyn Sink>) -> Self {
        ChannelWriter {
            sink: Some(sink),
            buffered: false,
            topo: None,
        }
    }

    /// Declares that this endpoint is owned by the process identified by
    /// `tag`. Called by the stdlib process constructors; custom processes
    /// may do the same (see [`crate::Process::lint_tag`]). Metadata only.
    pub fn attach(&self, tag: &crate::topology::ProcessTag) {
        tag.note_attachment();
        if let Some(t) = &self.topo {
            t.attach(tag);
        }
    }

    /// Declares that this endpoint is intentionally driven from outside the
    /// network (e.g. a main thread feeding the graph), exempting it from the
    /// L001 dangling-endpoint lint.
    pub fn declare_external(&self) {
        if let Some(t) = &self.topo {
            t.mark(crate::topology::SideState::External);
        }
    }

    /// Declares the element type this endpoint produces, for the L002
    /// typed-stream contract lint. `size` is the encoded size in bytes.
    pub fn declare_item<T>(&self, size: usize) {
        if let Some(t) = &self.topo {
            t.declare_item(std::any::type_name::<T>(), size);
        }
    }

    /// Declares the stream framing installed over this endpoint (typed data
    /// stream vs. length-prefixed object stream), for the L002 lint.
    pub fn declare_framing(&self, framing: crate::topology::StreamFraming) {
        if let Some(t) = &self.topo {
            t.declare_framing(framing);
        }
    }

    /// Declares a fixed SDF rate (tokens written per firing) for the L005
    /// balance-equation lint.
    pub fn declare_rate(&self, rate: u64) {
        if let Some(t) = &self.topo {
            t.declare_rate(rate);
        }
    }

    /// Installs a private write buffer of `capacity` bytes in front of the
    /// transport, so small writes batch into one transfer per chunk. No-op
    /// if the writer is already buffered (wrapping a `DataWriter`'s inner
    /// writer again must not stack buffers) or if `capacity` is zero.
    ///
    /// Buffered bytes become visible on `flush`/`close`/drop, when the
    /// buffer fills, and — crucially for deadlock safety — automatically
    /// before any blocking read performed by the owning thread (see
    /// [`crate::flush`]).
    pub fn ensure_buffered(&mut self, capacity: usize) {
        if self.buffered || capacity == 0 {
            return;
        }
        if let Some(inner) = self.sink.take() {
            self.sink = Some(Box::new(BufferedSink::new(inner, capacity)));
            self.buffered = true;
        }
    }

    /// True when a private write buffer is installed.
    pub fn is_buffered(&self) -> bool {
        self.buffered
    }

    fn sink(&mut self) -> &mut dyn Sink {
        self.sink
            .as_deref_mut()
            .expect("write on closed ChannelWriter")
    }

    /// Writes all bytes, blocking while the channel is full.
    pub fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.sink().write_all(buf)
    }

    /// Flushes buffered bytes toward the reader.
    pub fn flush(&mut self) -> Result<()> {
        self.sink().flush()
    }

    /// Gracefully closes the stream. Idempotent; also performed on drop.
    pub fn close(&mut self) {
        if let Some(mut s) = self.sink.take() {
            s.close();
            if let Some(t) = &self.topo {
                t.mark(crate::topology::SideState::Closed);
            }
        }
    }

    /// Removes the owning process from the graph (Figures 9/10): ends this
    /// stream but splices `upstream` after the buffered data, so the
    /// downstream reader continues without losing or repeating a byte.
    pub fn retire(mut self, upstream: ChannelReader) -> Result<()> {
        match self.sink.take() {
            Some(s) => {
                // The downstream reader now continues from `upstream`'s
                // bytes: both this write side and the consumed upstream read
                // side survive as a splice, not a dangle.
                if let Some(t) = &self.topo {
                    t.mark(crate::topology::SideState::Spliced);
                }
                if let Some(t) = &upstream.topo {
                    t.mark(crate::topology::SideState::Spliced);
                }
                s.retire(upstream)
            }
            None => Err(Error::WriteClosed),
        }
    }

    /// Replaces the underlying transport, returning the previous one.
    /// Used when a channel endpoint migrates between servers (§4.2). The
    /// replacement is assumed unbuffered; call [`ensure_buffered`] again if
    /// batching is wanted on the new transport. (Dropping the returned sink
    /// flushes and closes it.)
    ///
    /// [`ensure_buffered`]: ChannelWriter::ensure_buffered
    pub fn replace_sink(&mut self, sink: Box<dyn Sink>) -> Option<Box<dyn Sink>> {
        self.buffered = false;
        self.sink.replace(sink)
    }
}

impl Drop for ChannelWriter {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::io::Write for ChannelWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.write_all(buf).map_err(std::io::Error::from)?;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        ChannelWriter::flush(self).map_err(std::io::Error::from)
    }
}

impl std::fmt::Debug for ChannelWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ChannelWriter({})",
            if self.sink.is_some() {
                "open"
            } else {
                "closed"
            }
        )
    }
}

/// The read end of a channel: a *sequence* of byte sources, advanced on EOF
/// and extended by splicing (the `SequenceInputStream` of §3.1/§3.3).
/// Dropping it closes the stream: writers fail on their next write.
pub struct ChannelReader {
    sources: VecDeque<Box<dyn Source>>,
    /// Back-link into the owning network's topology registry, when this
    /// endpoint was created through a [`crate::Network`]. Pure metadata for
    /// the lint pass; never affects data flow.
    topo: Option<crate::topology::EndpointTopo>,
}

impl ChannelReader {
    /// Wraps a single transport source.
    pub fn from_source(source: Box<dyn Source>) -> Self {
        let mut sources = VecDeque::with_capacity(1);
        sources.push_back(source);
        ChannelReader {
            sources,
            topo: None,
        }
    }

    /// An already-exhausted reader (EOF immediately).
    pub fn empty() -> Self {
        ChannelReader {
            sources: VecDeque::new(),
            topo: None,
        }
    }

    /// Declares that this endpoint is owned by the process identified by
    /// `tag`. Called by the stdlib process constructors; custom processes
    /// may do the same (see [`crate::Process::lint_tag`]). Metadata only.
    pub fn attach(&self, tag: &crate::topology::ProcessTag) {
        tag.note_attachment();
        if let Some(t) = &self.topo {
            t.attach(tag);
        }
    }

    /// Declares that this endpoint is intentionally driven from outside the
    /// network (e.g. a main thread draining results), exempting it from the
    /// L001 dangling-endpoint lint.
    pub fn declare_external(&self) {
        if let Some(t) = &self.topo {
            t.mark(crate::topology::SideState::External);
        }
    }

    /// Declares the element type this endpoint expects, for the L002
    /// typed-stream contract lint. `size` is the encoded size in bytes.
    pub fn declare_item<T>(&self, size: usize) {
        if let Some(t) = &self.topo {
            t.declare_item(std::any::type_name::<T>(), size);
        }
    }

    /// Declares the stream framing installed over this endpoint (typed data
    /// stream vs. length-prefixed object stream), for the L002 lint.
    pub fn declare_framing(&self, framing: crate::topology::StreamFraming) {
        if let Some(t) = &self.topo {
            t.declare_framing(framing);
        }
    }

    /// Declares a fixed SDF rate (tokens read per firing) for the L005
    /// balance-equation lint.
    pub fn declare_rate(&self, rate: u64) {
        if let Some(t) = &self.topo {
            t.declare_rate(rate);
        }
    }

    /// Reads up to `buf.len()` bytes, blocking until at least one byte is
    /// available. Returns `Ok(0)` only at the true end of the stream.
    pub fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        loop {
            let Some(src) = self.sources.front_mut() else {
                return Ok(0);
            };
            match src.read(buf)? {
                SourceRead::Data(n) => {
                    debug_assert!(n > 0);
                    return Ok(n);
                }
                SourceRead::End => {
                    self.sources.pop_front();
                }
                SourceRead::Splice(cont) => {
                    self.sources.pop_front();
                    for s in cont.into_sources().into_iter().rev() {
                        self.sources.push_front(s);
                    }
                }
            }
        }
    }

    /// Reads exactly `buf.len()` bytes or fails with [`Error::Eof`].
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            let n = self.read(&mut buf[filled..])?;
            if n == 0 {
                return Err(Error::Eof);
            }
            filled += n;
        }
        Ok(())
    }

    /// Appends another reader's sources after this one's: after this reader
    /// reaches the end of its current data, it continues with `tail`.
    pub fn append(&mut self, tail: ChannelReader) {
        if let Some(t) = &tail.topo {
            t.mark(crate::topology::SideState::Spliced);
        }
        self.sources.extend(tail.into_sources());
    }

    /// Pushes bytes back to the *front* of the stream: the next read returns
    /// them before anything else. Used by buffered readers
    /// ([`crate::DataReader`]) to hand unconsumed read-ahead back when they
    /// release the underlying reader, so wrap/unwrap round-trips (the
    /// sieve's per-step re-wrapping, §3.3) never lose a byte.
    pub fn unread(&mut self, bytes: Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        self.sources
            .push_front(Box::new(MemSource { data: bytes, pos: 0 }));
    }

    /// Closes the stream; pending and future writes upstream fail.
    /// Idempotent; also performed on drop.
    pub fn close(&mut self) {
        for mut s in self.sources.drain(..) {
            s.close();
        }
        if let Some(t) = &self.topo {
            t.mark(crate::topology::SideState::Closed);
        }
    }

    fn into_sources(mut self) -> VecDeque<Box<dyn Source>> {
        std::mem::take(&mut self.sources)
    }
}

impl Drop for ChannelReader {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::io::Read for ChannelReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        ChannelReader::read(self, buf).map_err(std::io::Error::from)
    }
}

impl std::fmt::Debug for ChannelReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChannelReader({} sources)", self.sources.len())
    }
}

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

/// Creates an unmonitored local channel with [`DEFAULT_CAPACITY`].
pub fn channel() -> (ChannelWriter, ChannelReader) {
    channel_with(DEFAULT_CAPACITY, None)
}

/// Creates an unmonitored local channel with the given capacity.
pub fn channel_with_capacity(capacity: usize) -> (ChannelWriter, ChannelReader) {
    channel_with(capacity, None)
}

/// Creates a local channel, optionally registered with a deadlock monitor.
/// [`crate::Network::channel`] is the usual entry point.
pub fn channel_with(
    capacity: usize,
    monitor: Option<Arc<Monitor>>,
) -> (ChannelWriter, ChannelReader) {
    let exec = crate::exec::default_exec().clone() as Arc<dyn Exec>;
    channel_with_parts(capacity, monitor, exec, None, None)
}

/// Full-control constructor used by [`crate::Network`]: monitor plus the
/// network's executor, the history recorder of deterministic mode, and the
/// topology registry feeding the lint pass.
pub(crate) fn channel_with_parts(
    capacity: usize,
    monitor: Option<Arc<Monitor>>,
    exec: Arc<dyn Exec>,
    recorder: Option<Arc<HistoryRecorder>>,
    topo: Option<Arc<crate::topology::Topology>>,
) -> (ChannelWriter, ChannelReader) {
    let recorder = recorder.map(|r| {
        let slot = r.register();
        (r, slot)
    });
    let shared = Shared::new(capacity, monitor.clone(), exec, recorder);
    if let Some(m) = &monitor {
        let weak: Weak<dyn MonitoredChannel> = {
            let w: Weak<Shared> = Arc::downgrade(&shared);
            w
        };
        m.register_channel(shared.id, weak);
    }
    if let Some(t) = &topo {
        let weak: Weak<dyn MonitoredChannel> = {
            let w: Weak<Shared> = Arc::downgrade(&shared);
            w
        };
        t.register_channel(shared.id, weak);
    }
    let endpoint = |side| {
        topo.as_ref().map(|t| crate::topology::EndpointTopo {
            topo: t.clone(),
            channel: shared.id,
            side,
        })
    };
    let mut writer = ChannelWriter::from_sink(Box::new(LocalSink {
        shared: shared.clone(),
        closed: false,
    }));
    writer.topo = endpoint(crate::topology::Side::Write);
    let mut reader = ChannelReader::from_source(Box::new(LocalSource {
        shared: shared.clone(),
        closed: false,
    }));
    reader.topo = endpoint(crate::topology::Side::Read);
    (writer, reader)
}

/// A `Channel` object in the style of the paper's API (Figure 6): holds both
/// endpoints until the graph construction code claims them.
///
/// ```
/// use kpn_core::Channel;
/// let mut ch = Channel::new();
/// let mut w = ch.writer();
/// let mut r = ch.reader();
/// w.write_all(b"hi").unwrap();
/// drop(w);
/// let mut buf = [0u8; 2];
/// r.read_exact(&mut buf).unwrap();
/// assert_eq!(&buf, b"hi");
/// ```
#[derive(Debug)]
pub struct Channel {
    writer: Option<ChannelWriter>,
    reader: Option<ChannelReader>,
}

impl Channel {
    /// A channel with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A channel with an explicit capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        let (w, r) = channel_with_capacity(capacity);
        Channel {
            writer: Some(w),
            reader: Some(r),
        }
    }

    /// Claims the single write end (`getOutputStream`). Panics if already
    /// claimed — channels are single-producer (§1).
    pub fn writer(&mut self) -> ChannelWriter {
        self.writer.take().expect("channel writer already claimed")
    }

    /// Claims the single read end (`getInputStream`). Panics if already
    /// claimed — channels are single-consumer (§1).
    pub fn reader(&mut self) -> ChannelReader {
        self.reader.take().expect("channel reader already claimed")
    }
}

impl Default for Channel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn write_then_read() {
        let (mut w, mut r) = channel();
        w.write_all(b"abc").unwrap();
        let mut buf = [0u8; 3];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn read_blocks_until_data() {
        let (mut w, mut r) = channel();
        let h = thread::spawn(move || {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf).unwrap();
            buf
        });
        thread::sleep(Duration::from_millis(20));
        w.write_all(b"wait").unwrap();
        assert_eq!(&h.join().unwrap(), b"wait");
    }

    #[test]
    fn write_blocks_until_space() {
        let (mut w, mut r) = channel_with_capacity(4);
        w.write_all(b"1234").unwrap();
        let h = thread::spawn(move || {
            w.write_all(b"5678").unwrap(); // blocks until reader drains
            w
        });
        thread::sleep(Duration::from_millis(20));
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"12345678");
        drop(h.join().unwrap());
    }

    #[test]
    fn close_writer_gives_eof_after_drain() {
        // §3.4: closing an OutputStream does not interrupt the reader; EOF
        // arrives only after all buffered data is consumed.
        let (mut w, mut r) = channel();
        w.write_all(b"tail").unwrap();
        drop(w);
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"tail");
        assert_eq!(r.read(&mut buf).unwrap(), 0);
        assert!(matches!(r.read_exact(&mut buf), Err(Error::Eof)));
    }

    #[test]
    fn close_reader_fails_next_write() {
        // §3.4: closing an InputStream causes an exception on the next write.
        let (mut w, r) = channel();
        w.write_all(b"x").unwrap();
        drop(r);
        assert!(matches!(w.write_all(b"y"), Err(Error::WriteClosed)));
    }

    #[test]
    fn close_reader_wakes_blocked_writer() {
        let (mut w, r) = channel_with_capacity(2);
        w.write_all(b"ab").unwrap();
        let h = thread::spawn(move || w.write_all(b"cd"));
        thread::sleep(Duration::from_millis(20));
        drop(r);
        assert!(matches!(h.join().unwrap(), Err(Error::WriteClosed)));
    }

    #[test]
    fn close_writer_wakes_blocked_reader() {
        let (w, mut r) = channel();
        let h = thread::spawn(move || {
            let mut buf = [0u8; 1];
            r.read(&mut buf)
        });
        thread::sleep(Duration::from_millis(20));
        drop(w);
        assert_eq!(h.join().unwrap().unwrap(), 0);
    }

    #[test]
    fn large_transfer_through_small_buffer() {
        let (mut w, mut r) = channel_with_capacity(16);
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expect = data.clone();
        let h = thread::spawn(move || {
            w.write_all(&data).unwrap();
        });
        let mut got = vec![0u8; expect.len()];
        r.read_exact(&mut got).unwrap();
        h.join().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn retire_splices_upstream_after_buffered_data() {
        // Figure 10: process b (up -> down) removes itself. Downstream must
        // see b's buffered output first, then bytes coming from upstream.
        let (mut up_w, up_r) = channel();
        let (mut down_w, mut down_r) = channel();
        up_w.write_all(b"XY").unwrap();
        down_w.write_all(b"ab").unwrap();
        down_w.retire(up_r).unwrap();
        drop(up_w);
        let mut buf = [0u8; 4];
        down_r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abXY");
        assert_eq!(down_r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn retire_then_live_upstream_writes_flow_through() {
        let (mut up_w, up_r) = channel();
        let (down_w, mut down_r) = channel();
        down_w.retire(up_r).unwrap();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            up_w.write_all(b"later").unwrap();
        });
        let mut buf = [0u8; 5];
        down_r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"later");
        h.join().unwrap();
    }

    #[test]
    fn retire_to_closed_reader_cancels_upstream() {
        let (mut up_w, up_r) = channel();
        let (down_w, down_r) = channel();
        drop(down_r);
        assert!(down_w.retire(up_r).is_err());
        // Upstream got closed by the failed retire.
        assert!(matches!(up_w.write_all(b"x"), Err(Error::WriteClosed)));
    }

    #[test]
    fn closing_spliced_reader_cancels_chain() {
        // Reader close must propagate through a pending continuation.
        let (mut up_w, up_r) = channel();
        let (down_w, down_r) = channel();
        down_w.retire(up_r).unwrap();
        drop(down_r); // closes local source AND the pending continuation
        assert!(matches!(up_w.write_all(b"x"), Err(Error::WriteClosed)));
    }

    #[test]
    fn append_concatenates_streams() {
        let (mut w1, mut r1) = channel();
        let (mut w2, r2) = channel();
        w1.write_all(b"one").unwrap();
        w2.write_all(b"two").unwrap();
        drop(w1);
        drop(w2);
        r1.append(r2);
        let mut buf = [0u8; 6];
        r1.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"onetwo");
        assert_eq!(r1.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn chained_retires_preserve_all_bytes() {
        // a -> [b] -> [c] -> reader, where b and c both retire.
        let (mut aw, ar) = channel();
        let (mut bw, br) = channel();
        let (mut cw, mut cr) = channel();
        aw.write_all(b"A").unwrap();
        bw.write_all(b"B").unwrap();
        cw.write_all(b"C").unwrap();
        cw.retire(br).unwrap(); // c removes itself: cr continues from b
        bw.retire(ar).unwrap(); // b removes itself: continues from a
        drop(aw);
        let mut buf = [0u8; 3];
        cr.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"CBA");
        assert_eq!(cr.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn io_trait_interop() {
        use std::io::{Read, Write};
        let (mut w, mut r) = channel();
        assert_eq!(w.write(b"io").unwrap(), 2);
        Write::flush(&mut w).unwrap();
        drop(w);
        let mut s = String::new();
        r.read_to_string(&mut s).unwrap();
        assert_eq!(s, "io");
    }

    #[test]
    fn channel_struct_claims_panic_on_double_take() {
        let mut ch = Channel::new();
        let _w = ch.writer();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ch.writer()));
        assert!(result.is_err());
    }

    #[test]
    fn writer_close_idempotent() {
        let (mut w, _r) = channel();
        w.close();
        w.close();
    }

    #[test]
    fn reader_empty_is_immediate_eof() {
        let mut r = ChannelReader::empty();
        let mut buf = [0u8; 1];
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn many_small_writes_one_big_read() {
        let (mut w, mut r) = channel_with_capacity(8);
        let h = thread::spawn(move || {
            for i in 0..1000u32 {
                w.write_all(&[(i % 256) as u8]).unwrap();
            }
        });
        let mut got = vec![0u8; 1000];
        r.read_exact(&mut got).unwrap();
        h.join().unwrap();
        for (i, b) in got.iter().enumerate() {
            assert_eq!(*b, (i % 256) as u8);
        }
    }

    #[test]
    fn replace_sink_switches_transport_midstream() {
        // §4.2's transport swap at the writer: bytes written before and
        // after the swap land on the respective channels.
        let (w1, mut r1) = channel();
        let (w2, mut r2) = channel();
        let mut writer = w1;
        writer.write_all(b"first").unwrap();
        // Swap the underlying sink for channel 2's.
        let (sink2, _guard) = {
            // Extract channel 2's sink by deconstructing its writer.
            let mut w2 = w2;
            let sink = w2.replace_sink(Box::new(NullSink)).unwrap();
            (sink, w2)
        };
        let old = writer.replace_sink(sink2).unwrap();
        drop(old); // closes channel 1
        writer.write_all(b"second").unwrap();
        drop(writer);
        let mut buf1 = [0u8; 5];
        r1.read_exact(&mut buf1).unwrap();
        assert_eq!(&buf1, b"first");
        assert_eq!(r1.read(&mut buf1).unwrap(), 0, "channel 1 closed");
        let mut buf2 = [0u8; 6];
        r2.read_exact(&mut buf2).unwrap();
        assert_eq!(&buf2, b"second");
    }

    struct NullSink;
    impl Sink for NullSink {
        fn write_all(&mut self, _buf: &[u8]) -> Result<()> {
            Err(Error::WriteClosed)
        }
        fn close(&mut self) {}
    }

    #[test]
    fn ensure_buffered_is_idempotent() {
        let (mut w, _r) = channel();
        assert!(!w.is_buffered());
        w.ensure_buffered(64);
        assert!(w.is_buffered());
        w.ensure_buffered(1024); // must not stack a second buffer
        assert!(w.is_buffered());
        w.ensure_buffered(0);
        assert!(w.is_buffered());
    }

    #[test]
    fn buffered_writes_batch_until_flush() {
        let (mut w, mut r) = channel();
        w.ensure_buffered(64);
        w.write_all(b"abc").unwrap();
        w.write_all(b"def").unwrap();
        w.flush().unwrap();
        let mut buf = [0u8; 6];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn buffered_writes_flush_on_capacity_boundary() {
        let (mut w, mut r) = channel();
        w.ensure_buffered(4);
        w.write_all(b"ab").unwrap();
        w.write_all(b"cd").unwrap(); // exactly fills the buffer: still private
        w.write_all(b"e").unwrap(); // overflow forces the batch out
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcd");
        w.flush().unwrap();
        let mut one = [0u8; 1];
        r.read_exact(&mut one).unwrap();
        assert_eq!(&one, b"e");
    }

    #[test]
    fn buffered_oversized_write_bypasses_buffer() {
        let (mut w, mut r) = channel();
        w.ensure_buffered(4);
        w.write_all(b"x").unwrap();
        w.write_all(b"0123456789").unwrap(); // >= cap: flush then direct
        let mut buf = [0u8; 11];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"x0123456789");
    }

    #[test]
    fn buffered_drop_flushes_then_closes() {
        let (mut w, mut r) = channel();
        w.ensure_buffered(1024);
        w.write_all(b"tail").unwrap();
        drop(w);
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"tail");
        assert_eq!(r.read(&mut buf).unwrap(), 0, "EOF after drain");
    }

    #[test]
    fn buffered_flush_before_blocking_read_prevents_deadlock() {
        // A requires B's reply to its own (buffered, unflushed) request.
        // Without the flush-before-block hook both threads would park
        // forever on an unmonitored channel pair.
        let (mut aw, mut ar) = channel();
        let (mut bw, mut br) = channel();
        aw.ensure_buffered(1024);
        bw.ensure_buffered(1024);
        let a = thread::spawn(move || {
            aw.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            br.read_exact(&mut buf).unwrap(); // must auto-flush `aw`
            buf
        });
        let mut buf = [0u8; 4];
        ar.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        bw.write_all(b"pong").unwrap();
        bw.flush().unwrap();
        assert_eq!(&a.join().unwrap(), b"pong");
    }

    #[test]
    fn buffered_stashed_error_surfaces_on_next_write() {
        let (mut w, r) = channel();
        w.ensure_buffered(1024);
        w.write_all(b"doomed").unwrap();
        drop(r);
        assert!(matches!(w.flush(), Err(Error::WriteClosed)));
        // The failure is sticky, like §3.4's exception-on-next-write.
        assert!(matches!(w.write_all(b"more"), Err(Error::WriteClosed)));
    }

    #[test]
    fn buffered_retire_flushes_before_splicing() {
        let (mut up_w, up_r) = channel();
        let (mut down_w, mut down_r) = channel();
        down_w.ensure_buffered(1024);
        up_w.write_all(b"XY").unwrap();
        down_w.write_all(b"ab").unwrap(); // still private
        down_w.retire(up_r).unwrap(); // must flush, then splice
        drop(up_w);
        let mut buf = [0u8; 4];
        down_r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abXY");
        assert_eq!(down_r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn unread_bytes_come_back_first() {
        let (mut w, mut r) = channel();
        w.write_all(b"later").unwrap();
        r.unread(b"first".to_vec());
        let mut buf = [0u8; 10];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"firstlater");
    }

    #[test]
    fn unread_empty_is_noop() {
        let mut r = ChannelReader::empty();
        r.unread(Vec::new());
        let mut buf = [0u8; 1];
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn unread_interacts_with_append_in_stream_order() {
        // unread bytes sit in front of the current source; appended tails
        // come after everything — and a later unread still jumps the queue.
        let (mut w1, mut r1) = channel();
        let (mut w2, r2) = channel();
        w1.write_all(b"mid").unwrap();
        w2.write_all(b"tail").unwrap();
        drop(w1);
        drop(w2);
        r1.append(r2);
        r1.unread(b"front".to_vec());
        let mut buf = [0u8; 12];
        r1.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"frontmidtail");
        r1.unread(b"again".to_vec());
        let mut buf2 = [0u8; 5];
        r1.read_exact(&mut buf2).unwrap();
        assert_eq!(&buf2, b"again");
        assert_eq!(r1.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn unread_survives_splice_boundary() {
        // Push-back issued right at a retirement splice: the unread bytes
        // must come before the spliced upstream's data.
        let (mut up_w, up_r) = channel();
        let (down_w, mut down_r) = channel();
        up_w.write_all(b"up").unwrap();
        down_w.retire(up_r).unwrap();
        drop(up_w);
        down_r.unread(b"pushback".to_vec());
        let mut buf = [0u8; 10];
        down_r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pushbackup");
    }

    #[test]
    fn retire_mid_buffered_write_to_closed_reader_cancels_upstream() {
        // A buffered writer with private (unflushed) bytes retires after
        // its reader vanished: the retire must fail, not hang, and must
        // cancel the upstream it was handed.
        let (mut up_w, up_r) = channel();
        let (mut down_w, down_r) = channel();
        down_w.ensure_buffered(1024);
        down_w.write_all(b"private").unwrap(); // still in the private buffer
        drop(down_r);
        assert!(down_w.retire(up_r).is_err());
        assert!(matches!(up_w.write_all(b"x"), Err(Error::WriteClosed)));
    }

    #[test]
    fn retire_after_close_reports_write_closed() {
        let (mut w, _r) = channel();
        let (_uw, ur) = channel();
        w.close();
        assert!(matches!(w.retire(ur), Err(Error::WriteClosed)));
    }

    #[test]
    fn reader_close_is_idempotent_and_final() {
        let (mut w, mut r) = channel();
        w.write_all(b"x").unwrap();
        r.close();
        r.close(); // second close must be a no-op, not a panic
        let mut buf = [0u8; 1];
        assert_eq!(r.read(&mut buf).unwrap(), 0, "closed reader reads EOF");
        assert!(matches!(w.write_all(b"y"), Err(Error::WriteClosed)));
    }

    #[test]
    fn double_close_both_ends_any_order() {
        let (mut w, mut r) = channel();
        w.close();
        r.close();
        w.close();
        r.close();
        let (mut w2, mut r2) = channel();
        r2.close();
        w2.close();
        r2.close();
        w2.close();
    }

    #[test]
    fn buffered_sink_moved_across_threads_reflushes() {
        // A writer used on the main thread, then moved into a spawned
        // thread (the Network::spawn pattern): the flush hook must follow
        // the new owner.
        let (mut w, mut r) = channel();
        let (mut sig_w, mut sig_r) = channel();
        w.ensure_buffered(1024);
        w.write_all(b"main").unwrap();
        w.flush().unwrap();
        let h = thread::spawn(move || {
            w.write_all(b"spwn").unwrap();
            let mut one = [0u8; 1];
            sig_r.read_exact(&mut one).unwrap(); // auto-flush on new thread
            drop(w);
        });
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf[..4]).unwrap();
        assert_eq!(&buf[..4], b"main");
        sig_w.write_all(b"!").unwrap();
        // The spawned thread's bytes become visible via its auto-flush (or
        // its drop, if the signal raced ahead of the blocking read).
        r.read_exact(&mut buf[4..]).unwrap();
        assert_eq!(&buf[4..], b"spwn");
        h.join().unwrap();
    }
}
