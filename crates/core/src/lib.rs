//! # kpn-core — Kahn Process Networks with bounded scheduling
//!
//! The runtime layer of the *Distributed Process Networks* reproduction:
//!
//! * [`mod@channel`]s are FIFO **byte** streams with blocking reads (Kahn's
//!   determinacy condition, §2) and bounded, blocking writes (§3.5);
//! * [`process`]es run as tasks of a pluggable [`exec::Exec`]utor —
//!   one-per-thread (the paper's model), multiplexed onto a fixed worker
//!   pool, or serialized under the deterministic [`sim`] scheduler — built
//!   from the [`process::Iterative`] pattern (`onStart`/`step`/`onStop`,
//!   Figure 4);
//! * [`network::Network`] owns the graph, the executor, and the
//!   [`monitor::Monitor`] implementing Parks' bounded scheduling: artificial
//!   deadlocks are resolved by growing the smallest full channel, true
//!   deadlocks abort the network;
//! * [`stdlib`] provides every process used by the paper's example
//!   networks, and [`graphs`] assembles those examples (Fibonacci, the
//!   Sieve of Eratosthenes, Hamming numbers, Newton's method) ready to run.
//!
//! Determinacy in practice: the history of values on every channel depends
//! only on the graph, never on scheduling — the property tests in
//! `tests/determinacy.rs` (workspace root) exercise exactly this.
//!
//! ## Buffering and flush semantics
//!
//! The typed streams ([`stream::DataWriter`]/[`stream::DataReader`]) and the
//! codec layer batch small tokens through private buffers (default 4 KiB,
//! [`channel::DEFAULT_STREAM_BUFFER`]) — the `BufferedOutputStream` layer
//! Java's implementation got for free. Batching is invisible to program
//! semantics because of one rule, enforced by the runtime (see [`flush`]):
//! **all of a task's buffered sinks are flushed automatically before the
//! task parks on a blocking read**, and again at the end of every
//! [`process::Iterative::step`].
//!
//! Why this preserves the paper's guarantees:
//!
//! * **Kahn determinacy (§2).** Buffering delays writes but never reorders
//!   them within a channel, so each channel's history is a prefix of the
//!   unbuffered history at all times — and whenever a process blocks on a
//!   read (the only point where another process's progress depends on it),
//!   the auto-flush makes the histories equal. The fixed-point the network
//!   computes is unchanged.
//! * **Parks' deadlock detection (§3.5).** The monitor classifies a
//!   stalled network by inspecting channel occupancy: an artificial
//!   deadlock has some full channel to grow; a true deadlock has every
//!   process read-blocked on an *empty* channel. A token hiding in a
//!   private buffer while its owner read-blocks would make a live network
//!   look truly deadlocked. Flush-before-block makes private buffers empty
//!   whenever their owner is read-blocked, so the monitor's view — and its
//!   [`monitor::ChannelIoStats`] accounting — is exactly as accurate as in
//!   the unbuffered implementation. Write-blocks need no flush: a
//!   write-blocked process already has its data visible in the full
//!   channel, which is precisely what growth resolves.
//!
//! Explicit control remains available: [`stream::DataWriter::flush`],
//! [`process::ProcessCtx::flush_sinks`], and the `unbuffered` constructors
//! opt out per endpoint.

#![warn(missing_docs)]

mod buffer;
pub mod channel;
pub mod error;
pub mod exec;
pub mod flush;
pub mod graphs;
pub mod monitor;
pub mod network;
pub mod process;
pub mod sim;
pub mod stdlib;
pub mod stream;
pub mod topology;

pub use channel::{
    channel, channel_with_capacity, Channel, ChannelReader, ChannelWriter, Sink, Source,
    SourceRead, DEFAULT_CAPACITY, DEFAULT_STREAM_BUFFER,
};
pub use error::{Error, Result};
pub use exec::reactor::ReactorStats;
pub use exec::{
    blocking_region, Exec, ExecMode, NetBackend, PooledExec, SchedulerStats, ThreadExec,
    WorkerStats,
};
pub use monitor::{
    BlockKind, ChannelIoStats, DeadlockPolicy, ExternalBlockGuard, Monitor, MonitorSnapshot,
    MonitorStats, MonitorTiming,
};
pub use sim::{
    check_determinacy, compare_histories, explore_dfs, run_sim, ChannelKey, DfsReport,
    HistoryCheck, HistoryRecorder, SchedulePolicy, ScheduleTrace, SimRun, SimScheduler,
};
pub use network::{Network, NetworkConfig, NetworkHandle, NetworkReport};
pub use process::{CompositeProcess, FnProcess, Iterative, IterativeProcess, Process, ProcessCtx};
pub use stream::{DataReader, DataWriter};
pub use topology::{
    check_builtin, register_lint_pass, run_lint, ChannelShape, DiagCode, Diagnostic,
    EndpointShape, Fix, LintLevel, LintScope, ProcessShape, ProcessTag, SideState, StreamFraming,
    TopologySnapshot,
};
