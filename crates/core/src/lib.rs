//! # kpn-core — Kahn Process Networks with bounded scheduling
//!
//! The runtime layer of the *Distributed Process Networks* reproduction:
//!
//! * [`mod@channel`]s are FIFO **byte** streams with blocking reads (Kahn's
//!   determinacy condition, §2) and bounded, blocking writes (§3.5);
//! * [`process`]es run one-per-thread, built from the
//!   [`process::Iterative`] pattern (`onStart`/`step`/`onStop`, Figure 4);
//! * [`network::Network`] owns the graph, the threads, and the
//!   [`monitor::Monitor`] implementing Parks' bounded scheduling: artificial
//!   deadlocks are resolved by growing the smallest full channel, true
//!   deadlocks abort the network;
//! * [`stdlib`] provides every process used by the paper's example
//!   networks, and [`graphs`] assembles those examples (Fibonacci, the
//!   Sieve of Eratosthenes, Hamming numbers, Newton's method) ready to run.
//!
//! Determinacy in practice: the history of values on every channel depends
//! only on the graph, never on scheduling — the property tests in
//! `tests/determinacy.rs` (workspace root) exercise exactly this.

#![warn(missing_docs)]

mod buffer;
pub mod channel;
pub mod error;
pub mod graphs;
pub mod monitor;
pub mod network;
pub mod process;
pub mod stdlib;
pub mod stream;

pub use channel::{
    channel, channel_with_capacity, Channel, ChannelReader, ChannelWriter, Sink, Source,
    SourceRead, DEFAULT_CAPACITY,
};
pub use error::{Error, Result};
pub use monitor::{
    BlockKind, ChannelIoStats, DeadlockPolicy, ExternalBlockGuard, Monitor, MonitorSnapshot,
    MonitorStats,
};
pub use network::{Network, NetworkConfig, NetworkHandle, NetworkReport};
pub use process::{CompositeProcess, FnProcess, Iterative, IterativeProcess, Process, ProcessCtx};
pub use stream::{DataReader, DataWriter};
