//! The execution layer: one scheduling seam beneath every channel.
//!
//! The paper's runtime is one Java thread per KPN process (§3). PR 3 added a
//! deterministic simulation scheduler, which left the blocking paths in
//! `channel.rs` hand-interleaved between two worlds (`Option<SimScheduler>`
//! branches at every park site). This module extracts the blocking
//! discipline — the thing Kahn semantics actually live in — into a single
//! [`Exec`] trait with three implementations:
//!
//! * [`ThreadExec`] — the paper's shape: one OS thread per process, keyed
//!   condvar parking;
//! * `SimExec` (internal, built from a [`crate::sim::SimScheduler`]) — the
//!   PR-3 deterministic scheduler, now just another executor;
//! * [`PooledExec`] — M:N execution: many processes multiplexed onto a
//!   fixed worker pool, with blocked channel operations converted into
//!   parked stackful continuations so a 10 000-process graph runs on
//!   `available_parallelism()` workers.
//!
//! ## The park/unpark protocol
//!
//! Channels never touch condvars or schedulers directly. A blocking site
//! does, conceptually:
//!
//! ```text
//! lock state;
//! loop {
//!     if !must_wait { break }
//!     let token = exec.park_token(key);   // still under the state lock
//!     unlock state;
//!     exec.park(key, token, timeout)?;    // may return spuriously
//!     lock state;
//! }
//! ```
//!
//! and every wake site calls `exec.unpark_all(key)` *after* publishing the
//! state change. Lost wakeups are impossible because of a generation
//! protocol ("absent is stale"): `park_token` reads the key's current
//! generation while the caller still holds the lock that guards the wait
//! predicate; any `unpark_all` that runs after that point bumps the
//! generation, and `park` with a stale token returns immediately. A parked
//! task can therefore only sleep through a wakeup it had already observed
//! the effects of. Spurious returns are always allowed — callers re-check
//! their predicate in a loop.
//!
//! ## Task identity
//!
//! Monitors and the flush registry used to key their bookkeeping by OS
//! thread. Under a pooled executor one worker thread runs many tasks (and
//! one task may migrate between workers), so identity moves to a
//! [`TaskLocals`] record carried by the task itself and installed into a
//! thread-local by whichever worker is currently running it.

use crate::error::{Error, Result};
use crate::flush::Flushable;
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

/// Monotonic source of task tokens and park generations. Starting at 1
/// keeps 0 free as an always-stale sentinel.
static GLOBAL_COUNTER: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    GLOBAL_COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// Downgrade to an unsized `Weak<dyn Exec>` (coercion happens at the
/// return position).
fn weak_dyn<T: Exec>(arc: &Arc<T>) -> Weak<dyn Exec> {
    let w: Weak<T> = Arc::downgrade(arc);
    w
}

/// The scheduling seam every channel blocks through.
///
/// Implementations decide what a "task" is (OS thread, sim task, pooled
/// fiber) and how a blocked task sleeps; channels only ever express *what*
/// they are waiting for (a `key`) and *when* the wait became unnecessary
/// (`unpark_all`).
pub trait Exec: Send + Sync + 'static {
    /// Start a new task running `body`. The task inherits nothing from the
    /// spawning thread; its identity is fresh.
    fn spawn(&self, name: &str, body: Box<dyn FnOnce() + Send>);

    /// Read the current generation for `key`, creating the key's wait entry
    /// if needed. Must be called while holding the lock that guards the
    /// caller's wait predicate; the returned token is what makes the
    /// subsequent [`Exec::park`] immune to lost wakeups.
    fn park_token(&self, key: usize) -> u64;

    /// Block the current task until `unpark_all(key)` is called with a
    /// generation newer than `token`, the timeout elapses, or spuriously.
    ///
    /// Returns `Ok(true)` if the wait timed out, `Ok(false)` otherwise.
    /// Executors that serialize or pool tasks may ignore `timeout` (they
    /// drive periodic work through [`Exec::add_idle_hook`] instead).
    /// Returns an error if this executor cannot block the calling context
    /// (e.g. a foreign OS thread blocking on a simulation's channel).
    fn park(&self, key: usize, token: u64, timeout: Option<Duration>) -> Result<bool>;

    /// Wake every task parked on `key` and invalidate outstanding tokens
    /// for it. Callable from any thread.
    fn unpark_all(&self, key: usize);

    /// A voluntary scheduling point. No-op for preemptive executors; the
    /// simulation uses it to interleave at every channel operation.
    fn yield_point(&self);

    /// Register a hook run when the executor quiesces (every task parked).
    /// The monitor's deadlock tick rides on this for executors that do not
    /// honor park timeouts.
    fn add_idle_hook(&self, hook: Box<dyn Fn() + Send + Sync>);

    /// Release tasks held at a start barrier, if the executor has one.
    fn release(&self) {}

    /// Note that the current task is entering a region that blocks the
    /// underlying OS thread outside the park protocol (socket I/O). Pooled
    /// executors use this to keep the worker pool from starving.
    fn enter_blocking(&self) {}

    /// Exit a region entered with [`Exec::enter_blocking`].
    fn exit_blocking(&self) {}

    /// Ask the executor to wind down once all tasks finish. Idempotent;
    /// no-op for executors without retained resources.
    fn shutdown(&self) {}
}

// ---------------------------------------------------------------------------
// Task identity
// ---------------------------------------------------------------------------

/// Per-task identity and task-local state, carried by the task itself so it
/// survives migration between pooled workers.
pub(crate) struct TaskLocals {
    /// Unique token identifying this task to the monitor.
    pub(crate) token: u64,
    /// The task's (process) name; empty for foreign threads.
    pub(crate) name: String,
    /// True for KPN process tasks, false for foreign threads.
    pub(crate) is_process: bool,
    /// The executor running this task (for `blocking_region` and pooled
    /// self-identification). Weak to avoid an `Arc` cycle.
    pub(crate) exec: Weak<dyn Exec>,
    /// Buffered sinks owned by this task: flushed before every blocking
    /// read (see [`crate::flush`]).
    pub(crate) sinks: Mutex<Vec<Weak<dyn Flushable>>>,
}

impl TaskLocals {
    pub(crate) fn new(name: &str, is_process: bool, exec: Weak<dyn Exec>) -> Arc<Self> {
        Arc::new(TaskLocals {
            token: next_id(),
            name: name.to_string(),
            is_process,
            exec,
            sinks: Mutex::new(Vec::new()),
        })
    }
}

thread_local! {
    /// The task currently running on this thread. `None` until first use on
    /// foreign threads; set by executors on task entry (and on every fiber
    /// switch-in for pooled workers).
    static CURRENT: RefCell<Option<Arc<TaskLocals>>> = const { RefCell::new(None) };
}

/// Run `f` with the current task's locals, lazily installing foreign-thread
/// locals on threads no executor owns.
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<TaskLocals>) -> R) -> R {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        if cur.is_none() {
            let exec = weak_dyn(default_exec());
            *cur = Some(TaskLocals::new("", false, exec));
        }
        f(cur.as_ref().unwrap())
    })
}

/// Install `locals` as the current task on this thread, returning the
/// previous value (restore it when the task yields the thread).
pub(crate) fn set_current(locals: Option<Arc<TaskLocals>>) -> Option<Arc<TaskLocals>> {
    CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), locals))
}

/// A stable token identifying the current task (not the current OS thread):
/// the monitor keys its blocked-set by this.
pub(crate) fn task_token() -> u64 {
    with_current(|l| l.token)
}

/// True when the caller is a KPN process task (as opposed to a foreign
/// thread touching a channel from outside the network).
pub(crate) fn is_process_task() -> bool {
    with_current(|l| l.is_process)
}

/// The current task's process name, or `None` on foreign threads.
pub(crate) fn current_task_name() -> Option<String> {
    with_current(|l| {
        if l.is_process {
            Some(l.name.clone())
        } else {
            None
        }
    })
}

/// Install process-task locals on the current thread (test helper for code
/// that blocks on channels from hand-spawned threads).
#[cfg(test)]
pub(crate) fn install_process_locals(name: &str) {
    let exec = weak_dyn(default_exec());
    set_current(Some(TaskLocals::new(name, true, exec)));
}

/// Run `f`, telling the current task's executor that the region blocks the
/// OS thread outside the park protocol (socket reads, condvar waits on
/// foreign state). Pooled executors temporarily enlarge their worker pool
/// so fibers keep running; other executors run `f` directly.
pub fn blocking_region<T>(f: impl FnOnce() -> T) -> T {
    let exec = with_current(|l| l.exec.clone()).upgrade();
    struct Guard(Option<Arc<dyn Exec>>);
    impl Drop for Guard {
        fn drop(&mut self) {
            if let Some(e) = &self.0 {
                e.exit_blocking();
            }
        }
    }
    let guard = Guard(exec);
    if let Some(e) = &guard.0 {
        e.enter_blocking();
    }
    f()
}

// ---------------------------------------------------------------------------
// Keyed wait table (shared by ThreadExec and the pooled thread-waiter path)
// ---------------------------------------------------------------------------

const BUCKETS: usize = 16;

fn bucket_of(key: usize) -> usize {
    // Keys are addresses; the low bits below 16 are alignment noise.
    (key >> 4) & (BUCKETS - 1)
}

struct WaitEntry {
    gen: u64,
    waiters: usize,
}

struct WaitBucket {
    map: Mutex<HashMap<usize, WaitEntry>>,
    cv: Condvar,
}

impl Default for WaitBucket {
    fn default() -> Self {
        WaitBucket {
            map: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }
}

impl WaitBucket {
    fn token(&self, key: usize) -> u64 {
        let mut map = self.map.lock();
        map.entry(key)
            .or_insert_with(|| WaitEntry {
                gen: next_id(),
                waiters: 0,
            })
            .gen
    }

    /// Condvar wait honoring the generation protocol. Returns `timed_out`.
    fn wait(&self, key: usize, token: u64, timeout: Option<Duration>) -> bool {
        let mut map = self.map.lock();
        let stale = match map.get(&key) {
            // Absent means the entry was retired after a newer generation
            // was handed out and consumed: any token we hold is stale.
            None => true,
            Some(e) => e.gen != token,
        };
        if stale {
            return false; // spurious return; caller re-checks its predicate
        }
        map.get_mut(&key).unwrap().waiters += 1;
        let timed_out = match timeout {
            Some(d) => self.cv.wait_for(&mut map, d).timed_out(),
            None => {
                self.cv.wait(&mut map);
                false
            }
        };
        if let Some(e) = map.get_mut(&key) {
            e.waiters -= 1;
            if e.waiters == 0 {
                map.remove(&key);
            }
        }
        timed_out
    }

    fn wake(&self, key: usize) {
        let mut map = self.map.lock();
        if let Some(e) = map.get_mut(&key) {
            e.gen = next_id();
            if e.waiters > 0 {
                // Shared condvar per bucket: waiters on other keys may wake
                // spuriously, which the protocol permits.
                self.cv.notify_all();
            } else {
                map.remove(&key);
            }
        }
        // Absent entry: nobody holds a token that could still match (tokens
        // only exist between `park_token` and the end of `wait`, and both
        // keep the entry alive), so there is no one to wake.
    }
}

// ---------------------------------------------------------------------------
// ThreadExec: one OS thread per task
// ---------------------------------------------------------------------------

/// The paper's execution model: every spawned task is a dedicated OS
/// thread; parking is a keyed condvar wait.
pub struct ThreadExec {
    buckets: [WaitBucket; BUCKETS],
    self_ref: OnceLock<Weak<dyn Exec>>,
}

impl ThreadExec {
    /// Create a thread-per-process executor.
    pub fn new() -> Arc<Self> {
        let exec = Arc::new(ThreadExec {
            buckets: Default::default(),
            self_ref: OnceLock::new(),
        });
        let weak = weak_dyn(&exec);
        exec.self_ref.set(weak).ok();
        exec
    }
}

impl Exec for ThreadExec {
    fn spawn(&self, name: &str, body: Box<dyn FnOnce() + Send>) {
        let locals = TaskLocals::new(
            name,
            true,
            self.self_ref.get().expect("self_ref set in new()").clone(),
        );
        std::thread::Builder::new()
            .name(format!("kpn:{name}"))
            .spawn(move || {
                set_current(Some(locals));
                body();
            })
            .expect("spawn process thread");
    }

    fn park_token(&self, key: usize) -> u64 {
        self.buckets[bucket_of(key)].token(key)
    }

    fn park(&self, key: usize, token: u64, timeout: Option<Duration>) -> Result<bool> {
        Ok(self.buckets[bucket_of(key)].wait(key, token, timeout))
    }

    fn unpark_all(&self, key: usize) {
        self.buckets[bucket_of(key)].wake(key);
    }

    fn yield_point(&self) {}

    fn add_idle_hook(&self, _hook: Box<dyn Fn() + Send + Sync>) {
        // Thread mode has no quiescence observer; periodic work (the
        // monitor tick) rides on park timeouts instead.
    }
}

/// The process-wide default executor, used by channels created outside any
/// network (`kpn_core::channel()`).
pub(crate) fn default_exec() -> &'static Arc<ThreadExec> {
    static DEFAULT: OnceLock<Arc<ThreadExec>> = OnceLock::new();
    DEFAULT.get_or_init(ThreadExec::new)
}

// ---------------------------------------------------------------------------
// SimExec: the PR-3 deterministic scheduler as an executor
// ---------------------------------------------------------------------------

/// Adapter making [`crate::sim::SimScheduler`] an [`Exec`]. Tasks still run
/// on dedicated OS threads, but the scheduler serializes them: exactly one
/// is runnable at a time, and every park/yield is a recorded scheduling
/// decision, so a seed replays the exact interleaving.
pub(crate) struct SimExec {
    sched: Arc<crate::sim::SimScheduler>,
    self_ref: OnceLock<Weak<dyn Exec>>,
}

impl SimExec {
    pub(crate) fn new(sched: Arc<crate::sim::SimScheduler>) -> Arc<Self> {
        let exec = Arc::new(SimExec {
            sched,
            self_ref: OnceLock::new(),
        });
        let weak = weak_dyn(&exec);
        exec.self_ref.set(weak).ok();
        exec
    }
}

impl Exec for SimExec {
    fn spawn(&self, name: &str, body: Box<dyn FnOnce() + Send>) {
        // Register on the spawning thread so task ids follow program order
        // (the property that makes traces replayable across runs).
        let tid = self.sched.register_task(name);
        let sched = self.sched.clone();
        let locals = TaskLocals::new(
            name,
            true,
            self.self_ref.get().expect("self_ref set in new()").clone(),
        );
        std::thread::Builder::new()
            .name(format!("kpn:{name}"))
            .spawn(move || {
                set_current(Some(locals));
                sched.attach(tid);
                body();
                sched.finish_current();
            })
            .expect("spawn sim task thread");
    }

    fn park_token(&self, _key: usize) -> u64 {
        // The scheduler serializes execution: between reading this token
        // and calling `park` the current task *is* the running task, so no
        // scheduled task can slip a wakeup in. (Foreign threads cannot park
        // at all — see below.) A constant token is therefore sound.
        0
    }

    fn park(&self, key: usize, _token: u64, _timeout: Option<Duration>) -> Result<bool> {
        if self.sched.is_current() {
            self.sched.park(key);
            Ok(false)
        } else {
            // A foreign thread blocking on a simulation's channel would
            // dissolve determinism into wall-clock waiting (the old code
            // degraded to a clamped condvar spin here). Reject it loudly.
            Err(Error::Graph(
                "cross-executor channel use: blocking on a simulation network's channel \
                 from outside the simulation (read or write the channel from a process \
                 inside `run_sim`, or collect results after the run)"
                    .into(),
            ))
        }
    }

    fn unpark_all(&self, key: usize) {
        // Legal from any thread: readies parked tasks without running them.
        self.sched.unpark_all(key);
    }

    fn yield_point(&self) {
        if self.sched.is_current() {
            self.sched.yield_now();
        }
        // Foreign threads performing non-blocking operations are legal and
        // yield nothing to the schedule.
    }

    fn add_idle_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        self.sched.add_idle_hook(hook);
    }

    fn release(&self) {
        self.sched.release();
    }
}

// ---------------------------------------------------------------------------
// Stackful fibers (x86_64): the continuations behind PooledExec
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod fiber {
    //! Minimal stackful coroutines: a fiber is a heap stack plus a saved
    //! stack pointer. Switching saves the six SysV callee-saved registers
    //! on the outgoing stack and restores them from the incoming one; all
    //! caller-saved state is already spilled by the `extern "C"` call
    //! boundary. No dependencies, ~20 instructions.

    use super::TaskLocals;
    use std::cell::Cell;
    use std::sync::Arc;

    /// 256 KiB per fiber. Allocated with the global allocator, which mmaps
    /// chunks this size, so untouched pages cost address space, not RAM —
    /// 10 000 fibers commit far less than 2.5 GiB.
    const STACK_SIZE: usize = 256 * 1024;
    /// Sentinel at the lowest stack address, checked after every switch
    /// back to the worker; corruption means the fiber overflowed.
    const CANARY: u64 = 0xDEAD_F1BE_5AFE_C0DE;

    core::arch::global_asm!(
        ".text",
        ".balign 16",
        ".globl kpn_core_fiber_switch",
        ".hidden kpn_core_fiber_switch",
        // fn kpn_core_fiber_switch(save: *mut usize /*rdi*/, to: usize /*rsi*/)
        // Saves the current context into *save, resumes the context whose
        // stack pointer is `to`.
        "kpn_core_fiber_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        ".balign 16",
        ".globl kpn_core_fiber_start",
        ".hidden kpn_core_fiber_start",
        // First resume of a new fiber "returns" here (the address is
        // planted on the fresh stack). r15 carries the Fiber pointer.
        // rsp is 16-aligned at this point, so the call leaves rsp ≡ 8
        // (mod 16) at the callee's entry, as the SysV ABI requires.
        "kpn_core_fiber_start:",
        "mov rdi, r15",
        "call kpn_core_fiber_entry",
        "ud2",
    );

    extern "C" {
        pub(super) fn kpn_core_fiber_switch(save: *mut usize, to: usize);
        fn kpn_core_fiber_start();
    }

    struct FiberStack {
        base: *mut u8,
    }

    impl FiberStack {
        fn layout() -> std::alloc::Layout {
            std::alloc::Layout::from_size_align(STACK_SIZE, 16).unwrap()
        }

        fn new() -> FiberStack {
            let base = unsafe { std::alloc::alloc(Self::layout()) };
            assert!(!base.is_null(), "fiber stack allocation failed");
            unsafe { (base as *mut u64).write(CANARY) };
            FiberStack { base }
        }

        /// Highest usable address, 16-aligned.
        fn top(&self) -> usize {
            (self.base as usize + STACK_SIZE) & !15
        }
    }

    impl Drop for FiberStack {
        fn drop(&mut self) {
            unsafe { std::alloc::dealloc(self.base, Self::layout()) }
        }
    }

    /// A parked or runnable task: stack, saved stack pointer, identity.
    pub(super) struct Fiber {
        stack: FiberStack,
        /// Saved rsp while suspended; garbage while running.
        ctx: usize,
        pub(super) locals: Arc<TaskLocals>,
        entry: Option<Box<dyn FnOnce() + Send>>,
        pub(super) done: bool,
    }

    // The stack pointer is only dereferenced by the worker currently
    // running the fiber, and ownership of the Box hands off through
    // mutex-protected queues.
    unsafe impl Send for Fiber {}

    impl Fiber {
        pub(super) fn new(locals: Arc<TaskLocals>, entry: Box<dyn FnOnce() + Send>) -> Box<Fiber> {
            let stack = FiberStack::new();
            let top = stack.top();
            let mut f = Box::new(Fiber {
                stack,
                ctx: 0,
                locals,
                entry: Some(entry),
                done: false,
            });
            // Seed the stack so the first switch-in pops zeroed registers
            // (r15 = Fiber pointer) and "returns" into fiber_start.
            let ctx = top - 56;
            unsafe {
                let p = ctx as *mut usize;
                p.write(&mut *f as *mut Fiber as usize); // r15
                p.add(1).write(0); // r14
                p.add(2).write(0); // r13
                p.add(3).write(0); // r12
                p.add(4).write(0); // rbx
                p.add(5).write(0); // rbp
                p.add(6).write(kpn_core_fiber_start as *const () as usize); // return addr
            }
            f.ctx = ctx;
            f
        }

        /// Resume this fiber on the current worker thread. Returns when the
        /// fiber parks, yields, or finishes.
        pub(super) fn run(&mut self, worker_ctx: &mut usize) {
            ACTIVE_FIBER.with(|c| c.set(self as *mut Fiber));
            unsafe { kpn_core_fiber_switch(worker_ctx as *mut usize, self.ctx) };
            ACTIVE_FIBER.with(|c| c.set(std::ptr::null_mut()));
            let canary = unsafe { (self.stack.base as *const u64).read() };
            if canary != CANARY {
                eprintln!("kpn-core: fiber stack overflow detected (task '{}'); aborting", self.locals.name);
                std::process::abort();
            }
        }
    }

    thread_local! {
        /// Points at the running worker's context save slot; fibers switch
        /// back through it.
        static WORKER_CTX: Cell<*mut usize> = const { Cell::new(std::ptr::null_mut()) };
        /// The fiber currently running on this thread, if any.
        static ACTIVE_FIBER: Cell<*mut Fiber> = const { Cell::new(std::ptr::null_mut()) };
        /// Set by a parking fiber just before switching out; the worker
        /// completes the wait-table registration (the fiber must not be
        /// registered while its stack is still live).
        pub(super) static PARK_REQUEST: Cell<Option<(usize, u64)>> = const { Cell::new(None) };
    }

    /// True when the calling code is executing on a fiber.
    pub(super) fn on_fiber() -> bool {
        ACTIVE_FIBER.with(|c| !c.get().is_null())
    }

    /// Install the worker's save slot for the duration of the worker loop.
    pub(super) fn set_worker_ctx(slot: *mut usize) {
        WORKER_CTX.with(|c| c.set(slot));
    }

    /// Suspend the current fiber, returning control to its worker. The
    /// worker observes `PARK_REQUEST` (set by the caller) or treats the
    /// suspension as a yield.
    pub(super) fn switch_to_worker() {
        let f = ACTIVE_FIBER.with(|c| c.get());
        debug_assert!(!f.is_null(), "switch_to_worker outside a fiber");
        let slot = WORKER_CTX.with(|c| c.get());
        unsafe { kpn_core_fiber_switch(&mut (*f).ctx, *slot) };
    }

    /// Entry point for every fiber; `f` arrives in r15 via fiber_start.
    #[no_mangle]
    extern "C" fn kpn_core_fiber_entry(f: *mut Fiber) -> ! {
        {
            let fiber = unsafe { &mut *f };
            let body = fiber.entry.take().expect("fiber entry body");
            // Never unwind into the assembly trampoline. Process panics are
            // already caught and recorded by the network's spawn wrapper;
            // this is the backstop.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
            fiber.done = true;
        }
        switch_to_worker();
        unreachable!("finished fiber resumed")
    }
}

#[cfg(any(not(target_arch = "x86_64"), miri))]
mod fiber {
    //! Fallback for targets without the context-switch assembly: the
    //! pooled executor degrades to thread-per-task (see
    //! [`super::PooledExec::spawn`]), so no fiber is ever constructed.

    use super::TaskLocals;
    use std::cell::Cell;
    use std::sync::Arc;

    pub(super) struct Fiber {
        pub(super) locals: Arc<TaskLocals>,
        pub(super) done: bool,
    }

    impl Fiber {
        pub(super) fn run(&mut self, _worker_ctx: &mut usize) {
            unreachable!("fibers are not constructed on this target")
        }
    }

    thread_local! {
        pub(super) static PARK_REQUEST: Cell<Option<(usize, u64)>> = const { Cell::new(None) };
    }

    pub(super) fn on_fiber() -> bool {
        false
    }

    pub(super) fn set_worker_ctx(_slot: *mut usize) {}

    pub(super) fn switch_to_worker() {
        unreachable!("fibers are not constructed on this target")
    }
}

// ---------------------------------------------------------------------------
// PooledExec: many tasks, fixed worker pool
// ---------------------------------------------------------------------------

struct PoolEntry {
    gen: u64,
    fibers: Vec<Box<fiber::Fiber>>,
    thread_waiters: usize,
}

struct PoolBucket {
    map: Mutex<HashMap<usize, PoolEntry>>,
    cv: Condvar,
}

impl Default for PoolBucket {
    fn default() -> Self {
        PoolBucket {
            map: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }
}

struct PoolState {
    queue: std::collections::VecDeque<Box<fiber::Fiber>>,
    /// Tasks spawned and not yet finished (runnable, running, or parked).
    alive: usize,
    /// Workers currently running a fiber.
    busy: usize,
    /// Worker threads in existence.
    workers: usize,
    /// Workers currently inside a `blocking_region` (counted in `busy`).
    external: usize,
    /// A worker is currently running idle hooks.
    ticking: bool,
    shutdown: bool,
}

/// M:N executor: tasks are stackful fibers multiplexed onto a fixed pool
/// of worker threads. A blocked channel operation parks the fiber — the
/// worker moves on to the next runnable task — so graph size is bounded by
/// memory, not by OS thread limits. On targets without the context-switch
/// assembly (non-x86_64) it degrades to thread-per-task.
pub struct PooledExec {
    /// Steady-state worker count.
    target: usize,
    central: Mutex<PoolState>,
    work_cv: Condvar,
    buckets: [PoolBucket; BUCKETS],
    idle_hooks: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
    self_ref: OnceLock<Weak<dyn Exec>>,
    self_pool: OnceLock<Weak<PooledExec>>,
}

impl PooledExec {
    /// Create a pooled executor with `workers` worker threads (0 means
    /// `available_parallelism()`).
    pub fn new(workers: usize) -> Arc<Self> {
        let target = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let exec = Arc::new(PooledExec {
            target,
            central: Mutex::new(PoolState {
                queue: std::collections::VecDeque::new(),
                alive: 0,
                busy: 0,
                workers: 0,
                external: 0,
                ticking: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            buckets: Default::default(),
            idle_hooks: Mutex::new(Vec::new()),
            self_ref: OnceLock::new(),
            self_pool: OnceLock::new(),
        });
        let weak = weak_dyn(&exec);
        exec.self_ref.set(weak).ok();
        exec.self_pool.set(Arc::downgrade(&exec)).ok();
        exec
    }

    /// True when the calling code runs on one of *this* pool's fibers.
    /// (A fiber of pool A blocking on pool B's channel must use B's
    /// thread-waiter path: parking it as a fiber in B would strand it.)
    fn is_own_fiber(&self) -> bool {
        fiber::on_fiber()
            && with_current(|l| {
                self.self_ref
                    .get()
                    .map(|me| Weak::ptr_eq(&l.exec, me))
                    .unwrap_or(false)
            })
    }

    fn spawn_worker(&self) {
        let pool = self
            .self_pool
            .get()
            .and_then(Weak::upgrade)
            .expect("pool alive while spawning workers");
        std::thread::Builder::new()
            .name("kpn-pool-worker".into())
            .spawn(move || pool.worker_loop())
            .expect("spawn pool worker");
    }

    fn worker_loop(self: Arc<Self>) {
        let mut worker_ctx: usize = 0;
        fiber::set_worker_ctx(&mut worker_ctx as *mut usize);
        let mut st = self.central.lock();
        loop {
            if let Some(mut f) = st.queue.pop_front() {
                st.busy += 1;
                drop(st);
                let prev = set_current(Some(f.locals.clone()));
                f.run(&mut worker_ctx);
                set_current(prev);
                if f.done {
                    st = self.central.lock();
                    st.busy -= 1;
                    st.alive -= 1;
                    if st.alive == 0 {
                        self.work_cv.notify_all();
                    }
                } else if let Some((key, token)) = fiber::PARK_REQUEST.with(|c| c.take()) {
                    // Complete the park the fiber requested. Its stack is
                    // quiescent now, so it is safe to hand the Box to the
                    // wait table — unless the token went stale while the
                    // fiber was switching out, in which case the wakeup
                    // already happened and the fiber goes straight back to
                    // the run queue.
                    let mut parked = Some(f);
                    {
                        let mut map = self.buckets[bucket_of(key)].map.lock();
                        if let Some(e) = map.get_mut(&key) {
                            if e.gen == token {
                                e.fibers.push(parked.take().unwrap());
                            }
                        }
                    }
                    st = self.central.lock();
                    st.busy -= 1;
                    if let Some(f) = parked {
                        st.queue.push_back(f);
                        self.work_cv.notify_one();
                    }
                } else {
                    // Voluntary yield: back of the queue.
                    st = self.central.lock();
                    st.busy -= 1;
                    st.queue.push_back(f);
                }
                continue;
            }
            if st.shutdown && st.alive == 0 {
                st.workers -= 1;
                return;
            }
            if st.workers - st.external > self.target {
                // Surplus worker left over from a blocking region: retire.
                st.workers -= 1;
                return;
            }
            // Quiescent (every non-external task parked): run idle hooks —
            // this is where the deadlock monitor's tick comes from, since
            // parked fibers cannot honor timeouts.
            if st.busy <= st.external && st.alive > 0 && !st.ticking && !st.shutdown {
                st.ticking = true;
                drop(st);
                {
                    let hooks = self.idle_hooks.lock();
                    for h in hooks.iter() {
                        h();
                    }
                }
                st = self.central.lock();
                st.ticking = false;
                if st.queue.is_empty() && !(st.shutdown && st.alive == 0) {
                    let _ = self
                        .work_cv
                        .wait_for(&mut st, Duration::from_millis(1));
                }
                continue;
            }
            self.work_cv.wait(&mut st);
        }
    }
}

impl Exec for PooledExec {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    fn spawn(&self, name: &str, body: Box<dyn FnOnce() + Send>) {
        let locals = TaskLocals::new(
            name,
            true,
            self.self_ref.get().expect("self_ref set in new()").clone(),
        );
        let f = fiber::Fiber::new(locals, body);
        let mut st = self.central.lock();
        st.alive += 1;
        st.queue.push_back(f);
        if st.workers - st.external < self.target && !st.shutdown {
            st.workers += 1;
            drop(st);
            self.spawn_worker();
        } else {
            drop(st);
        }
        self.work_cv.notify_one();
    }

    #[cfg(any(not(target_arch = "x86_64"), miri))]
    fn spawn(&self, name: &str, body: Box<dyn FnOnce() + Send>) {
        // Thread-per-task fallback: parking uses the thread-waiter path.
        let locals = TaskLocals::new(
            name,
            true,
            self.self_ref.get().expect("self_ref set in new()").clone(),
        );
        std::thread::Builder::new()
            .name(format!("kpn:{name}"))
            .spawn(move || {
                set_current(Some(locals));
                body();
            })
            .expect("spawn process thread");
    }

    fn park_token(&self, key: usize) -> u64 {
        let mut map = self.buckets[bucket_of(key)].map.lock();
        map.entry(key)
            .or_insert_with(|| PoolEntry {
                gen: next_id(),
                fibers: Vec::new(),
                thread_waiters: 0,
            })
            .gen
    }

    fn park(&self, key: usize, token: u64, timeout: Option<Duration>) -> Result<bool> {
        if self.is_own_fiber() {
            // Ask the worker to park us once our stack is off the CPU.
            // Timeouts are not honored on this path; periodic work rides
            // on the pool's idle hooks instead.
            fiber::PARK_REQUEST.with(|c| c.set(Some((key, token))));
            fiber::switch_to_worker();
            return Ok(false);
        }
        // Foreign thread (or another pool's fiber): keyed condvar wait,
        // same protocol as ThreadExec.
        let b = &self.buckets[bucket_of(key)];
        let mut map = b.map.lock();
        let stale = match map.get(&key) {
            None => true,
            Some(e) => e.gen != token,
        };
        if stale {
            return Ok(false);
        }
        map.get_mut(&key).unwrap().thread_waiters += 1;
        let timed_out = match timeout {
            Some(d) => b.cv.wait_for(&mut map, d).timed_out(),
            None => {
                b.cv.wait(&mut map);
                false
            }
        };
        if let Some(e) = map.get_mut(&key) {
            e.thread_waiters -= 1;
            if e.thread_waiters == 0 && e.fibers.is_empty() {
                map.remove(&key);
            }
        }
        Ok(timed_out)
    }

    fn unpark_all(&self, key: usize) {
        let b = &self.buckets[bucket_of(key)];
        let mut woken: Vec<Box<fiber::Fiber>> = Vec::new();
        {
            let mut map = b.map.lock();
            if let Some(e) = map.get_mut(&key) {
                e.gen = next_id();
                woken = std::mem::take(&mut e.fibers);
                if e.thread_waiters > 0 {
                    b.cv.notify_all();
                } else {
                    map.remove(&key);
                }
            }
        }
        if !woken.is_empty() {
            let mut st = self.central.lock();
            for f in woken {
                st.queue.push_back(f);
            }
            self.work_cv.notify_all();
        }
    }

    fn yield_point(&self) {
        // Kahn processes reschedule by blocking; forcing a fiber switch at
        // every channel op would round-robin 10k fibers per op.
    }

    fn add_idle_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        self.idle_hooks.lock().push(hook);
    }

    fn enter_blocking(&self) {
        if self.is_own_fiber() {
            let mut st = self.central.lock();
            st.external += 1;
            // Keep `target` workers available for fibers while this one
            // sits in a syscall.
            if st.workers - st.external < self.target && !st.shutdown {
                st.workers += 1;
                drop(st);
                self.spawn_worker();
            }
        }
    }

    fn exit_blocking(&self) {
        if self.is_own_fiber() {
            self.central.lock().external -= 1;
        }
    }

    fn shutdown(&self) {
        let mut st = self.central.lock();
        st.shutdown = true;
        self.work_cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// ExecMode: network-level executor selection
// ---------------------------------------------------------------------------

/// Which executor a [`crate::Network`] runs its processes on.
#[derive(Clone)]
pub enum ExecMode {
    /// One OS thread per process (the paper's model).
    Thread,
    /// A fixed worker pool running processes as parked continuations;
    /// `workers == 0` means `available_parallelism()`.
    Pooled {
        /// Worker thread count (0 = `available_parallelism()`).
        workers: usize,
    },
    /// The deterministic simulation scheduler from PR 3.
    Sim(Arc<crate::sim::SimScheduler>),
}

impl std::fmt::Debug for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Thread => write!(f, "Thread"),
            ExecMode::Pooled { workers } => write!(f, "Pooled {{ workers: {workers} }}"),
            ExecMode::Sim(_) => write!(f, "Sim(..)"),
        }
    }
}

impl Default for ExecMode {
    /// Reads `KPN_EXEC` (`thread`, `pooled`, or `pooled:N`) so existing
    /// programs can be switched to the pooled executor without code
    /// changes; defaults to [`ExecMode::Thread`].
    fn default() -> Self {
        Self::from_env()
    }
}

impl ExecMode {
    /// Parse the `KPN_EXEC` environment variable (see [`Default`]).
    pub fn from_env() -> ExecMode {
        match std::env::var("KPN_EXEC") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("pooled") {
                    ExecMode::Pooled { workers: 0 }
                } else if let Some(n) = v
                    .strip_prefix("pooled:")
                    .and_then(|n| n.parse::<usize>().ok())
                {
                    ExecMode::Pooled { workers: n }
                } else {
                    ExecMode::Thread
                }
            }
            Err(_) => ExecMode::Thread,
        }
    }

    /// True for [`ExecMode::Sim`].
    pub fn is_sim(&self) -> bool {
        matches!(self, ExecMode::Sim(_))
    }

    /// Instantiate the executor for this mode.
    pub(crate) fn build(&self) -> Arc<dyn Exec> {
        match self {
            ExecMode::Thread => default_exec().clone() as Arc<dyn Exec>,
            ExecMode::Pooled { workers } => PooledExec::new(*workers) as Arc<dyn Exec>,
            ExecMode::Sim(sched) => SimExec::new(sched.clone()) as Arc<dyn Exec>,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn thread_exec_no_lost_wakeup() {
        // Token taken before the unpark: the park must return immediately.
        let ex = ThreadExec::new();
        let token = ex.park_token(0x1000);
        ex.unpark_all(0x1000);
        let timed_out = ex
            .park(0x1000, token, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!timed_out, "stale token must return without sleeping");
    }

    #[test]
    fn thread_exec_timeout_reports() {
        let ex = ThreadExec::new();
        let token = ex.park_token(0x2000);
        let timed_out = ex
            .park(0x2000, token, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(timed_out);
    }

    #[test]
    fn thread_exec_unpark_wakes_parked_thread() {
        let ex = ThreadExec::new();
        let ex2 = ex.clone();
        let h = std::thread::spawn(move || {
            let token = ex2.park_token(0x3000);
            ex2.park(0x3000, token, Some(Duration::from_secs(30))).unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        ex.unpark_all(0x3000);
        assert!(!h.join().unwrap(), "woken, not timed out");
    }

    #[test]
    fn pooled_runs_many_tasks_on_one_worker() {
        let ex = PooledExec::new(1);
        let n = 500;
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..n {
            let c = count.clone();
            ex.spawn(&format!("t{i}"), Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while count.load(Ordering::SeqCst) < n {
            assert!(std::time::Instant::now() < deadline, "pool stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        ex.shutdown();
    }

    #[test]
    fn pooled_park_unpark_across_tasks() {
        // One fiber parks; another unparks it. With a single worker this
        // only completes if parking actually releases the worker.
        let ex = PooledExec::new(1);
        let flag = Arc::new(AtomicUsize::new(0));
        let key = 0x4000;
        let (f1, f2) = (flag.clone(), flag.clone());
        let (e1, e2) = (ex.clone(), ex.clone());
        ex.spawn(
            "parker",
            Box::new(move || {
                while f1.load(Ordering::SeqCst) == 0 {
                    let token = e1.park_token(key);
                    if f1.load(Ordering::SeqCst) != 0 {
                        break;
                    }
                    e1.park(key, token, None).unwrap();
                }
                f1.store(2, Ordering::SeqCst);
            }),
        );
        ex.spawn(
            "waker",
            Box::new(move || {
                f2.store(1, Ordering::SeqCst);
                e2.unpark_all(key);
            }),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while flag.load(Ordering::SeqCst) != 2 {
            assert!(std::time::Instant::now() < deadline, "park/unpark stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        ex.shutdown();
    }

    #[test]
    fn blocking_region_runs_closure_everywhere() {
        // Foreign thread: direct execution.
        assert_eq!(blocking_region(|| 41 + 1), 42);
        // Pooled fiber: worker pool must not deadlock even with one worker.
        let ex = PooledExec::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        ex.spawn(
            "blocker",
            Box::new(move || {
                let v = blocking_region(|| 7);
                d.store(v, Ordering::SeqCst);
            }),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while done.load(Ordering::SeqCst) != 7 {
            assert!(std::time::Instant::now() < deadline, "blocking region stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        ex.shutdown();
    }

    #[test]
    fn exec_mode_env_parsing() {
        // Not exercised via the env var itself (tests run in parallel);
        // from_env falls back to Thread when unset, and the parser is
        // trivial enough to exercise through the public enum.
        assert!(matches!(
            ExecMode::Pooled { workers: 3 },
            ExecMode::Pooled { workers: 3 }
        ));
    }
}
