//! Growable ring buffer of bytes backing local channels.
//!
//! Channels in the paper are byte FIFOs (§3.1): "the individual bytes
//! passing through a Channel correspond naturally to the data elements of
//! the mathematical representation of streams". This buffer is the
//! in-memory equivalent of the `Piped{Input,Output}Stream` pair, with one
//! addition: the capacity can be *grown in place* while data is buffered,
//! which is what the bounded-scheduling monitor does to resolve artificial
//! deadlock (§3.5).

/// A FIFO ring buffer of bytes with an explicit soft capacity.
///
/// The backing allocation always matches the capacity, so `len == capacity`
/// means "full" — writers must block. [`RingBuffer::grow`] raises the
/// capacity while preserving content order.
#[derive(Debug)]
pub struct RingBuffer {
    data: Box<[u8]>,
    /// Index of the oldest byte.
    head: usize,
    /// Number of buffered bytes.
    len: usize,
}

impl RingBuffer {
    /// Creates an empty buffer with the given capacity (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            data: vec![0u8; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Current capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Number of buffered bytes.
    #[allow(dead_code)] // part of the buffer API; exercised by tests
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bytes are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `len == capacity`; writers must block.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.data.len()
    }

    /// Free space available for writing.
    #[inline]
    pub fn free(&self) -> usize {
        self.data.len() - self.len
    }

    /// The buffered bytes as up to two contiguous spans in FIFO order.
    /// Consumers may copy straight out of these and then [`consume`] what
    /// they took — the batch read half of the span API.
    ///
    /// [`consume`]: RingBuffer::consume
    pub fn as_slices(&self) -> (&[u8], &[u8]) {
        let cap = self.data.len();
        let first = self.len.min(cap - self.head);
        (
            &self.data[self.head..self.head + first],
            &self.data[..self.len - first],
        )
    }

    /// Discards the oldest `n` buffered bytes (they were copied out via
    /// [`as_slices`]). `n` must not exceed [`len`].
    ///
    /// [`as_slices`]: RingBuffer::as_slices
    /// [`len`]: RingBuffer::len
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len);
        self.head = (self.head + n) % self.data.len();
        self.len -= n;
        if self.len == 0 {
            self.head = 0; // keep future transfers contiguous
        }
    }

    /// The free space as up to two contiguous writable spans, in the order
    /// bytes must be written. Producers copy straight into these and then
    /// [`commit`] what they wrote — the batch write half of the span API.
    ///
    /// [`commit`]: RingBuffer::commit
    pub fn free_slices(&mut self) -> (&mut [u8], &mut [u8]) {
        let cap = self.data.len();
        let tail = (self.head + self.len) % cap;
        let free = cap - self.len;
        if tail + free <= cap {
            let (_, rest) = self.data.split_at_mut(tail);
            (&mut rest[..free], &mut [])
        } else {
            let wrapped = free - (cap - tail);
            let (lo, hi) = self.data.split_at_mut(tail);
            (hi, &mut lo[..wrapped])
        }
    }

    /// Marks `n` bytes (written via [`free_slices`]) as buffered. `n` must
    /// not exceed [`free`].
    ///
    /// [`free_slices`]: RingBuffer::free_slices
    /// [`free`]: RingBuffer::free
    pub fn commit(&mut self, n: usize) {
        debug_assert!(n <= self.free());
        self.len += n;
    }

    /// Appends as many bytes from `src` as fit; returns how many were taken.
    /// One or two `memcpy`s via the span API — never byte-at-a-time.
    pub fn push(&mut self, src: &[u8]) -> usize {
        let n = src.len().min(self.free());
        if n == 0 {
            return 0;
        }
        let (a, b) = self.free_slices();
        let first = n.min(a.len());
        a[..first].copy_from_slice(&src[..first]);
        let rest = n - first;
        if rest > 0 {
            b[..rest].copy_from_slice(&src[first..n]);
        }
        self.commit(n);
        n
    }

    /// Removes up to `dst.len()` bytes into `dst`; returns how many.
    pub fn pop(&mut self, dst: &mut [u8]) -> usize {
        let n = dst.len().min(self.len);
        if n == 0 {
            return 0;
        }
        let (a, b) = self.as_slices();
        let first = n.min(a.len());
        dst[..first].copy_from_slice(&a[..first]);
        let rest = n - first;
        if rest > 0 {
            dst[first..n].copy_from_slice(&b[..rest]);
        }
        self.consume(n);
        n
    }

    /// Grows the capacity to `new_capacity` (no-op if not larger),
    /// preserving buffered bytes in order. Used by the deadlock monitor.
    pub fn grow(&mut self, new_capacity: usize) {
        if new_capacity <= self.data.len() {
            return;
        }
        let mut fresh = vec![0u8; new_capacity].into_boxed_slice();
        let mut copied = 0;
        let cap = self.data.len();
        if self.len > 0 {
            let first = self.len.min(cap - self.head);
            fresh[..first].copy_from_slice(&self.data[self.head..self.head + first]);
            copied = first;
            let rest = self.len - first;
            if rest > 0 {
                fresh[copied..copied + rest].copy_from_slice(&self.data[..rest]);
                copied += rest;
            }
        }
        debug_assert_eq!(copied, self.len);
        self.data = fresh;
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_simple() {
        let mut rb = RingBuffer::with_capacity(8);
        assert_eq!(rb.push(b"hello"), 5);
        let mut out = [0u8; 5];
        assert_eq!(rb.pop(&mut out), 5);
        assert_eq!(&out, b"hello");
        assert!(rb.is_empty());
    }

    #[test]
    fn push_respects_capacity() {
        let mut rb = RingBuffer::with_capacity(4);
        assert_eq!(rb.push(b"abcdef"), 4);
        assert!(rb.is_full());
        assert_eq!(rb.push(b"x"), 0);
    }

    #[test]
    fn wraparound_preserves_order() {
        let mut rb = RingBuffer::with_capacity(4);
        assert_eq!(rb.push(b"abc"), 3);
        let mut two = [0u8; 2];
        assert_eq!(rb.pop(&mut two), 2);
        assert_eq!(&two, b"ab");
        // head is now at 2; this push wraps.
        assert_eq!(rb.push(b"def"), 3);
        let mut out = [0u8; 4];
        assert_eq!(rb.pop(&mut out), 4);
        assert_eq!(&out, b"cdef");
    }

    #[test]
    fn pop_partial() {
        let mut rb = RingBuffer::with_capacity(8);
        rb.push(b"xyz");
        let mut big = [0u8; 8];
        assert_eq!(rb.pop(&mut big), 3);
        assert_eq!(&big[..3], b"xyz");
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let rb = RingBuffer::with_capacity(0);
        assert_eq!(rb.capacity(), 1);
    }

    #[test]
    fn grow_preserves_contiguous_content() {
        let mut rb = RingBuffer::with_capacity(4);
        rb.push(b"abcd");
        rb.grow(8);
        assert_eq!(rb.capacity(), 8);
        assert_eq!(rb.len(), 4);
        assert_eq!(rb.push(b"efgh"), 4);
        let mut out = [0u8; 8];
        rb.pop(&mut out);
        assert_eq!(&out, b"abcdefgh");
    }

    #[test]
    fn grow_preserves_wrapped_content() {
        let mut rb = RingBuffer::with_capacity(4);
        rb.push(b"abcd");
        let mut two = [0u8; 2];
        rb.pop(&mut two);
        rb.push(b"ef"); // wraps: buffer holds c d | e f with head=2
        rb.grow(10);
        let mut out = [0u8; 4];
        assert_eq!(rb.pop(&mut out), 4);
        assert_eq!(&out, b"cdef");
    }

    #[test]
    fn grow_smaller_is_noop() {
        let mut rb = RingBuffer::with_capacity(8);
        rb.push(b"abc");
        rb.grow(4);
        assert_eq!(rb.capacity(), 8);
        assert_eq!(rb.len(), 3);
    }

    #[test]
    fn span_api_round_trips_across_wrap() {
        let mut rb = RingBuffer::with_capacity(4);
        // Fill via free_slices/commit.
        {
            let (a, b) = rb.free_slices();
            assert_eq!(a.len() + b.len(), 4);
            a[..2].copy_from_slice(b"ab");
        }
        rb.commit(2);
        // Drain one byte to move head, then wrap the tail.
        let mut one = [0u8; 1];
        rb.pop(&mut one);
        assert_eq!(&one, b"a");
        {
            let (a, b) = rb.free_slices();
            assert_eq!(a.len() + b.len(), 3);
            let n = a.len().min(3);
            a.copy_from_slice(&b"cde"[..n]);
            b[..3 - n].copy_from_slice(&b"cde"[n..]);
        }
        rb.commit(3);
        assert!(rb.is_full());
        let (x, y) = rb.as_slices();
        let mut got = x.to_vec();
        got.extend_from_slice(y);
        assert_eq!(got, b"bcde");
        rb.consume(4);
        assert!(rb.is_empty());
    }

    #[test]
    fn consume_on_empty_resets_head_for_contiguity() {
        let mut rb = RingBuffer::with_capacity(4);
        rb.push(b"abc");
        let mut out = [0u8; 3];
        rb.pop(&mut out);
        // After full drain the next fill should be one contiguous span.
        let (a, b) = rb.free_slices();
        assert_eq!(a.len(), 4);
        assert!(b.is_empty());
    }

    /// One operation of the span-vs-scalar equivalence harness.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        /// Push up to n bytes (deterministic contents from a counter).
        Push(usize),
        /// Pop up to n bytes.
        Pop(usize),
        /// Grow capacity by n bytes.
        Grow(usize),
    }

    /// Drives two ring buffers through the same operation sequence — one
    /// via the scalar `push`/`pop` path, one via the span API
    /// (`free_slices`+`commit` / `as_slices`+`consume`) — and asserts they
    /// observe identical bytes, lengths, and capacities throughout,
    /// matching a `VecDeque` model. This is the invariant the batched
    /// channel fast path relies on.
    fn check_span_equals_scalar(capacity: usize, ops: &[Op]) {
        use std::collections::VecDeque;
        let mut scalar = RingBuffer::with_capacity(capacity);
        let mut span = RingBuffer::with_capacity(capacity);
        let mut model: VecDeque<u8> = VecDeque::new();
        let mut counter: u8 = 0;
        for op in ops {
            match *op {
                Op::Push(n) => {
                    let src: Vec<u8> = (0..n)
                        .map(|_| {
                            counter = counter.wrapping_add(1);
                            counter
                        })
                        .collect();
                    let taken_scalar = scalar.push(&src);
                    // Span path: copy into free_slices, then commit.
                    let taken_span = {
                        let want = src.len().min(span.free());
                        let (a, b) = span.free_slices();
                        let first = want.min(a.len());
                        a[..first].copy_from_slice(&src[..first]);
                        if want > first {
                            b[..want - first].copy_from_slice(&src[first..want]);
                        }
                        span.commit(want);
                        want
                    };
                    assert_eq!(taken_scalar, taken_span, "push {n}");
                    model.extend(&src[..taken_scalar]);
                }
                Op::Pop(n) => {
                    let mut dst = vec![0u8; n];
                    let got_scalar = scalar.pop(&mut dst);
                    // Span path: copy out of as_slices, then consume.
                    let span_bytes = {
                        let want = n.min(span.len());
                        let (a, b) = span.as_slices();
                        let first = want.min(a.len());
                        let mut out = a[..first].to_vec();
                        out.extend_from_slice(&b[..want - first]);
                        span.consume(want);
                        out
                    };
                    assert_eq!(got_scalar, span_bytes.len(), "pop {n}");
                    assert_eq!(&dst[..got_scalar], &span_bytes[..], "pop bytes");
                    for byte in &span_bytes {
                        assert_eq!(*byte, model.pop_front().unwrap());
                    }
                }
                Op::Grow(n) => {
                    let new_cap = scalar.capacity() + n;
                    scalar.grow(new_cap);
                    span.grow(new_cap);
                }
            }
            assert_eq!(scalar.len(), span.len());
            assert_eq!(scalar.len(), model.len());
            assert_eq!(scalar.capacity(), span.capacity());
            // Full-content equality without disturbing state.
            let (sa, sb) = scalar.as_slices();
            let (pa, pb) = span.as_slices();
            let mut sc = sa.to_vec();
            sc.extend_from_slice(sb);
            let mut pc = pa.to_vec();
            pc.extend_from_slice(pb);
            assert_eq!(sc, pc);
            assert!(model.iter().copied().eq(sc.into_iter()));
        }
    }

    fn ops_from_seed(seed: u64, count: usize) -> Vec<Op> {
        // splitmix64 op stream: sizes 0..=9 bias toward wrap-around at the
        // small capacities the callers use; occasional growth.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..count)
            .map(|_| {
                let r = next();
                let n = (r % 10) as usize;
                match r % 16 {
                    0..=6 => Op::Push(n),
                    7..=13 => Op::Pop(n),
                    _ => Op::Grow(1 + n % 5),
                }
            })
            .collect()
    }

    #[test]
    fn span_api_matches_scalar_path_deterministic() {
        // Always-run companion to the proptest below: same harness, seeded
        // op streams over the capacities where wrap-around is constant.
        for capacity in [1, 2, 3, 5, 8] {
            for seed in 0..20 {
                check_span_equals_scalar(capacity, &ops_from_seed(seed, 400));
            }
        }
    }

    mod span_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Arbitrary op sequences: span and scalar paths agree on
            /// every byte, through wrap-around and growth.
            #[test]
            fn span_api_matches_scalar_path(
                capacity in 1usize..16,
                raw in proptest::collection::vec((0u8..3, 0usize..10), 1..300),
            ) {
                let ops: Vec<Op> = raw
                    .iter()
                    .map(|&(kind, n)| match kind {
                        0 => Op::Push(n),
                        1 => Op::Pop(n),
                        _ => Op::Grow(1 + n % 5),
                    })
                    .collect();
                check_span_equals_scalar(capacity, &ops);
            }
        }
    }

    #[test]
    fn interleaved_stress_matches_vecdeque() {
        use std::collections::VecDeque;
        let mut rb = RingBuffer::with_capacity(7);
        let mut model: VecDeque<u8> = VecDeque::new();
        let mut x: u32 = 0x2545_F491;
        for step in 0..2000 {
            // xorshift for deterministic pseudo-random sizes
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let n = (x % 9) as usize;
            if step % 2 == 0 {
                let src: Vec<u8> = (0..n).map(|i| (step + i) as u8).collect();
                let taken = rb.push(&src);
                assert_eq!(taken, src.len().min(7 - model.len()));
                model.extend(&src[..taken]);
            } else {
                let mut dst = vec![0u8; n];
                let got = rb.pop(&mut dst);
                assert_eq!(got, n.min(model.len()));
                for b in dst.iter().take(got) {
                    assert_eq!(*b, model.pop_front().unwrap());
                }
            }
            assert_eq!(rb.len(), model.len());
        }
    }
}
