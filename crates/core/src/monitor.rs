//! Bounded-scheduling deadlock monitor (§3.5 and Parks' thesis \[13\]).
//!
//! Channels have limited capacity and writes block when full. This enforces
//! fair progress without relying on scheduler time-slicing, but it can
//! introduce *artificial* deadlock: a set of processes blocked forever even
//! though the (unbounded-channel) Kahn semantics would keep producing data —
//! the Hamming network of Figure 12 and the acyclic graph of Figure 13 are
//! the paper's examples.
//!
//! The monitor implements Parks' procedure:
//!
//! 1. detect that *every* live process thread in the network is blocked;
//! 2. if at least one of them is blocked **writing** to a full channel, the
//!    deadlock is artificial — grow the capacity of the *smallest* full
//!    channel with a blocked writer and wake it;
//! 3. if all of them are blocked **reading**, the deadlock is true — no
//!    finite buffer assignment can help; the network is aborted (every
//!    blocked operation fails with [`Error::Deadlocked`]).
//!
//! Detection is event-driven: the last thread to block runs it, with a short
//! settling delay to reject races (a thread may appear blocked an instant
//! before a notify wakes it). Blocked threads also re-run detection on a
//! periodic tick as a belt-and-braces fallback.

use crate::error::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Default for [`MonitorTiming::tick`].
pub(crate) const MONITOR_TICK: Duration = Duration::from_millis(20);

/// Default for [`MonitorTiming::settle`].
const SETTLE: Duration = Duration::from_millis(2);

/// The monitor's two timing knobs, injectable per network via
/// [`crate::NetworkConfig::monitor_timing`]. The defaults favour low
/// steady-state overhead; tests that provoke many deadlocks can shrink
/// them ([`MonitorTiming::fast`]), and the deterministic simulator runs
/// with both at zero ([`MonitorTiming::zero`]) because under a serial
/// scheduler there are no settling races to reject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorTiming {
    /// How long a blocked channel operation waits before re-running
    /// detection (the belt-and-braces fallback behind the event-driven
    /// path).
    pub tick: Duration,
    /// Settling delay used to confirm that an apparent all-blocked state
    /// is stable before acting on it.
    pub settle: Duration,
}

impl Default for MonitorTiming {
    fn default() -> Self {
        MonitorTiming {
            tick: MONITOR_TICK,
            settle: SETTLE,
        }
    }
}

impl MonitorTiming {
    /// Aggressive timing for tests that provoke deadlocks on purpose:
    /// detection latency drops from tens of milliseconds to hundreds of
    /// microseconds at the cost of more frequent wakeups while blocked.
    pub fn fast() -> Self {
        MonitorTiming {
            tick: Duration::from_millis(1),
            settle: Duration::from_micros(200),
        }
    }

    /// No waiting at all. Only sound when channel operations are
    /// serialized (the sim scheduler), where an all-blocked observation
    /// cannot be a transient race.
    pub fn zero() -> Self {
        MonitorTiming {
            tick: Duration::ZERO,
            settle: Duration::ZERO,
        }
    }
}

/// What to do when every process in the network is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockPolicy {
    /// Parks' bounded scheduling: double the smallest full channel (up to
    /// `max_capacity`, if set) on artificial deadlock; abort on true
    /// deadlock. This is the default.
    Grow {
        /// Upper bound on any single channel's capacity; `None` = unbounded.
        max_capacity: Option<usize>,
    },
    /// Abort the network on any full deadlock, artificial or true.
    Abort,
    /// Do nothing (useful for tests that assert raw blocking behaviour).
    Ignore,
}

impl Default for DeadlockPolicy {
    fn default() -> Self {
        DeadlockPolicy::Grow { max_capacity: None }
    }
}

/// Why a thread is blocked, as reported to the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Blocked reading an empty channel.
    Read,
    /// Blocked writing a full channel.
    Write,
}

/// Per-channel I/O counters (see [`crate::Network::channel_report`]):
/// the observability layer behind the buffer-management analysis —
/// `peak_occupancy` is the buffer demand bounded scheduling discovered,
/// and the block counters show where backpressure (or starvation) lives.
///
/// Counters account for bytes at the *channel* boundary. Buffered typed
/// streams batch tokens privately before they cross it, but the auto-flush
/// rule (see [`crate::flush`]) empties those private buffers whenever the
/// owning process blocks or finishes a step, so at every point where the
/// monitor inspects a stalled network these counters describe all data in
/// flight — which is what keeps bounded-capacity scheduling decisions
/// correct under buffering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelIoStats {
    /// Total bytes pushed through the channel.
    pub bytes_written: u64,
    /// Blocking episodes on the write side (buffer full).
    pub write_blocks: u64,
    /// Blocking episodes on the read side (buffer empty).
    pub read_blocks: u64,
    /// Highest buffer occupancy observed, in bytes.
    pub peak_occupancy: usize,
    /// Current capacity (after any growth).
    pub capacity: usize,
}

/// Channel-side operations the monitor needs. Implemented by the local
/// channel's shared state.
pub(crate) trait MonitoredChannel: Send + Sync {
    /// Current capacity in bytes.
    fn capacity(&self) -> usize;
    /// True when the buffer is at capacity (writers must block).
    fn is_full(&self) -> bool;
    /// Bytes currently buffered (diagnostics).
    fn buffered(&self) -> usize;
    /// True when the write end has been closed (reader is about to see
    /// EOF, so a registered read-block on this channel is not a deadlock).
    fn is_write_closed(&self) -> bool;
    /// True when the read end has been closed (writer is about to fail,
    /// so a registered write-block on this channel is not a deadlock).
    fn is_read_closed(&self) -> bool;
    /// If the channel is full, grow it (respecting `max`) and wake writers.
    /// Returns `(old, new)` capacities when growth happened.
    fn grow_if_full(&self, max: Option<usize>) -> Option<(usize, usize)>;
    /// Grow the channel to at least `min` bytes (never shrinks) and wake
    /// writers. Returns true when the capacity actually changed. Used to
    /// apply statically synthesized capacities before a network starts.
    fn ensure_capacity(&self, min: usize) -> bool;
    /// Mark the channel poisoned and wake everyone; all subsequent and
    /// pending operations fail with [`Error::Deadlocked`].
    fn poison(&self);
    /// Point-in-time I/O counters.
    fn io_stats(&self) -> ChannelIoStats;
}

/// Counters exposed for tests, benches and EXPERIMENTS.md.
#[derive(Debug, Default, Clone)]
pub struct MonitorStats {
    /// Number of artificial deadlocks resolved by growing a channel.
    pub growths: u64,
    /// Capacity-growth events the runtime monitor performed after start —
    /// the observable cost of Parks' detect-and-grow loop. Statically
    /// synthesized capacities applied before start
    /// (`NetworkConfig::synthesize_capacities`) do not count, so a static
    /// region whose synthesized sizes hold reports `capacity_grows == 0`.
    pub capacity_grows: u64,
    /// Number of true deadlocks detected.
    pub true_deadlocks: u64,
    /// Every growth performed: `(channel id, old capacity, new capacity)`.
    /// The raw material for buffer-management analysis (§6.2): the final
    /// entry per channel is the capacity bounded scheduling settled on.
    pub growth_log: Vec<(u64, usize, usize)>,
    /// Per-worker scheduler counters, when the network runs on an executor
    /// that keeps them (the pooled executor); `None` under thread and sim
    /// execution.
    pub scheduler: Option<crate::exec::SchedulerStats>,
}

/// A point-in-time view of a monitor, used by the distributed deadlock
/// probe (§6.2): a node whose every network is fully blocked — including
/// threads blocked on *remote* channel reads — is a candidate participant
/// in a cross-machine deadlock that no local monitor can prove alone.
#[derive(Debug, Clone, Default)]
pub struct MonitorSnapshot {
    /// Monotonic activity counter: bumps on every block, unblock, spawn
    /// and exit. Two identical snapshots with equal generations mean *no
    /// thread made progress in between* — the distributed probe's
    /// freshness check.
    pub generation: u64,
    /// Live process threads.
    pub live: usize,
    /// Process threads blocked reading.
    pub blocked_reads: usize,
    /// Process threads blocked writing.
    pub blocked_writes: usize,
    /// Whether the network was aborted.
    pub aborted: bool,
    /// Resolution counters.
    pub stats: MonitorStats,
}

impl MonitorSnapshot {
    /// True when the network still has live processes and every one of
    /// them is blocked.
    pub fn fully_blocked(&self) -> bool {
        self.live > 0 && self.blocked_reads + self.blocked_writes >= self.live
    }

    /// True when the network has finished (no live processes).
    pub fn finished(&self) -> bool {
        self.live == 0
    }
}

/// Sentinel channel id for blocks on channels the monitor cannot inspect
/// (remote transports). Such blocks count toward all-blocked detection but
/// always fail semantic verification, so they can never cause a *local*
/// true-deadlock abort — exactly right, since data may be in flight on the
/// network (§6.2 leaves resolution to a distributed protocol).
pub const EXTERNAL_CHANNEL: u64 = 0;

#[derive(Debug, Clone, Copy)]
struct BlockInfo {
    kind: BlockKind,
    chan: u64,
    is_process: bool,
}

#[derive(Default)]
struct MonState {
    /// Live process threads in the network (running or blocked).
    live: usize,
    /// All threads currently blocked on a monitored channel, keyed by a
    /// per-thread token. Includes non-process threads (e.g. a test's main
    /// thread draining the output), which participate in deadlock but not
    /// in the live count.
    blocked: HashMap<u64, BlockInfo>,
    /// Number of blocked entries with `is_process == true`.
    blocked_processes: usize,
    /// Bumped on every block/unblock/process event; used by the settling
    /// double-check to detect concurrent activity.
    generation: u64,
    channels: HashMap<u64, Weak<dyn MonitoredChannel>>,
    /// Final counters of channels that have been dropped, so reports cover
    /// the network's whole life.
    retired: Vec<(u64, ChannelIoStats)>,
    aborted: bool,
    stats: MonitorStats,
}

/// The per-network deadlock monitor. One instance is shared by every channel
/// and process thread created through a [`crate::Network`].
pub struct Monitor {
    state: Mutex<MonState>,
    policy: DeadlockPolicy,
    timing: MonitorTiming,
    /// Callbacks run when the network aborts, *after* local channels are
    /// poisoned. Used by the distributed layer to interrupt threads
    /// blocked on transports the monitor cannot poison (TCP reads,
    /// pending connections).
    abort_hooks: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
    /// Pulls scheduler counters from the network's executor for
    /// [`Monitor::stats`]/[`Monitor::snapshot`]. A closure (over a weak
    /// executor handle) rather than an `Arc<dyn Exec>` because the
    /// executor holds the monitor strongly via its idle hook — a direct
    /// reference back would leak both.
    scheduler_source: Mutex<Option<SchedulerSource>>,
}

/// Closure pulling a [`SchedulerStats`](crate::exec::SchedulerStats)
/// snapshot from the owning network's executor.
type SchedulerSource = Box<dyn Fn() -> Option<crate::exec::SchedulerStats> + Send + Sync>;

/// The monitor keys its blocked-set by *task*, not OS thread: under the
/// pooled executor one worker thread runs many tasks (and a task may
/// migrate between workers between its enter/exit pair), so identity comes
/// from the executor's task-locals.
fn thread_token() -> u64 {
    crate::exec::task_token()
}

/// True when the caller is a network process task (any executor); foreign
/// threads touching channels from outside register as external blocks.
fn is_process_thread() -> bool {
    crate::exec::is_process_task()
}

impl Monitor {
    /// Creates a monitor with the given policy and default timing.
    pub fn new(policy: DeadlockPolicy) -> Arc<Self> {
        Self::with_timing(policy, MonitorTiming::default())
    }

    /// Creates a monitor with explicit timing knobs.
    pub fn with_timing(policy: DeadlockPolicy, timing: MonitorTiming) -> Arc<Self> {
        Arc::new(Monitor {
            state: Mutex::new(MonState::default()),
            policy,
            timing,
            abort_hooks: Mutex::new(Vec::new()),
            scheduler_source: Mutex::new(None),
        })
    }

    /// Wire up the provider of executor scheduling counters (set by
    /// [`crate::Network`] when the executor keeps them). The closure is
    /// called outside the monitor's state lock, so it may itself lock
    /// executor state.
    pub fn set_scheduler_source(
        &self,
        source: Box<dyn Fn() -> Option<crate::exec::SchedulerStats> + Send + Sync>,
    ) {
        *self.scheduler_source.lock() = Some(source);
    }

    /// Current executor scheduling counters, if any.
    fn scheduler_stats(&self) -> Option<crate::exec::SchedulerStats> {
        self.scheduler_source.lock().as_ref().and_then(|f| f())
    }

    /// The timing knobs this monitor runs with.
    pub fn timing(&self) -> MonitorTiming {
        self.timing
    }

    /// Registers a callback to run when the network aborts (after local
    /// channels are poisoned). If the network is already aborted the hook
    /// runs immediately.
    pub fn on_abort(&self, hook: Box<dyn Fn() + Send + Sync>) {
        let already = self.state.lock().aborted;
        if already {
            hook();
        } else {
            self.abort_hooks.lock().push(hook);
        }
    }

    fn run_abort_hooks(&self) {
        // Take the hooks out so they run exactly once, without the lock.
        let hooks: Vec<_> = self.abort_hooks.lock().drain(..).collect();
        for hook in hooks {
            hook();
        }
    }

    /// The policy this monitor was created with.
    pub fn policy(&self) -> DeadlockPolicy {
        self.policy
    }

    /// Snapshot of resolution counters, including the executor's
    /// per-worker scheduling counters when it keeps them.
    pub fn stats(&self) -> MonitorStats {
        let mut stats = self.state.lock().stats.clone();
        // Filled after releasing the state lock: the source closure takes
        // the executor's own locks, and the executor's idle hook calls
        // back into this monitor.
        stats.scheduler = self.scheduler_stats();
        stats
    }

    /// Per-channel I/O counters, keyed by channel id — live channels plus
    /// the final counters of already-dropped ones, so the report covers
    /// the network's entire execution.
    pub fn channel_report(&self) -> Vec<(u64, ChannelIoStats)> {
        let st = self.state.lock();
        let mut out: Vec<(u64, ChannelIoStats)> = st
            .channels
            .iter()
            .filter_map(|(id, w)| w.upgrade().map(|ch| (*id, ch.io_stats())))
            .chain(st.retired.iter().cloned())
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// A point-in-time view for the distributed deadlock probe.
    pub fn snapshot(&self) -> MonitorSnapshot {
        let st = self.state.lock();
        let mut reads = 0;
        let mut writes = 0;
        for b in st.blocked.values() {
            if !b.is_process {
                continue;
            }
            match b.kind {
                BlockKind::Read => reads += 1,
                BlockKind::Write => writes += 1,
            }
        }
        let mut snap = MonitorSnapshot {
            generation: st.generation,
            live: st.live,
            blocked_reads: reads,
            blocked_writes: writes,
            aborted: st.aborted,
            stats: st.stats.clone(),
        };
        drop(st); // scheduler source takes executor locks; see stats()
        snap.stats.scheduler = self.scheduler_stats();
        snap
    }

    /// Registers the current thread as blocked on a channel the monitor
    /// cannot inspect (a remote transport). The block participates in
    /// all-blocked detection and snapshots, but never satisfies the
    /// true-deadlock verification — remote data may be in flight, so only
    /// a distributed protocol may abort (§6.2).
    pub fn external_block(&self, kind: BlockKind) -> Result<ExternalBlockGuard<'_>> {
        self.enter_block(kind, EXTERNAL_CHANNEL)?;
        Ok(ExternalBlockGuard { monitor: self })
    }

    /// True once a true deadlock was declared or the network was aborted.
    pub fn is_aborted(&self) -> bool {
        self.state.lock().aborted
    }

    pub(crate) fn register_channel(&self, id: u64, chan: Weak<dyn MonitoredChannel>) {
        let mut st = self.state.lock();
        st.channels.insert(id, chan);
    }

    /// Records the final counters of a dropped channel.
    pub(crate) fn channel_retired(&self, id: u64, stats: ChannelIoStats) {
        let mut st = self.state.lock();
        st.channels.remove(&id);
        st.retired.push((id, stats));
    }

    /// A process thread entered the network.
    pub(crate) fn process_started(&self) {
        let mut st = self.state.lock();
        st.live += 1;
        st.generation += 1;
    }

    /// A process thread left the network (finished or failed).
    pub(crate) fn process_finished(&self) {
        let plan = {
            let mut st = self.state.lock();
            st.live -= 1;
            st.generation += 1;
            // The departing process may have been the only runnable one;
            // the remainder might now be fully blocked.
            self.plan_if_all_blocked(&mut st)
        };
        self.execute(plan);
    }

    /// Registers the current thread as blocked and runs deadlock detection.
    /// Returns `Err(Deadlocked)` if the network is already aborted.
    pub(crate) fn enter_block(&self, kind: BlockKind, chan: u64) -> Result<()> {
        let token = thread_token();
        let is_process = is_process_thread();
        let (plan, gen) = {
            let mut st = self.state.lock();
            if st.aborted {
                return Err(Error::Deadlocked);
            }
            let prev = st.blocked.insert(
                token,
                BlockInfo {
                    kind,
                    chan,
                    is_process,
                },
            );
            debug_assert!(prev.is_none(), "thread blocked twice");
            if std::env::var_os("KPN_MONITOR_DEBUG").is_some() {
                eprintln!(
                    "[monitor] enter token={token} chan={chan} kind={kind:?} gen={}",
                    st.generation + 1
                );
            }
            if is_process {
                st.blocked_processes += 1;
            }
            st.generation += 1;
            let gen = st.generation;
            (self.detect(&mut st), gen)
        };
        if plan {
            self.settle_and_resolve(gen);
        }
        Ok(())
    }

    /// Re-runs detection from a thread that has been blocked for a while
    /// (periodic fallback; the thread stays registered, so this does not
    /// bump the generation and cannot destabilize a concurrent settle).
    pub(crate) fn tick(&self) {
        let (detected, gen) = {
            let mut st = self.state.lock();
            (self.detect(&mut st), st.generation)
        };
        if detected {
            self.settle_and_resolve(gen);
        }
    }

    /// Unregisters the current thread.
    pub(crate) fn exit_block(&self) {
        let token = thread_token();
        let mut st = self.state.lock();
        if let Some(info) = st.blocked.remove(&token) {
            if info.is_process {
                st.blocked_processes -= 1;
            }
            st.generation += 1;
            if std::env::var_os("KPN_MONITOR_DEBUG").is_some() {
                eprintln!(
                    "[monitor] exit token={token} chan={} gen={}",
                    info.chan, st.generation
                );
            }
        }
    }

    /// Aborts the network: poisons every registered channel so all pending
    /// and future operations fail with [`Error::Deadlocked`].
    pub fn abort(&self) {
        let chans: Vec<Arc<dyn MonitoredChannel>> = {
            let mut st = self.state.lock();
            st.aborted = true;
            st.generation += 1;
            st.channels.values().filter_map(Weak::upgrade).collect()
        };
        for c in chans {
            c.poison();
        }
        self.run_abort_hooks();
    }

    /// True when every live process thread is blocked (candidate deadlock).
    fn detect(&self, st: &mut MonState) -> bool {
        !st.aborted && st.live > 0 && st.blocked_processes >= st.live
    }

    /// Semantic confirmation for a *growth* decision: every blocked entry
    /// on a locally-inspectable channel must be consistent with a real
    /// block (reads on empty-and-open channels, writes on full-and-open
    /// ones). This rejects the single-core race where a *runnable* reader
    /// is still registered while the settle delay elapses, and — the
    /// `!is_read_closed` clause — the termination-cascade race where a
    /// writer parked on a channel whose reader just died has its
    /// `WriteClosed` wake still in flight: the network looks all-blocked
    /// for an instant, but the cascade is about to unwedge it and growing
    /// any channel now would be pure buffer inflation. Only blocks on the
    /// [`EXTERNAL_CHANNEL`] sentinel pass unverified (a distributed
    /// artificial deadlock may still need a local channel to grow); local
    /// channels stay registered until both endpoints are gone, so a
    /// blocked entry always finds its channel here.
    fn verify_for_growth(st: &MonState) -> bool {
        st.blocked.values().all(|b| {
            match st.channels.get(&b.chan).and_then(Weak::upgrade) {
                Some(ch) => match b.kind {
                    BlockKind::Read => ch.buffered() == 0 && !ch.is_write_closed(),
                    BlockKind::Write => ch.is_full() && !ch.is_read_closed(),
                },
                // Remote (never locally registered) channel: introspection
                // impossible; do not veto the growth.
                None => b.chan == EXTERNAL_CHANNEL,
            }
        })
    }

    /// Semantic confirmation for a true-deadlock declaration: every
    /// read-blocked channel must actually be empty and every write-blocked
    /// channel actually full. This closes the race where the *detecting*
    /// thread registered as blocked but has not yet re-checked its channel
    /// (its pending progress cannot bump the generation, so the settling
    /// delay alone would not catch it).
    fn verify_blocked_semantics(st: &MonState) -> bool {
        st.blocked.values().all(|b| {
            match st.channels.get(&b.chan).and_then(Weak::upgrade) {
                Some(ch) => match b.kind {
                    BlockKind::Read => ch.buffered() == 0 && !ch.is_write_closed(),
                    BlockKind::Write => ch.is_full() && !ch.is_read_closed(),
                },
                // Unknown channel: cannot verify, be conservative.
                None => false,
            }
        })
    }

    fn plan_if_all_blocked(&self, st: &mut MonState) -> bool {
        self.detect(st)
    }

    fn execute(&self, detected: bool) {
        if detected {
            let gen = self.state.lock().generation;
            self.settle_and_resolve(gen);
        }
    }

    /// Confirms the all-blocked state is stable across a short delay, then
    /// resolves per policy. Called without any locks held.
    fn settle_and_resolve(&self, gen_at_detect: u64) {
        // Fast pre-check: if the current state can not possibly lead to an
        // action (e.g. every blocked read is on an external/remote channel,
        // which only a distributed protocol may resolve), skip the settling
        // sleep — it would otherwise add latency to every blocking remote
        // read in small partitions.
        {
            let mut st = self.state.lock();
            if !self.detect(&mut st) {
                return;
            }
            let growable = st.blocked.values().any(|b| {
                b.kind == BlockKind::Write
                    && st
                        .channels
                        .get(&b.chan)
                        .and_then(Weak::upgrade)
                        .map(|ch| ch.is_full())
                        .unwrap_or(false)
            });
            match self.policy {
                DeadlockPolicy::Ignore => return,
                DeadlockPolicy::Grow { .. } if growable => {
                    if !Self::verify_for_growth(&st) {
                        return;
                    }
                }
                _ => {
                    if !Self::verify_blocked_semantics(&st) {
                        return;
                    }
                }
            }
        }
        if !self.timing.settle.is_zero() {
            std::thread::sleep(self.timing.settle);
        }
        // Decide under the lock; act on channels after releasing it
        // (channel poison/grow takes the channel lock — never hold both).
        enum Act {
            None,
            Grow(u64, Arc<dyn MonitoredChannel>, Option<usize>),
            Abort(Vec<Arc<dyn MonitoredChannel>>),
        }
        let act = {
            let mut st = self.state.lock();
            if st.generation != gen_at_detect || !self.detect(&mut st) {
                Act::None
            } else {
                let any_writer = st.blocked.values().any(|b| b.kind == BlockKind::Write);
                match (self.policy, any_writer) {
                    (DeadlockPolicy::Ignore, _) => Act::None,
                    (DeadlockPolicy::Grow { max_capacity }, true)
                        if Self::verify_for_growth(&st) =>
                    {
                        // Artificial deadlock: grow the smallest-capacity
                        // *full* channel that has a blocked writer (Parks'
                        // procedure). Stale blocked entries can reference
                        // channels that have since drained; skip those.
                        // Capacity ties break on channel id so the choice
                        // does not depend on HashMap iteration order — the
                        // sim scheduler's replay guarantee needs growth
                        // decisions to be a function of network state alone.
                        let mut best: Option<(usize, u64, Arc<dyn MonitoredChannel>)> = None;
                        for info in st.blocked.values() {
                            if info.kind != BlockKind::Write {
                                continue;
                            }
                            if let Some(ch) = st.channels.get(&info.chan).and_then(Weak::upgrade) {
                                if !ch.is_full() {
                                    continue;
                                }
                                let cap = ch.capacity();
                                let better = best
                                    .as_ref()
                                    .map(|(c, id, _)| (cap, info.chan) < (*c, *id))
                                    .unwrap_or(true);
                                if better {
                                    best = Some((cap, info.chan, ch));
                                }
                            }
                        }
                        match best {
                            Some((_, id, ch)) => Act::Grow(id, ch, max_capacity),
                            None => Act::None,
                        }
                    }
                    (DeadlockPolicy::Grow { .. }, false) | (DeadlockPolicy::Abort, _)
                        if Self::verify_blocked_semantics(&st) =>
                    {
                        if std::env::var_os("KPN_MONITOR_DEBUG").is_some() {
                            let occupancy: Vec<(u64, usize)> = st
                                .channels
                                .iter()
                                .filter_map(|(id, w)| w.upgrade().map(|c| (*id, c.buffered())))
                                .collect();
                            eprintln!(
                                "[monitor] true deadlock: live={} gen={} gen_at_detect={} blocked={:?} occupancy={:?}",
                                st.live,
                                st.generation,
                                gen_at_detect,
                                st.blocked.values().collect::<Vec<_>>(),
                                occupancy,
                            );
                        }
                        st.aborted = true;
                        st.stats.true_deadlocks += 1;
                        st.generation += 1;
                        Act::Abort(st.channels.values().filter_map(Weak::upgrade).collect())
                    }
                    // All-read-blocked but some blocked channel still holds
                    // data (or is unverifiable): a reader is about to make
                    // progress — not a deadlock. A later tick retries.
                    _ => Act::None,
                }
            }
        };
        match act {
            Act::None => {}
            Act::Grow(id, ch, max) => {
                if std::env::var_os("KPN_MONITOR_DEBUG").is_some() {
                    let st = self.state.lock();
                    let chans: Vec<(u64, usize, usize, bool, bool)> = st
                        .channels
                        .iter()
                        .filter_map(|(cid, w)| {
                            w.upgrade().map(|c| {
                                (*cid, c.buffered(), c.capacity(), c.is_read_closed(), c.is_write_closed())
                            })
                        })
                        .collect();
                    eprintln!(
                        "[monitor] GROW ch={id} live={} blocked={:?} chans(id,buf,cap,rc,wc)={:?}",
                        st.live,
                        st.blocked.values().collect::<Vec<_>>(),
                        chans
                    );
                }
                if let Some((old, new)) = ch.grow_if_full(max) {
                    let mut st = self.state.lock();
                    st.stats.growths += 1;
                    st.stats.capacity_grows += 1;
                    st.stats.growth_log.push((id, old, new));
                    st.generation += 1;
                } else {
                    // The channel drained between detection and action, or
                    // growth is capped; if everyone is still blocked a
                    // subsequent tick will retry (possibly picking another
                    // channel, or declaring true deadlock if capped).
                    let capped = max.map(|m| ch.capacity() >= m).unwrap_or(false);
                    if capped {
                        // All writable channels at max: treat as true
                        // deadlock to avoid spinning forever.
                        let still = {
                            let mut st = self.state.lock();
                            if self.detect(&mut st) {
                                st.aborted = true;
                                st.stats.true_deadlocks += 1;
                                Some(
                                    st.channels
                                        .values()
                                        .filter_map(Weak::upgrade)
                                        .collect::<Vec<_>>(),
                                )
                            } else {
                                None
                            }
                        };
                        if let Some(chans) = still {
                            for c in chans {
                                c.poison();
                            }
                            self.run_abort_hooks();
                        }
                    }
                }
            }
            Act::Abort(chans) => {
                for c in chans {
                    c.poison();
                }
                self.run_abort_hooks();
            }
        }
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Monitor")
            .field("policy", &self.policy)
            .field("live", &st.live)
            .field("blocked", &st.blocked.len())
            .field("aborted", &st.aborted)
            .finish()
    }
}

/// RAII guard for an external (remote-transport) block; see
/// [`Monitor::external_block`].
pub struct ExternalBlockGuard<'m> {
    monitor: &'m Monitor,
}

impl Drop for ExternalBlockGuard<'_> {
    fn drop(&mut self) {
        self.monitor.exit_block();
    }
}

/// RAII guard pairing [`Monitor::enter_block`]/[`Monitor::exit_block`].
pub(crate) struct BlockGuard<'m> {
    monitor: &'m Monitor,
}

impl<'m> BlockGuard<'m> {
    pub(crate) fn enter(monitor: &'m Monitor, kind: BlockKind, chan: u64) -> Result<Self> {
        monitor.enter_block(kind, chan)?;
        Ok(BlockGuard { monitor })
    }
}

impl Drop for BlockGuard<'_> {
    fn drop(&mut self) {
        self.monitor.exit_block();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeChan {
        cap: Mutex<usize>,
        full: Mutex<bool>,
        poisoned: Mutex<bool>,
    }

    impl FakeChan {
        fn new(cap: usize, full: bool) -> Arc<Self> {
            Arc::new(FakeChan {
                cap: Mutex::new(cap),
                full: Mutex::new(full),
                poisoned: Mutex::new(false),
            })
        }
    }

    impl MonitoredChannel for FakeChan {
        fn capacity(&self) -> usize {
            *self.cap.lock()
        }
        fn is_full(&self) -> bool {
            *self.full.lock()
        }
        fn buffered(&self) -> usize {
            0
        }
        fn is_write_closed(&self) -> bool {
            false
        }
        fn is_read_closed(&self) -> bool {
            false
        }
        fn io_stats(&self) -> ChannelIoStats {
            ChannelIoStats::default()
        }
        fn grow_if_full(&self, max: Option<usize>) -> Option<(usize, usize)> {
            let mut cap = self.cap.lock();
            if !*self.full.lock() {
                return None;
            }
            let old = *cap;
            let new = (old * 2).min(max.unwrap_or(usize::MAX));
            if new <= old {
                return None;
            }
            *cap = new;
            // A freshly grown channel is no longer full.
            *self.full.lock() = false;
            Some((old, new))
        }
        fn ensure_capacity(&self, min: usize) -> bool {
            let mut cap = self.cap.lock();
            if *cap >= min {
                return false;
            }
            *cap = min;
            *self.full.lock() = false;
            true
        }
        fn poison(&self) {
            *self.poisoned.lock() = true;
        }
    }

    #[test]
    fn policy_default_is_grow_unbounded() {
        assert_eq!(
            DeadlockPolicy::default(),
            DeadlockPolicy::Grow { max_capacity: None }
        );
    }

    #[test]
    fn enter_after_abort_fails() {
        let m = Monitor::new(DeadlockPolicy::default());
        m.abort();
        assert!(matches!(
            m.enter_block(BlockKind::Read, 1),
            Err(Error::Deadlocked)
        ));
    }

    /// Reserves `blocks.len()` live processes, then blocks one thread per
    /// entry in order (each thread leaves its blocked entry in place, as a
    /// permanently-stuck process would). Detection fires when the last one
    /// blocks.
    fn block_all(m: &Arc<Monitor>, blocks: &[(u64, BlockKind)]) {
        for _ in blocks {
            m.process_started();
        }
        for &(chan, kind) in blocks {
            let m2 = m.clone();
            std::thread::spawn(move || {
                crate::exec::install_process_locals("blocked");
                let _ = m2.enter_block(kind, chan);
            })
            .join()
            .unwrap();
        }
        // Let the settling delay of the final detection elapse.
        std::thread::sleep(Duration::from_millis(20));
    }

    #[test]
    fn all_read_blocked_is_true_deadlock() {
        let m = Monitor::new(DeadlockPolicy::default());
        let c1: Arc<FakeChan> = FakeChan::new(16, false);
        m.register_channel(1, Arc::downgrade(&c1) as Weak<dyn MonitoredChannel>);
        block_all(&m, &[(1, BlockKind::Read), (1, BlockKind::Read)]);
        assert!(m.is_aborted());
        assert!(*c1.poisoned.lock());
        assert_eq!(m.stats().true_deadlocks, 1);
    }

    #[test]
    fn write_blocked_grows_smallest_channel() {
        let m = Monitor::new(DeadlockPolicy::default());
        let small = FakeChan::new(8, true);
        let big = FakeChan::new(64, true);
        m.register_channel(1, Arc::downgrade(&small) as Weak<dyn MonitoredChannel>);
        m.register_channel(2, Arc::downgrade(&big) as Weak<dyn MonitoredChannel>);
        block_all(&m, &[(1, BlockKind::Write), (2, BlockKind::Write)]);
        assert!(!m.is_aborted());
        assert_eq!(*small.cap.lock(), 16, "smallest channel doubled");
        assert_eq!(*big.cap.lock(), 64, "larger channel untouched");
        assert_eq!(m.stats().growths, 1);
    }

    #[test]
    fn mixed_block_prefers_growth_over_abort() {
        let m = Monitor::new(DeadlockPolicy::default());
        let c = FakeChan::new(8, true);
        let empty = FakeChan::new(8, false);
        m.register_channel(7, Arc::downgrade(&c) as Weak<dyn MonitoredChannel>);
        m.register_channel(9, Arc::downgrade(&empty) as Weak<dyn MonitoredChannel>);
        block_all(&m, &[(7, BlockKind::Write), (9, BlockKind::Read)]);
        assert!(!m.is_aborted());
        assert_eq!(m.stats().growths, 1);
    }

    #[test]
    fn block_on_vanished_local_channel_vetoes_growth() {
        // A writer parked on a channel the monitor no longer sees (its
        // reader died mid-cascade and the registration followed the Shared
        // out) means a `WriteClosed` wake is in flight: the all-blocked
        // picture is transient and growing another channel would be pure
        // inflation. Only the EXTERNAL_CHANNEL sentinel may pass
        // unverified.
        let m = Monitor::new(DeadlockPolicy::default());
        let c = FakeChan::new(8, true);
        m.register_channel(7, Arc::downgrade(&c) as Weak<dyn MonitoredChannel>);
        block_all(&m, &[(7, BlockKind::Write), (9, BlockKind::Read)]);
        assert!(!m.is_aborted());
        assert_eq!(m.stats().growths, 0, "in-flight cascade must veto growth");
    }

    #[test]
    fn external_block_still_permits_growth() {
        // Distributed artificial deadlocks block on the sentinel id; the
        // monitor cannot introspect the remote side and must still be able
        // to grow a full local channel.
        let m = Monitor::new(DeadlockPolicy::default());
        let c = FakeChan::new(8, true);
        m.register_channel(7, Arc::downgrade(&c) as Weak<dyn MonitoredChannel>);
        block_all(&m, &[(7, BlockKind::Write), (EXTERNAL_CHANNEL, BlockKind::Read)]);
        assert!(!m.is_aborted());
        assert_eq!(m.stats().growths, 1);
    }

    #[test]
    fn grow_capped_at_max_becomes_true_deadlock() {
        let m = Monitor::new(DeadlockPolicy::Grow {
            max_capacity: Some(8),
        });
        let c = FakeChan::new(8, true); // already at max
        m.register_channel(1, Arc::downgrade(&c) as Weak<dyn MonitoredChannel>);
        block_all(&m, &[(1, BlockKind::Write)]);
        // Growth impossible: the monitor must not spin; it declares a true
        // deadlock and poisons the channel.
        assert!(m.is_aborted());
        assert!(*c.poisoned.lock());
    }

    #[test]
    fn foreign_thread_does_not_trigger_alone() {
        let m = Monitor::new(DeadlockPolicy::default());
        // One live process that is NOT blocked...
        let m1 = m.clone();
        std::thread::spawn(move || {
            crate::exec::install_process_locals("live");
            m1.process_started();
        })
        .join()
        .unwrap();
        // ...and a foreign (non-process) thread that blocks.
        m.enter_block(BlockKind::Read, 1).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(!m.is_aborted());
        m.exit_block();
    }

    #[test]
    fn exit_block_clears_state() {
        let m = Monitor::new(DeadlockPolicy::Ignore);
        m.enter_block(BlockKind::Read, 1).unwrap();
        m.exit_block();
        let st = m.state.lock();
        assert!(st.blocked.is_empty());
        assert_eq!(st.blocked_processes, 0);
    }

    #[test]
    fn ignore_policy_never_acts() {
        let m = Monitor::new(DeadlockPolicy::Ignore);
        let c = FakeChan::new(8, true);
        m.register_channel(1, Arc::downgrade(&c) as Weak<dyn MonitoredChannel>);
        let m2 = m.clone();
        std::thread::spawn(move || {
            crate::exec::install_process_locals("writer");
            m2.process_started();
            m2.enter_block(BlockKind::Write, 1).unwrap();
        })
        .join()
        .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(!m.is_aborted());
        assert_eq!(*c.cap.lock(), 8);
    }
}
