//! Tests for the channel observability layer: per-channel I/O counters and
//! the monitor's growth log (the raw material for the buffer-management
//! analysis of §3.5/§6.2).

use kpn_core::graphs::{hamming, mod_merge_dag, GraphOptions};
use kpn_core::stdlib::{Collect, Scale, Sequence};
use kpn_core::Network;
use std::sync::{Arc, Mutex};

#[test]
fn byte_counts_match_traffic() {
    let net = Network::new();
    let (aw, ar) = net.channel();
    let (bw, br) = net.channel();
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Sequence::new(0, 1000, aw));
    net.add(Scale::new(2, ar, bw));
    net.add(Collect::new(br, out.clone()));
    net.run().unwrap();
    // The report covers dropped channels: snapshot after completion.
    let report = net.channel_report();
    // Both channels carried 1000 i64s = 8000 bytes.
    assert_eq!(report.len(), 2);
    for (_id, stats) in &report {
        assert_eq!(stats.bytes_written, 8000, "{stats:?}");
        assert!(stats.peak_occupancy <= stats.capacity);
        assert!(stats.peak_occupancy > 0);
    }
}

#[test]
fn blocking_counters_reflect_backpressure() {
    // A tiny channel between a fast producer and a consumer forces many
    // write blocks; the consumer side blocks when the buffer runs dry.
    let net = Network::new();
    let (aw, ar) = net.channel_with_capacity(16);
    let out = Arc::new(Mutex::new(Vec::new()));
    net.add(Sequence::new(0, 2000, aw));
    net.add(Collect::new(ar, out.clone()));
    net.run().unwrap();
    let report = net.channel_report();
    let (_, stats) = &report[0];
    assert!(
        stats.write_blocks > 10,
        "2000 i64s through 16 bytes must block the writer often: {stats:?}"
    );
}

#[test]
fn growth_log_records_hamming_buffer_demand() {
    let net = Network::new();
    let opts = GraphOptions {
        channel_capacity: 16,
        ..Default::default()
    };
    let out = hamming(&net, 200, &opts);
    let report = net.run().unwrap();
    assert_eq!(out.lock().unwrap().len(), 200);
    // Every log entry doubles a capacity, starting from the initial 16.
    assert_eq!(
        report.monitor.growths as usize,
        report.monitor.growth_log.len()
    );
    assert!(!report.monitor.growth_log.is_empty());
    for (_chan, old, new) in &report.monitor.growth_log {
        assert_eq!(*new, old * 2, "growth doubles");
        assert!(*old >= 16);
    }
}

#[test]
fn growth_log_identifies_the_starved_channel() {
    // Figure 13: only the undersized "others" branch should need growth.
    let net = Network::new();
    let _out = mod_merge_dag(&net, 10, 200, 8);
    let report = net.run().unwrap();
    assert!(!report.monitor.growth_log.is_empty());
    let grown_channels: std::collections::HashSet<u64> = report
        .monitor
        .growth_log
        .iter()
        .map(|(c, _, _)| *c)
        .collect();
    assert_eq!(
        grown_channels.len(),
        1,
        "exactly one channel (the starved branch) grows: {:?}",
        report.monitor.growth_log
    );
    // It grew from the deliberately tiny 8-byte capacity.
    assert_eq!(report.monitor.growth_log[0].1, 8);
}
