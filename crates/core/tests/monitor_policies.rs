//! Regression guards for deadlock-policy behaviour on the example graphs.

use kpn_core::graphs::{fibonacci, fibonacci_reference, hamming, hamming_reference, GraphOptions};
use kpn_core::{DeadlockPolicy, Network, NetworkConfig};

#[test]
fn fibonacci_runs_without_any_monitor() {
    // The Fibonacci feedback network must complete under the `Ignore`
    // policy — proving its default-capacity execution never relies on
    // monitor intervention, which in turn means any monitor action on it
    // would be a false positive (the class of bug this test was written
    // against).
    let net = Network::with_config(NetworkConfig {
        deadlock_policy: DeadlockPolicy::Ignore,
        ..Default::default()
    });
    let out = fibonacci(&net, 20, &GraphOptions::default());
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), fibonacci_reference(20));
}

#[test]
fn hamming_with_ample_buffers_needs_no_monitor() {
    let net = Network::with_config(NetworkConfig {
        deadlock_policy: DeadlockPolicy::Ignore,
        ..Default::default()
    });
    let out = hamming(
        &net,
        64,
        &GraphOptions {
            channel_capacity: 64 * 1024, // plenty: no growth needed
            ..Default::default()
        },
    );
    net.run().unwrap();
    assert_eq!(*out.lock().unwrap(), hamming_reference(64));
}

#[test]
fn abort_policy_kills_artificially_deadlocking_graph() {
    // Under `Abort`, the Figure 13 graph (which only needs buffer growth)
    // is torn down instead — demonstrating the policy boundary.
    use kpn_core::graphs::mod_merge_dag;
    let net = Network::with_config(NetworkConfig {
        deadlock_policy: DeadlockPolicy::Abort,
        ..Default::default()
    });
    let _out = mod_merge_dag(&net, 10, 100, 8);
    assert!(net.run().is_err());
}
