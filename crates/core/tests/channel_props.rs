//! Property tests for the channel layer: FIFO byte semantics must hold
//! for every chunking, capacity, and splicing pattern.

use kpn_core::{channel_with_capacity, DataReader, DataWriter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary data written in arbitrary chunk sizes through an
    /// arbitrary-capacity channel arrives byte-identical, regardless of
    /// how the reader chunks its reads.
    #[test]
    fn chunking_never_corrupts(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        capacity in 1usize..512,
        write_chunk in 1usize..257,
        read_chunk in 1usize..257,
    ) {
        let (mut w, mut r) = channel_with_capacity(capacity);
        let expect = data.clone();
        let writer = std::thread::spawn(move || {
            for chunk in data.chunks(write_chunk) {
                w.write_all(chunk).unwrap();
            }
        });
        let mut got = Vec::with_capacity(expect.len());
        let mut buf = vec![0u8; read_chunk];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        writer.join().unwrap();
        prop_assert_eq!(got, expect);
    }

    /// A chain of writer retirements (repeated Figure 10 reconfigurations)
    /// delivers every byte of every stage, in stage order, exactly once.
    #[test]
    fn retirement_chain_preserves_bytes(
        stages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..128), 1..6),
    ) {
        // Build stage channels back to front: the reader drains stage 0's
        // buffered data, then stage 1's, etc.
        let mut expect = Vec::new();
        for s in &stages {
            expect.extend_from_slice(s);
        }
        // Head channel: the one the consumer reads.
        let (mut head_w, mut head_r) = channel_with_capacity(4096);
        head_w.write_all(&stages[0]).unwrap();
        let mut tail_w = head_w; // the writer that retires next
        for s in &stages[1..] {
            let (mut up_w, up_r) = channel_with_capacity(4096);
            up_w.write_all(s).unwrap();
            tail_w.retire(up_r).unwrap();
            tail_w = up_w;
        }
        drop(tail_w); // close the final writer: EOF after all stages
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            let n = head_r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(got, expect);
    }

    /// Typed values survive any channel capacity (values straddle buffer
    /// wrap-arounds at small capacities).
    #[test]
    fn typed_stream_any_capacity(
        values in proptest::collection::vec(any::<i64>(), 0..256),
        capacity in 1usize..64,
    ) {
        let (w, r) = channel_with_capacity(capacity);
        let expect = values.clone();
        let writer = std::thread::spawn(move || {
            let mut dw = DataWriter::new(w);
            for v in &values {
                dw.write_i64(*v).unwrap();
            }
        });
        let mut dr = DataReader::new(r);
        for e in &expect {
            prop_assert_eq!(dr.read_i64().unwrap(), *e);
        }
        prop_assert!(dr.read_i64().is_err());
        writer.join().unwrap();
    }

    /// Mixed-type records interleave correctly at any capacity.
    #[test]
    fn mixed_records_any_capacity(
        records in proptest::collection::vec(
            (any::<i64>(), any::<f64>().prop_filter("nan", |f| !f.is_nan()), any::<bool>()),
            0..64),
        capacity in 8usize..128,
    ) {
        let (w, r) = channel_with_capacity(capacity);
        let expect = records.clone();
        let writer = std::thread::spawn(move || {
            let mut dw = DataWriter::new(w);
            for (i, f, b) in &records {
                dw.write_i64(*i).unwrap();
                dw.write_f64(*f).unwrap();
                dw.write_bool(*b).unwrap();
            }
        });
        let mut dr = DataReader::new(r);
        for (i, f, b) in &expect {
            prop_assert_eq!(dr.read_i64().unwrap(), *i);
            prop_assert_eq!(dr.read_f64().unwrap(), *f);
            prop_assert_eq!(dr.read_bool().unwrap(), *b);
        }
        writer.join().unwrap();
    }
}
