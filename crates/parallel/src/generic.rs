//! The generic Producer, Worker, and Consumer processes (§5.1).
//!
//! All application logic lives in tasks; these processes only move and run
//! them, so "the creation of a new application simply requires the
//! implementation of application-specific producer, worker, and consumer
//! Tasks".

use crate::task::{TaskEnv, TaskEnvelope, TaskTypeRegistry};
use kpn_codec::{ObjectReader, ObjectWriter};
use kpn_core::{ChannelReader, ChannelWriter, Error, Iterative, ProcessCtx, Result};
use std::sync::Arc;

/// Supplies the stream of work tasks — the producer-side `Task` whose
/// repeated `run()` calls yield worker tasks.
pub trait TaskSource: Send + 'static {
    /// The next task, or `None` when the work is exhausted (the producer
    /// then closes its output, starting the §3.4 termination cascade).
    fn next(&mut self) -> Result<Option<TaskEnvelope>>;
}

impl<F> TaskSource for F
where
    F: FnMut() -> Result<Option<TaskEnvelope>> + Send + 'static,
{
    fn next(&mut self) -> Result<Option<TaskEnvelope>> {
        self()
    }
}

/// Receives result envelopes — the consumer-side `Task`.
pub trait TaskSink: Send + 'static {
    /// Consumes one result. Returning `false` stops the consumer early
    /// (e.g. the factorization consumer stops once a factor is found),
    /// triggering the termination cascade.
    fn consume(&mut self, result: TaskEnvelope) -> Result<bool>;
}

impl<F> TaskSink for F
where
    F: FnMut(TaskEnvelope) -> Result<bool> + Send + 'static,
{
    fn consume(&mut self, result: TaskEnvelope) -> Result<bool> {
        self(result)
    }
}

/// Generic producer: writes task envelopes until its source is exhausted.
pub struct Producer {
    source: Box<dyn TaskSource>,
    out: ObjectWriter,
}

impl Producer {
    /// A producer draining `source` onto `out`.
    pub fn new(source: impl TaskSource, out: ChannelWriter) -> Self {
        Producer {
            source: Box::new(source),
            out: ObjectWriter::new(out),
        }
    }
}

impl Iterative for Producer {
    fn name(&self) -> String {
        "Producer".into()
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        match self.source.next()? {
            Some(envelope) => self.out.write(&envelope),
            None => Err(Error::Eof), // graceful: close output, cascade
        }
    }
}

/// Generic worker: reads a task, runs it, writes the result
/// ("repeatedly reads a Task from its input channel, runs it, and then
/// writes the result to its output channel").
pub struct Worker {
    registry: Arc<TaskTypeRegistry>,
    env: TaskEnv,
    input: ObjectReader,
    out: ObjectWriter,
}

impl Worker {
    /// A worker at baseline speed.
    pub fn new(registry: Arc<TaskTypeRegistry>, input: ChannelReader, out: ChannelWriter) -> Self {
        Worker {
            registry,
            env: TaskEnv::default(),
            input: ObjectReader::new(input),
            out: ObjectWriter::new(out),
        }
    }

    /// Sets the worker's simulated CPU speed (Table 1's classes).
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        self.env.speed = speed;
        self
    }
}

impl Iterative for Worker {
    fn name(&self) -> String {
        "Worker".into()
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let envelope: TaskEnvelope = self.input.read()?;
        let task = self.registry.decode(&envelope)?;
        let result = task.run(&self.env)?;
        self.out.write(&result)
    }
}

/// Generic consumer: reads result envelopes into its sink; stops early if
/// the sink says so.
pub struct Consumer {
    sink: Box<dyn TaskSink>,
    input: ObjectReader,
}

impl Consumer {
    /// A consumer feeding `sink` from `input`.
    pub fn new(input: ChannelReader, sink: impl TaskSink) -> Self {
        Consumer {
            sink: Box::new(sink),
            input: ObjectReader::new(input),
        }
    }
}

impl Iterative for Consumer {
    fn name(&self) -> String {
        "Consumer".into()
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let envelope: TaskEnvelope = self.input.read()?;
        if self.sink.consume(envelope)? {
            Ok(())
        } else {
            Err(Error::Eof) // graceful early stop
        }
    }
}

/// Builds the Figure 1 pipeline: Producer → Worker → Consumer.
pub fn pipeline(
    net: &kpn_core::Network,
    registry: Arc<TaskTypeRegistry>,
    source: impl TaskSource,
    sink: impl TaskSink,
) {
    let (tw, tr) = net.channel();
    let (rw, rr) = net.channel();
    net.add(Producer::new(source, tw));
    net.add(Worker::new(registry, tr, rw));
    net.add(Consumer::new(rr, sink));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::WorkTask;
    use kpn_core::Network;
    use serde::{Deserialize, Serialize};
    use std::sync::Mutex;

    #[derive(Serialize, Deserialize)]
    pub struct Square(i64);

    impl WorkTask for Square {
        fn run(self: Box<Self>, _env: &TaskEnv) -> Result<TaskEnvelope> {
            TaskEnvelope::pack("result", &(self.0 * self.0))
        }
    }

    fn registry() -> Arc<TaskTypeRegistry> {
        let mut reg = TaskTypeRegistry::new();
        reg.register::<Square>("Square");
        reg.into_shared()
    }

    fn counting_source(n: i64) -> impl TaskSource {
        let mut i = 0;
        move || {
            if i < n {
                i += 1;
                Ok(Some(TaskEnvelope::pack("Square", &Square(i))?))
            } else {
                Ok(None)
            }
        }
    }

    #[test]
    fn pipeline_squares_all_tasks() {
        let net = Network::new();
        let results = Arc::new(Mutex::new(Vec::new()));
        let sink_results = results.clone();
        pipeline(
            &net,
            registry(),
            counting_source(10),
            move |env: TaskEnvelope| {
                sink_results.lock().unwrap().push(env.unpack::<i64>()?);
                Ok(true)
            },
        );
        net.run().unwrap();
        assert_eq!(
            *results.lock().unwrap(),
            (1..=10).map(|i| i * i).collect::<Vec<i64>>()
        );
    }

    #[test]
    fn consumer_early_stop_cascades() {
        let net = Network::new();
        let results = Arc::new(Mutex::new(Vec::new()));
        let sink_results = results.clone();
        pipeline(
            &net,
            registry(),
            counting_source(1_000_000), // would run forever otherwise
            move |env: TaskEnvelope| {
                let v = env.unpack::<i64>()?;
                let mut r = sink_results.lock().unwrap();
                r.push(v);
                Ok(r.len() < 5)
            },
        );
        net.run().unwrap();
        assert_eq!(results.lock().unwrap().len(), 5);
    }

    #[test]
    fn worker_speed_must_be_positive() {
        let net = Network::new();
        let (_, r) = net.channel();
        let (w, _) = net.channel();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Worker::new(registry(), r, w).with_speed(0.0)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn unknown_task_type_fails_worker() {
        let net = Network::new();
        let results = Arc::new(Mutex::new(Vec::new()));
        let sink_results = results.clone();
        let mut sent = false;
        pipeline(
            &net,
            registry(),
            move || {
                if sent {
                    return Ok(None);
                }
                sent = true;
                Ok(Some(TaskEnvelope::pack("Mystery", &1i64)?))
            },
            move |env: TaskEnvelope| {
                sink_results.lock().unwrap().push(env.unpack::<i64>()?);
                Ok(true)
            },
        );
        // The worker fails (non-graceful) — the network reports it.
        let err = net.run();
        assert!(err.is_err());
        assert!(results.lock().unwrap().is_empty());
    }
}
