//! # kpn-parallel — embarrassingly parallel computing on process networks
//!
//! Everything in §5 of the paper:
//!
//! * [`task`] — the `Task` active-object model: work travels as
//!   [`TaskEnvelope`]s, decoded through a [`TaskTypeRegistry`];
//! * [`generic`] — the generic [`Producer`], [`Worker`], [`Consumer`]
//!   processes and the Figure 1 [`pipeline`];
//! * [`mod@meta_static`] — Figure 16: [`Scatter`]/[`Gather`] with equal task
//!   counts per worker (lock-step with the slowest worker);
//! * [`mod@meta_dynamic`] — Figures 17/18: [`Direct`] + indexed merge
//!   ([`Turnstile`] + [`Select`]) for on-demand load balancing, determinate
//!   output despite the Turnstile's internal nondeterminism;
//! * [`tasks`] — the §5.2 weak-RSA [`FactorTask`] and the calibrated
//!   [`SyntheticTask`] used to emulate the paper's heterogeneous cluster;
//! * [`distributed`] — registration glue to ship Workers and routing
//!   stages to `kpn-net` compute servers.

#![warn(missing_docs)]

pub mod distributed;
pub mod generic;
pub mod meta_dynamic;
pub mod meta_static;
pub mod task;
pub mod tasks;

pub use distributed::{
    factor_cluster_run, meta_dynamic_distributed, meta_static_distributed, parallel_registry,
    register_parallel_processes, FactorRunReport,
};
pub use generic::{pipeline, Consumer, Producer, TaskSink, TaskSource, Worker};
pub use meta_dynamic::{meta_dynamic, meta_dynamic_with, Direct, Select, Turnstile};
pub use meta_static::{meta_static, meta_static_with, Gather, Scatter};
pub use task::{TaskEnv, TaskEnvelope, TaskTypeRegistry, WorkTask};
pub use tasks::{
    factor_task_stream, register_stock_tasks, synthetic_task_stream, FactorTask, SyntheticTask,
};

#[cfg(test)]
mod determinacy_tests {
    //! The §5 claim under test: static and dynamic schemas deliver results
    //! to the consumer in identical order, equal to the single-worker
    //! pipeline.

    use super::*;
    use kpn_core::Network;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn collect(schema: &str, n_workers: usize, n_tasks: u64) -> Vec<u64> {
        let mut reg = TaskTypeRegistry::new();
        register_stock_tasks(&mut reg);
        let reg = reg.into_shared();
        let net = Network::new();
        let (task_w, task_r) = net.channel();
        let (res_w, res_r) = net.channel();
        net.add(Producer::new(synthetic_task_stream(n_tasks, 1.0), task_w));
        let speeds: Vec<f64> = (0..n_workers).map(|i| 1.0 + (i % 3) as f64).collect();
        match schema {
            "static" => meta_static(&net, reg, &speeds, task_r, res_w),
            "dynamic" => meta_dynamic(&net, reg, &speeds, task_r, res_w),
            "pipeline" => net.add(Worker::new(reg, task_r, res_w)),
            other => panic!("unknown schema {other}"),
        }
        let results = Arc::new(Mutex::new(Vec::new()));
        let sink = results.clone();
        net.add(Consumer::new(res_r, move |env: TaskEnvelope| {
            sink.lock().push(env.unpack::<u64>()?);
            Ok(true)
        }));
        net.run().unwrap();
        let r = results.lock().clone();
        r
    }

    #[test]
    fn all_three_schemas_agree() {
        let reference: Vec<u64> = (0..30).collect();
        assert_eq!(collect("pipeline", 1, 30), reference);
        assert_eq!(collect("static", 4, 30), reference);
        assert_eq!(collect("dynamic", 4, 30), reference);
    }

    #[test]
    fn schemas_agree_across_worker_counts() {
        for n in [1usize, 2, 5, 9] {
            assert_eq!(collect("static", n, 18), collect("dynamic", n, 18), "n={n}");
        }
    }
}
