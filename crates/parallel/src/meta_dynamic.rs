//! MetaDynamic: parallel workers with on-demand load balancing
//! (Figures 17/18).
//!
//! A new task is sent to a worker for every result collected from it, so
//! fast workers process more tasks and slow workers never hold the others
//! back (§5.2). The composite is made of:
//!
//! * [`Direct`] (`d`) — reads the next worker index from the shared index
//!   stream and forwards one task envelope to that worker;
//! * [`Turnstile`] (`t`) — passes results through *in the order they
//!   become available* and emits the index stream recording that order.
//!   This is the one deliberately nondeterminate component (its arrival
//!   order depends on execution speeds);
//! * [`Select`] (`s`) — consumes the same index stream and restores *task
//!   order*, so the consumer sees exactly the single-worker/static-schema
//!   output. Despite the Turnstile, the composition is determinate in its
//!   input-output relation — the "well behaved" MetaDynamic schema.
//!
//! The initial index sequence `0..N-1` (the `(n)` of Figure 18) is
//! prepended with a stock `Cons` process, and the stream is fanned out to
//! Direct and Select with a stock `Duplicate` — byte-level processes from
//! `kpn-core`.

use crate::generic::Worker;
use crate::task::TaskTypeRegistry;
use kpn_codec::{ObjectReader, ObjectWriter};
use kpn_core::stdlib::{Cons, Duplicate, Sequence};
use kpn_core::{
    ChannelReader, ChannelWriter, DataReader, DataWriter, Error, Iterative, Network, Process,
    ProcessCtx, Result,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// Figure 17's `d`: task dispatch driven by the index stream.
///
/// When the task stream is exhausted, `Direct` closes its worker outputs
/// (so the workers drain and finish) but keeps *consuming* the index
/// stream until it ends. Dropping the index reader immediately would
/// cascade a close through the index `Duplicate`/`Cons` into the
/// Turnstile's index output and could kill the Turnstile before the last
/// in-flight results reach the Select — losing data the Kahn semantics
/// say must be delivered.
pub struct Direct {
    tasks: Option<ObjectReader>,
    index: DataReader,
    outputs: Vec<ObjectWriter>,
}

impl Direct {
    /// A dispatcher over `outputs.len()` workers.
    pub fn new(tasks: ChannelReader, index: ChannelReader, outputs: Vec<ChannelWriter>) -> Self {
        assert!(!outputs.is_empty(), "Direct needs at least one output");
        Direct {
            tasks: Some(ObjectReader::new(tasks)),
            index: DataReader::new(index),
            outputs: outputs.into_iter().map(ObjectWriter::new).collect(),
        }
    }
}

impl Iterative for Direct {
    fn name(&self) -> String {
        format!("Direct(x{})", self.outputs.len())
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let Some(tasks) = self.tasks.as_mut() else {
            // Draining: keep the index path alive until it ends naturally
            // (the Turnstile closes it once every worker stream ended).
            self.index.read_i64()?;
            return Ok(());
        };
        // Task first: when the producer is exhausted we stop dispatching
        // without waiting for another completion.
        match tasks.read_raw() {
            Ok(record) => {
                let w = self.index.read_i64()? as usize;
                let out = self
                    .outputs
                    .get_mut(w)
                    .ok_or_else(|| Error::Graph(format!("index stream named worker {w}")))?;
                out.write_raw(&record)
            }
            Err(Error::Eof) => {
                // Let the workers see EOF and finish their queues.
                self.tasks = None;
                self.outputs.clear();
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

/// Figure 18's `t`: merges worker results in arrival order and reports
/// that order on the index stream. Internally one pump process per input
/// feeds a shared queue — the queue's arrival order is the sanctioned
/// nondeterminism.
pub struct Turnstile {
    inputs: Option<Vec<ChannelReader>>,
    data_out: ObjectWriter,
    index_out: DataWriter,
    merged: Option<crossbeam::channel::Receiver<(usize, Vec<u8>)>>,
}

impl Turnstile {
    /// A turnstile over the given worker-result channels.
    pub fn new(
        inputs: Vec<ChannelReader>,
        data_out: ChannelWriter,
        index_out: ChannelWriter,
    ) -> Self {
        assert!(!inputs.is_empty(), "Turnstile needs at least one input");
        Turnstile {
            inputs: Some(inputs),
            data_out: ObjectWriter::new(data_out),
            index_out: DataWriter::new(index_out),
            merged: None,
        }
    }
}

impl Iterative for Turnstile {
    fn name(&self) -> String {
        "Turnstile".into()
    }

    fn on_start(&mut self, ctx: &ProcessCtx) -> Result<()> {
        let inputs = self.inputs.take().expect("started twice");
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, Vec<u8>)>();
        for (w, input) in inputs.into_iter().enumerate() {
            let tx = tx.clone();
            ctx.spawn(Box::new(kpn_core::FnProcess::new(
                format!("turnstile-pump-{w}"),
                move |_| {
                    let mut reader = ObjectReader::new(input);
                    loop {
                        match reader.read_raw() {
                            Ok(record) => {
                                if tx.send((w, record)).is_err() {
                                    // Turnstile gone (downstream closed):
                                    // retire; dropping `reader` cancels the
                                    // worker upstream.
                                    return Ok(());
                                }
                            }
                            Err(Error::Eof) => return Ok(()),
                            Err(e) => return Err(e),
                        }
                    }
                },
            )));
        }
        self.merged = Some(rx);
        Ok(())
    }

    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let rx = self.merged.as_ref().expect("on_start ran");
        match rx.recv() {
            Ok((w, record)) => {
                self.index_out.write_i64(w as i64)?;
                self.data_out.write_raw(&record)
            }
            // All pumps ended: every worker stream hit EOF.
            Err(_) => Err(Error::Eof),
        }
    }
}

/// Figure 18's `s`: restores task order. The `k`-th index value names the
/// worker of task `k`; for `k ≥ N` it equally records the worker of
/// arrival `k − N`, which is how arrivals are demultiplexed into
/// per-worker queues without extra tagging.
pub struct Select {
    data: ObjectReader,
    index: DataReader,
    out: ObjectWriter,
    n_workers: usize,
    /// All index values read so far (position-addressed).
    indices: Vec<usize>,
    /// Per-worker queues of results not yet emitted.
    queues: Vec<VecDeque<Vec<u8>>>,
    /// Next task to emit.
    k: usize,
    /// Arrivals pulled from the turnstile so far.
    arrivals: usize,
}

impl Select {
    /// A select stage over `n_workers` workers.
    pub fn new(
        data: ChannelReader,
        index: ChannelReader,
        out: ChannelWriter,
        n_workers: usize,
    ) -> Self {
        assert!(n_workers > 0);
        Select {
            data: ObjectReader::new(data),
            index: DataReader::new(index),
            out: ObjectWriter::new(out),
            n_workers,
            indices: Vec::new(),
            queues: vec![VecDeque::new(); n_workers],
            k: 0,
            arrivals: 0,
        }
    }

    /// The index value at stream position `p`, reading forward as needed.
    /// Values up to position `N + arrivals` are guaranteed to have been
    /// produced (the turnstile emits one index value per arrival, after
    /// the initial injected sequence).
    fn index_at(&mut self, p: usize) -> Result<usize> {
        while self.indices.len() <= p {
            let v = self.index.read_i64()?;
            if v < 0 || v as usize >= self.n_workers {
                return Err(Error::Graph(format!("index stream value {v} out of range")));
            }
            self.indices.push(v as usize);
        }
        Ok(self.indices[p])
    }
}

impl Iterative for Select {
    fn name(&self) -> String {
        "Select".into()
    }

    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let w_k = self.index_at(self.k)?;
        while self.queues[w_k].is_empty() {
            let record = self.data.read_raw()?; // Eof here ends the stage
            let tag = self.index_at(self.n_workers + self.arrivals)?;
            self.queues[tag].push_back(record);
            self.arrivals += 1;
        }
        let record = self.queues[w_k].pop_front().expect("nonempty");
        self.out.write_raw(&record)?;
        self.k += 1;
        Ok(())
    }
}

/// Builds the MetaDynamic composite between `task_in` and `result_out`
/// with a caller-supplied worker factory.
pub fn meta_dynamic_with<F>(
    net: &Network,
    n_workers: usize,
    task_in: ChannelReader,
    result_out: ChannelWriter,
    mut worker: F,
) where
    F: FnMut(usize, ChannelReader, ChannelWriter) -> Box<dyn Process>,
{
    assert!(n_workers > 0);
    let mut to_w = Vec::with_capacity(n_workers);
    let mut from_w = Vec::with_capacity(n_workers);
    for i in 0..n_workers {
        let (tw, tr) = net.channel();
        let (rw, rr) = net.channel();
        net.add_process(worker(i, tr, rw));
        to_w.push(tw);
        from_w.push(rr);
    }
    // Index plumbing: cons(0..N-1, turnstile index) duplicated to Direct
    // and Select (Figure 18).
    let (init_w, init_r) = net.channel();
    let (t_idx_w, t_idx_r) = net.channel();
    let (idx_full_w, idx_full_r) = net.channel();
    let (idx_direct_w, idx_direct_r) = net.channel();
    let (idx_select_w, idx_select_r) = net.channel();
    let (t_data_w, t_data_r) = net.channel();
    net.add(Sequence::new(0, n_workers as u64, init_w));
    net.add(Cons::new(init_r, t_idx_r, idx_full_w));
    net.add(Duplicate::two(idx_full_r, idx_direct_w, idx_select_w));
    net.add(Direct::new(task_in, idx_direct_r, to_w));
    net.add(Turnstile::new(from_w, t_data_w, t_idx_w));
    net.add(Select::new(t_data_r, idx_select_r, result_out, n_workers));
}

/// Builds MetaDynamic with generic [`Worker`]s at the given speeds.
pub fn meta_dynamic(
    net: &Network,
    registry: Arc<TaskTypeRegistry>,
    speeds: &[f64],
    task_in: ChannelReader,
    result_out: ChannelWriter,
) {
    let speeds = speeds.to_vec();
    meta_dynamic_with(net, speeds.len(), task_in, result_out, move |i, r, w| {
        Box::new(kpn_core::IterativeProcess::new(
            Worker::new(registry.clone(), r, w).with_speed(speeds[i]),
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::{Consumer, Producer};
    use crate::task::{TaskEnv, TaskEnvelope, WorkTask};
    use parking_lot::Mutex;
    use serde::{Deserialize, Serialize};
    use std::time::Duration;

    /// Sleeps `millis`, then echoes its sequence number — slow enough to
    /// force genuine interleaving, small enough to keep tests quick.
    #[derive(Serialize, Deserialize)]
    struct SleepEcho {
        seq: i64,
        millis: u64,
    }

    impl WorkTask for SleepEcho {
        fn run(self: Box<Self>, env: &TaskEnv) -> Result<TaskEnvelope> {
            let scaled = (self.millis as f64 / env.speed).round() as u64;
            std::thread::sleep(Duration::from_millis(scaled));
            TaskEnvelope::pack("result", &self.seq)
        }
    }

    fn registry() -> Arc<TaskTypeRegistry> {
        let mut reg = TaskTypeRegistry::new();
        reg.register::<SleepEcho>("SleepEcho");
        reg.into_shared()
    }

    fn run_dynamic(speeds: &[f64], task_millis: Vec<u64>) -> Vec<i64> {
        let net = Network::new();
        let (task_w, task_r) = net.channel();
        let (res_w, res_r) = net.channel();
        let mut it = task_millis.into_iter().enumerate();
        net.add(Producer::new(
            move || match it.next() {
                Some((seq, millis)) => Ok(Some(TaskEnvelope::pack(
                    "SleepEcho",
                    &SleepEcho {
                        seq: seq as i64,
                        millis,
                    },
                )?)),
                None => Ok(None),
            },
            task_w,
        ));
        meta_dynamic(&net, registry(), speeds, task_r, res_w);
        let results = Arc::new(Mutex::new(Vec::new()));
        let sink = results.clone();
        net.add(Consumer::new(res_r, move |env: TaskEnvelope| {
            sink.lock().push(env.unpack::<i64>()?);
            Ok(true)
        }));
        net.run().unwrap();
        let r = results.lock().clone();
        r
    }

    #[test]
    fn results_restored_to_task_order() {
        // Uneven task durations force out-of-order arrivals at the
        // turnstile; Select must still emit 0,1,2,… (§5: output identical
        // to the static schema).
        let millis = vec![30, 1, 1, 25, 1, 1, 20, 1, 1, 15, 1, 1];
        let n = millis.len() as i64;
        let got = run_dynamic(&[1.0, 1.0, 1.0], millis);
        assert_eq!(got, (0..n).collect::<Vec<i64>>());
    }

    #[test]
    fn heterogeneous_speeds_preserve_order() {
        let millis = vec![10; 16];
        let got = run_dynamic(&[2.0, 0.5, 1.0, 0.25], millis);
        assert_eq!(got, (0..16).collect::<Vec<i64>>());
    }

    #[test]
    fn single_worker_degenerates_to_pipeline() {
        let got = run_dynamic(&[1.0], vec![1, 1, 1, 1]);
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fewer_tasks_than_workers() {
        let got = run_dynamic(&[1.0, 1.0, 1.0, 1.0, 1.0], vec![5, 5]);
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn fast_workers_take_more_tasks() {
        // Instrument by counting per-worker tasks via the index stream:
        // run the schema manually with a tapped index channel.
        let net = Network::new();
        let (task_w, task_r) = net.channel();
        let (res_w, res_r) = net.channel();
        let n_tasks = 24;
        let mut seq = 0i64;
        net.add(Producer::new(
            move || {
                if seq < n_tasks {
                    let t = SleepEcho { seq, millis: 8 };
                    seq += 1;
                    Ok(Some(TaskEnvelope::pack("SleepEcho", &t)?))
                } else {
                    Ok(None)
                }
            },
            task_w,
        ));
        // Worker 0 is 8x faster than worker 1.
        let counts = Arc::new(Mutex::new(vec![0usize; 2]));
        let counts_in = counts.clone();
        let reg = registry();
        meta_dynamic_with(&net, 2, task_r, res_w, move |i, r, w| {
            let speed = if i == 0 { 8.0 } else { 1.0 };
            let counts = counts_in.clone();
            let reg = reg.clone();
            Box::new(kpn_core::FnProcess::new(
                format!("countingworker-{i}"),
                move |_| {
                    let mut input = ObjectReader::new(r);
                    let mut out = ObjectWriter::new(w);
                    let env = TaskEnv { speed };
                    loop {
                        let envelope: TaskEnvelope = match input.read() {
                            Ok(e) => e,
                            Err(Error::Eof) => return Ok(()),
                            Err(e) => return Err(e),
                        };
                        counts.lock()[i] += 1;
                        let task = reg.decode(&envelope)?;
                        out.write(&task.run(&env)?)?;
                    }
                },
            ))
        });
        let results = Arc::new(Mutex::new(Vec::new()));
        let sink = results.clone();
        net.add(Consumer::new(res_r, move |env: TaskEnvelope| {
            sink.lock().push(env.unpack::<i64>()?);
            Ok(true)
        }));
        net.run().unwrap();
        assert_eq!(*results.lock(), (0..n_tasks).collect::<Vec<i64>>());
        let counts = counts.lock();
        assert!(
            counts[0] > counts[1],
            "fast worker should process more tasks: {counts:?}"
        );
    }

    #[test]
    fn early_consumer_stop_terminates_all() {
        let net = Network::new();
        let (task_w, task_r) = net.channel();
        let (res_w, res_r) = net.channel();
        let mut seq = 0i64;
        net.add(Producer::new(
            move || {
                // Effectively unbounded task stream.
                let t = SleepEcho { seq, millis: 1 };
                seq += 1;
                Ok(Some(TaskEnvelope::pack("SleepEcho", &t)?))
            },
            task_w,
        ));
        meta_dynamic(&net, registry(), &[1.0, 1.0, 1.0], task_r, res_w);
        let results = Arc::new(Mutex::new(Vec::new()));
        let sink = results.clone();
        net.add(Consumer::new(res_r, move |env: TaskEnvelope| {
            let mut r = sink.lock();
            r.push(env.unpack::<i64>()?);
            Ok(r.len() < 10)
        }));
        net.run().unwrap();
        assert_eq!(*results.lock(), (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn zero_tasks_terminate_cleanly() {
        // Producer produces nothing: the whole composite must wind down
        // without a single task flowing.
        let got = run_dynamic(&[1.0, 1.0, 1.0], vec![]);
        assert!(got.is_empty());
    }

    #[test]
    fn many_tasks_few_workers_stress() {
        let got = run_dynamic(&[1.0, 2.0], vec![0; 200]);
        assert_eq!(got, (0..200).collect::<Vec<i64>>());
    }
}
