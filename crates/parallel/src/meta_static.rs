//! MetaStatic: parallel workers with static load balancing (Figure 16).
//!
//! `Scatter` hands one task to each of N workers in a fixed round-robin;
//! `Gather` collects one result from each worker in the same order, so the
//! composition is — from the producer's and consumer's point of view —
//! equivalent to a single worker: identical results in identical order.
//! The price (§5.2): every round advances in lock-step with its slowest
//! worker.

use crate::generic::Worker;
use crate::task::TaskTypeRegistry;
use kpn_codec::{ObjectReader, ObjectWriter};
use kpn_core::{ChannelReader, ChannelWriter, Iterative, Network, ProcessCtx, Result};
use std::sync::Arc;

/// Distributes task envelopes round-robin, one per worker (Figure 16's
/// `s`). Type-independent: forwards raw records.
pub struct Scatter {
    input: ObjectReader,
    outputs: Vec<ObjectWriter>,
    next: usize,
}

impl Scatter {
    /// A scatter stage over `outputs.len()` workers.
    pub fn new(input: ChannelReader, outputs: Vec<ChannelWriter>) -> Self {
        assert!(!outputs.is_empty(), "Scatter needs at least one output");
        Scatter {
            input: ObjectReader::new(input),
            outputs: outputs.into_iter().map(ObjectWriter::new).collect(),
            next: 0,
        }
    }
}

impl Iterative for Scatter {
    fn name(&self) -> String {
        format!("Scatter(x{})", self.outputs.len())
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let record = self.input.read_raw()?;
        self.outputs[self.next].write_raw(&record)?;
        self.next = (self.next + 1) % self.outputs.len();
        Ok(())
    }
}

/// Collects result envelopes round-robin, one per worker (Figure 16's
/// `g`) — "in the same order in which tasks are sent to the workers by the
/// scatter process".
pub struct Gather {
    inputs: Vec<ObjectReader>,
    output: ObjectWriter,
    next: usize,
}

impl Gather {
    /// A gather stage over `inputs.len()` workers.
    pub fn new(inputs: Vec<ChannelReader>, output: ChannelWriter) -> Self {
        assert!(!inputs.is_empty(), "Gather needs at least one input");
        Gather {
            inputs: inputs.into_iter().map(ObjectReader::new).collect(),
            output: ObjectWriter::new(output),
            next: 0,
        }
    }
}

impl Iterative for Gather {
    fn name(&self) -> String {
        format!("Gather(x{})", self.inputs.len())
    }
    fn step(&mut self, _ctx: &ProcessCtx) -> Result<()> {
        let record = self.inputs[self.next].read_raw()?;
        self.output.write_raw(&record)?;
        self.next = (self.next + 1) % self.inputs.len();
        Ok(())
    }
}

/// Builds the MetaStatic composite between `task_in` and `result_out`
/// using a caller-supplied worker factory (index → worker process), so
/// heterogeneous speeds can be modelled. Returns nothing: processes are
/// added to `net`.
pub fn meta_static_with<F>(
    net: &Network,
    n_workers: usize,
    task_in: ChannelReader,
    result_out: ChannelWriter,
    mut worker: F,
) where
    F: FnMut(usize, ChannelReader, ChannelWriter) -> Box<dyn kpn_core::Process>,
{
    assert!(n_workers > 0);
    let mut to_w = Vec::with_capacity(n_workers);
    let mut from_w = Vec::with_capacity(n_workers);
    for i in 0..n_workers {
        let (tw, tr) = net.channel();
        let (rw, rr) = net.channel();
        net.add_process(worker(i, tr, rw));
        to_w.push(tw);
        from_w.push(rr);
    }
    net.add(Scatter::new(task_in, to_w));
    net.add(Gather::new(from_w, result_out));
}

/// Builds MetaStatic with `n_workers` generic [`Worker`]s running at the
/// given speeds (`speeds.len() == n_workers`).
pub fn meta_static(
    net: &Network,
    registry: Arc<TaskTypeRegistry>,
    speeds: &[f64],
    task_in: ChannelReader,
    result_out: ChannelWriter,
) {
    let speeds = speeds.to_vec();
    meta_static_with(net, speeds.len(), task_in, result_out, move |i, r, w| {
        Box::new(kpn_core::IterativeProcess::new(
            Worker::new(registry.clone(), r, w).with_speed(speeds[i]),
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::{Consumer, Producer};
    use crate::task::{TaskEnv, TaskEnvelope, WorkTask};
    use serde::{Deserialize, Serialize};
    use std::sync::Mutex;

    #[derive(Serialize, Deserialize)]
    struct AddOne(i64);

    impl WorkTask for AddOne {
        fn run(self: Box<Self>, _env: &TaskEnv) -> Result<TaskEnvelope> {
            TaskEnvelope::pack("result", &(self.0 + 1))
        }
    }

    fn registry() -> Arc<TaskTypeRegistry> {
        let mut reg = TaskTypeRegistry::new();
        reg.register::<AddOne>("AddOne");
        reg.into_shared()
    }

    fn run_static(n_workers: usize, n_tasks: i64) -> Vec<i64> {
        let net = Network::new();
        let (task_w, task_r) = net.channel();
        let (res_w, res_r) = net.channel();
        let mut i = 0;
        net.add(Producer::new(
            move || {
                if i < n_tasks {
                    i += 1;
                    Ok(Some(TaskEnvelope::pack("AddOne", &AddOne(i))?))
                } else {
                    Ok(None)
                }
            },
            task_w,
        ));
        let speeds = vec![1.0; n_workers];
        meta_static(&net, registry(), &speeds, task_r, res_w);
        let results = Arc::new(Mutex::new(Vec::new()));
        let sink_results = results.clone();
        net.add(Consumer::new(res_r, move |env: TaskEnvelope| {
            sink_results.lock().unwrap().push(env.unpack::<i64>()?);
            Ok(true)
        }));
        net.run().unwrap();
        let r = results.lock().unwrap().clone();
        r
    }

    #[test]
    fn results_arrive_in_task_order() {
        // §5: "identical results are presented to the consumer in the same
        // order as the single-worker computation".
        for workers in [1, 2, 3, 8] {
            let got = run_static(workers, 20);
            assert_eq!(got, (2..=21).collect::<Vec<i64>>(), "{workers} workers");
        }
    }

    #[test]
    fn task_count_not_divisible_by_workers() {
        // 7 tasks across 3 workers: the tail round is partial; termination
        // must still be clean (gather hits EOF on the next worker).
        let got = run_static(3, 7);
        assert_eq!(got, (2..=8).collect::<Vec<i64>>());
    }

    #[test]
    fn single_task() {
        assert_eq!(run_static(4, 1), vec![2]);
    }

    #[test]
    fn zero_tasks_terminate_cleanly() {
        assert!(run_static(3, 0).is_empty());
    }
}
