//! Stock task types: the factorization tasks of §5.2 and the synthetic
//! calibrated tasks the evaluation harness uses to model the paper's
//! heterogeneous cluster.

use crate::task::{TaskEnv, TaskEnvelope, WorkTask};
use kpn_bignum::{search_range, BigUint};
use kpn_core::Result;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Registry names for the stock tasks.
pub const FACTOR_TASK: &str = "kpn.FactorTask";
/// Registry name for [`SyntheticTask`].
pub const SYNTHETIC_TASK: &str = "kpn.SyntheticTask";
/// Registry name result envelopes use (results are plain payloads).
pub const RESULT: &str = "kpn.Result";

/// One unit of the weak-RSA-key search (§5.2): test the even differences
/// in `[d_start, d_end)` against `n` — the paper's tasks cover 32 even
/// values each.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FactorTask {
    /// The modulus being attacked.
    pub n: BigUint,
    /// First difference to test.
    pub d_start: u64,
    /// One past the last difference to test.
    pub d_end: u64,
}

impl WorkTask for FactorTask {
    fn run(self: Box<Self>, _env: &TaskEnv) -> Result<TaskEnvelope> {
        let outcome = search_range(&self.n, self.d_start, self.d_end);
        TaskEnvelope::pack(RESULT, &outcome)
    }
}

/// Splits the search for `n`'s factor into `task_count` tasks of
/// `batch` even differences each (the paper: 2048 tasks × 32 differences).
pub fn factor_task_stream(
    n: BigUint,
    task_count: u64,
    batch: u64,
) -> impl FnMut() -> Result<Option<TaskEnvelope>> + Send + 'static {
    let mut next = 0u64;
    move || {
        if next >= task_count {
            return Ok(None);
        }
        let d_start = next * 2 * batch;
        let d_end = d_start + 2 * batch;
        next += 1;
        Ok(Some(TaskEnvelope::pack(
            FACTOR_TASK,
            &FactorTask {
                n: n.clone(),
                d_start,
                d_end,
            },
        )?))
    }
}

/// A calibrated task that occupies a worker for `cost_units / speed`
/// milliseconds of wall-clock time. This is the substitution (documented
/// in DESIGN.md) for running the real factorization on the paper's 34
/// physical CPUs: because the tasks are sleep-bound, one machine can
/// faithfully emulate many virtual CPUs of different speeds, and the
/// *scheduling* behaviour under static vs dynamic load balancing — the
/// object of Table 2 and Figures 19/20 — is preserved exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticTask {
    /// Task sequence number (returned in the result envelope).
    pub seq: u64,
    /// Work amount in milliseconds-at-speed-1.
    pub cost_units: f64,
}

impl WorkTask for SyntheticTask {
    fn run(self: Box<Self>, env: &TaskEnv) -> Result<TaskEnvelope> {
        let millis = self.cost_units / env.speed;
        if millis > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(millis / 1000.0));
        }
        TaskEnvelope::pack(RESULT, &self.seq)
    }
}

/// A stream of `count` synthetic tasks of uniform cost.
pub fn synthetic_task_stream(
    count: u64,
    cost_units: f64,
) -> impl FnMut() -> Result<Option<TaskEnvelope>> + Send + 'static {
    let mut next = 0u64;
    move || {
        if next >= count {
            return Ok(None);
        }
        let seq = next;
        next += 1;
        Ok(Some(TaskEnvelope::pack(
            SYNTHETIC_TASK,
            &SyntheticTask { seq, cost_units },
        )?))
    }
}

/// Registers the stock task types.
pub fn register_stock_tasks(registry: &mut crate::task::TaskTypeRegistry) {
    registry.register::<FactorTask>(FACTOR_TASK);
    registry.register::<SyntheticTask>(SYNTHETIC_TASK);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskTypeRegistry;
    use kpn_bignum::{make_weak_key, SearchOutcome};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn factor_task_finds_planted_factor() {
        let mut rng = StdRng::seed_from_u64(7);
        // d = 200 lands in task 3 when batch = 32 (d range [192, 256)).
        let key = make_weak_key(64, 200, &mut rng);
        let task = Box::new(FactorTask {
            n: key.n.clone(),
            d_start: 192,
            d_end: 256,
        });
        let result = task.run(&TaskEnv::default()).unwrap();
        match result.unpack::<SearchOutcome>().unwrap() {
            SearchOutcome::Found { p, d } => {
                assert_eq!(p, key.p);
                assert_eq!(d, 200);
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn factor_stream_covers_contiguous_ranges() {
        let mut rng = StdRng::seed_from_u64(8);
        let key = make_weak_key(64, 0, &mut rng);
        let mut stream = factor_task_stream(key.n, 4, 32);
        let mut expected_start = 0;
        let mut produced = 0;
        while let Some(env) = stream().unwrap() {
            let t: FactorTask = env.unpack().unwrap();
            assert_eq!(t.d_start, expected_start);
            assert_eq!(t.d_end - t.d_start, 64); // 32 even differences
            expected_start = t.d_end;
            produced += 1;
        }
        assert_eq!(produced, 4);
    }

    #[test]
    fn synthetic_task_scales_with_speed() {
        let t = Box::new(SyntheticTask {
            seq: 1,
            cost_units: 20.0,
        });
        let start = std::time::Instant::now();
        t.run(&TaskEnv { speed: 2.0 }).unwrap();
        let took = start.elapsed();
        assert!(took >= Duration::from_millis(9), "took {took:?}");
        assert!(took < Duration::from_millis(100), "took {took:?}");
    }

    #[test]
    fn stock_registration() {
        let mut reg = TaskTypeRegistry::new();
        register_stock_tasks(&mut reg);
        let env = TaskEnvelope::pack(
            SYNTHETIC_TASK,
            &SyntheticTask {
                seq: 0,
                cost_units: 0.0,
            },
        )
        .unwrap();
        assert!(reg.decode(&env).is_ok());
    }
}
