//! Registers the parallel-framework processes with a `kpn-net`
//! [`ProcessRegistry`], so Workers (and the routing stages) can be shipped
//! to remote compute servers exactly like the stock processes.
//!
//! The Producer and Consumer stay on the deploying client (they hold
//! application closures), matching the paper's deployments where the
//! producer/consumer ran with the experimenter and only workers were
//! distributed.

use crate::generic::Worker;
use crate::meta_dynamic::{Direct, Select, Turnstile};
use crate::meta_static::{Gather, Scatter};
use crate::task::TaskTypeRegistry;
use kpn_core::Error;
use kpn_net::{decode_params, ProcessRegistry};
use std::sync::Arc;

/// Registry names for the shippable parallel processes.
pub mod names {
    /// Generic worker (params: `f64` speed).
    pub const WORKER: &str = "kpn.Worker";
    /// Round-robin scatter (params: none).
    pub const SCATTER: &str = "kpn.Scatter";
    /// Round-robin gather (params: none).
    pub const GATHER: &str = "kpn.Gather";
    /// Index-driven dispatch (params: none; inputs `[tasks, index]`).
    pub const DIRECT: &str = "kpn.Direct";
    /// Arrival-order merge (params: none; outputs `[data, index]`).
    pub const TURNSTILE: &str = "kpn.Turnstile";
    /// Task-order restore (params: `u64` worker count; inputs `[data, index]`).
    pub const SELECT: &str = "kpn.Select";
}

/// Registers Worker/Scatter/Gather/Direct/Turnstile/Select so partitions
/// containing them can be shipped to servers whose nodes share the same
/// `task_registry`.
pub fn register_parallel_processes(
    registry: &mut ProcessRegistry,
    task_registry: Arc<TaskTypeRegistry>,
) {
    registry.register_iterative(names::WORKER, move |params, mut ins, mut outs| {
        if ins.len() != 1 || outs.len() != 1 {
            return Err(Error::Graph("Worker expects 1 input, 1 output".into()));
        }
        let speed: f64 = decode_params(names::WORKER, params)?;
        Ok(Worker::new(task_registry.clone(), ins.remove(0), outs.remove(0)).with_speed(speed))
    });
    registry.register_iterative(names::SCATTER, |_params, mut ins, outs| {
        if ins.len() != 1 || outs.is_empty() {
            return Err(Error::Graph("Scatter expects 1 input, ≥1 output".into()));
        }
        Ok(Scatter::new(ins.remove(0), outs))
    });
    registry.register_iterative(names::GATHER, |_params, ins, mut outs| {
        if ins.is_empty() || outs.len() != 1 {
            return Err(Error::Graph("Gather expects ≥1 input, 1 output".into()));
        }
        Ok(Gather::new(ins, outs.remove(0)))
    });
    registry.register_iterative(names::DIRECT, |_params, mut ins, outs| {
        if ins.len() != 2 || outs.is_empty() {
            return Err(Error::Graph("Direct expects 2 inputs, ≥1 output".into()));
        }
        let index = ins.remove(1);
        Ok(Direct::new(ins.remove(0), index, outs))
    });
    registry.register_iterative(names::TURNSTILE, |_params, ins, mut outs| {
        if ins.is_empty() || outs.len() != 2 {
            return Err(Error::Graph("Turnstile expects ≥1 input, 2 outputs".into()));
        }
        let index_out = outs.remove(1);
        Ok(Turnstile::new(ins, outs.remove(0), index_out))
    });
    registry.register_iterative(names::SELECT, |params, mut ins, mut outs| {
        if ins.len() != 2 || outs.len() != 1 {
            return Err(Error::Graph("Select expects 2 inputs, 1 output".into()));
        }
        let n_workers: u64 = decode_params(names::SELECT, params)?;
        let index = ins.remove(1);
        Ok(Select::new(
            ins.remove(0),
            index,
            outs.remove(0),
            n_workers as usize,
        ))
    });
}

/// Wires the MetaDynamic composite (Figures 17/18) into a distributed
/// [`kpn_net::GraphBuilder`]: the routing stages (Direct, Turnstile, Select, index
/// plumbing) run on `routing_partition` and each worker on the partition
/// given by `worker_partitions`. Returns `(task_in, result_out)` channel
/// ids: connect your producer to the first and your consumer to the
/// second (either as processes or as claimed endpoints).
pub fn meta_dynamic_distributed(
    g: &mut kpn_net::GraphBuilder,
    routing_partition: usize,
    worker_partitions: &[usize],
    worker_speed: f64,
) -> kpn_core::Result<(kpn_net::ChanId, kpn_net::ChanId)> {
    let n = worker_partitions.len();
    if n == 0 {
        return Err(Error::Graph("need at least one worker".into()));
    }
    let task_in = g.channel();
    let result_out = g.channel();
    let mut to_w = Vec::with_capacity(n);
    let mut from_w = Vec::with_capacity(n);
    for &p in worker_partitions {
        let t = g.channel();
        let f = g.channel();
        g.add(p, names::WORKER, &worker_speed, &[t], &[f])?;
        to_w.push(t);
        from_w.push(f);
    }
    let init = g.channel();
    let t_idx = g.channel();
    let idx_full = g.channel();
    let idx_direct = g.channel();
    let idx_select = g.channel();
    let t_data = g.channel();
    let r = routing_partition;
    g.add(r, "Sequence", &(0i64, Some(n as u64)), &[], &[init])?;
    g.add(r, "Cons", &false, &[init, t_idx], &[idx_full])?;
    g.add(r, "Duplicate", &(), &[idx_full], &[idx_direct, idx_select])?;
    g.add(r, names::DIRECT, &(), &[task_in, idx_direct], &to_w)?;
    g.add(r, names::TURNSTILE, &(), &from_w, &[t_data, t_idx])?;
    g.add(
        r,
        names::SELECT,
        &(n as u64),
        &[t_data, idx_select],
        &[result_out],
    )?;
    Ok((task_in, result_out))
}

/// A node [`ProcessRegistry`] for factor clusters: the stock processes
/// plus Worker/routing stages over a fresh stock task registry (so
/// [`crate::FactorTask`] envelopes decode on every node).
pub fn parallel_registry() -> ProcessRegistry {
    let mut tasks = crate::task::TaskTypeRegistry::new();
    crate::tasks::register_stock_tasks(&mut tasks);
    let mut reg = ProcessRegistry::with_defaults();
    register_parallel_processes(&mut reg, tasks.into_shared());
    reg
}

/// History and timing of one cluster-scale §5.2 factor run (see
/// [`factor_cluster_run`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FactorRunReport {
    /// Per-task results in task order (Select restores it), the full
    /// observable history of the network's output channel — the object
    /// the Kahn determinacy oracle compares.
    pub outcomes: Vec<kpn_bignum::SearchOutcome>,
    /// The first recovered factor `(p, d)`, if any task found one.
    pub factor: Option<(kpn_bignum::BigUint, u64)>,
    /// Seconds from deployment until the factor was read (None if not found).
    pub secs_to_factor: Option<f64>,
    /// Seconds for the complete run (all results read, network joined).
    pub total_secs: f64,
}

/// Runs the paper's §5.2 workload — `task_count` [`crate::FactorTask`]s of
/// `batch` even differences against `n` — through a MetaDynamic composite
/// deployed across `cluster`: routing on the client, one Worker per entry
/// of `worker_partitions`. The producer and consumer stay on the client as
/// claimed endpoints, exactly like the paper's deployments.
///
/// Works on both [`kpn_net::chaos::ChaosCluster::plain_with`] and faulted
/// clusters, as long as every node was built from [`parallel_registry`]
/// (stock nodes lack the Worker registration); the returned
/// [`FactorRunReport::outcomes`] history must be bit-identical across
/// fault schedules and worker counts.
pub fn factor_cluster_run(
    cluster: &kpn_net::chaos::ChaosCluster,
    n: &kpn_bignum::BigUint,
    task_count: u64,
    batch: u64,
    worker_partitions: &[usize],
) -> kpn_core::Result<FactorRunReport> {
    use kpn_bignum::SearchOutcome;
    use kpn_codec::{ObjectReader, ObjectWriter};
    use std::time::Instant;

    let mut g = kpn_net::GraphBuilder::new();
    let (task_in, result_out) =
        meta_dynamic_distributed(&mut g, kpn_net::CLIENT, worker_partitions, 1.0)?;
    g.claim_writer(task_in)?;
    g.claim_reader(result_out)?;
    let mut dep = g.deploy(cluster.client(), cluster.handles())?;
    let start = Instant::now();

    // Feed from a separate thread so task injection and result drainage
    // never deadlock on transport buffering, whatever the task count.
    let writer = dep.writers.remove(&task_in).expect("claimed task writer");
    let mut stream = crate::tasks::factor_task_stream(n.clone(), task_count, batch);
    let feeder = std::thread::spawn(move || -> kpn_core::Result<()> {
        let mut w = ObjectWriter::new(writer);
        while let Some(env) = stream()? {
            w.write(&env)?;
        }
        Ok(())
    });

    let mut r = ObjectReader::new(dep.readers.remove(&result_out).expect("claimed result reader"));
    let mut outcomes = Vec::with_capacity(task_count as usize);
    let mut factor = None;
    let mut secs_to_factor = None;
    for _ in 0..task_count {
        let env: crate::task::TaskEnvelope = r.read()?;
        let outcome: SearchOutcome = env.unpack()?;
        if factor.is_none() {
            if let SearchOutcome::Found { p, d } = &outcome {
                factor = Some((p.clone(), *d));
                secs_to_factor = Some(start.elapsed().as_secs_f64());
            }
        }
        outcomes.push(outcome);
    }
    drop(r);
    feeder
        .join()
        .map_err(|_| Error::Graph("task feeder panicked".into()))??;
    dep.join()?;
    Ok(FactorRunReport {
        outcomes,
        factor,
        secs_to_factor,
        total_secs: start.elapsed().as_secs_f64(),
    })
}

/// The MetaStatic analogue of [`meta_dynamic_distributed`]: Scatter and
/// Gather on `routing_partition`, workers where assigned.
pub fn meta_static_distributed(
    g: &mut kpn_net::GraphBuilder,
    routing_partition: usize,
    worker_partitions: &[usize],
    worker_speed: f64,
) -> kpn_core::Result<(kpn_net::ChanId, kpn_net::ChanId)> {
    let n = worker_partitions.len();
    if n == 0 {
        return Err(Error::Graph("need at least one worker".into()));
    }
    let task_in = g.channel();
    let result_out = g.channel();
    let mut to_w = Vec::with_capacity(n);
    let mut from_w = Vec::with_capacity(n);
    for &p in worker_partitions {
        let t = g.channel();
        let f = g.channel();
        g.add(p, names::WORKER, &worker_speed, &[t], &[f])?;
        to_w.push(t);
        from_w.push(f);
    }
    g.add(routing_partition, names::SCATTER, &(), &[task_in], &to_w)?;
    g.add(
        routing_partition,
        names::GATHER,
        &(),
        &from_w,
        &[result_out],
    )?;
    Ok((task_in, result_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskEnvelope;
    use crate::tasks::{register_stock_tasks, synthetic_task_stream, RESULT};
    use kpn_codec::{ObjectReader, ObjectWriter};
    use kpn_net::{GraphBuilder, Node, ServerHandle, TaskRegistry};

    fn parallel_node() -> (std::sync::Arc<Node>, ServerHandle) {
        let mut tasks = TaskTypeRegistry::new();
        register_stock_tasks(&mut tasks);
        let tasks = tasks.into_shared();
        let mut reg = ProcessRegistry::with_defaults();
        register_parallel_processes(&mut reg, tasks);
        let node = Node::serve_with("127.0.0.1:0", reg, TaskRegistry::new()).unwrap();
        let handle = ServerHandle::new(node.addr().to_string());
        (node, handle)
    }

    #[test]
    fn remote_worker_processes_tasks() {
        // Producer and consumer on the client; one Worker shipped to a
        // remote server — the minimal distributed Figure 1.
        let client = Node::serve("127.0.0.1:0").unwrap();
        let (_server, handle) = parallel_node();
        let mut b = GraphBuilder::new();
        let tasks = b.channel();
        let results = b.channel();
        b.add(0, names::WORKER, &1.0f64, &[tasks], &[results])
            .unwrap();
        b.claim_writer(tasks).unwrap();
        b.claim_reader(results).unwrap();
        let mut dep = b.deploy(&client, &[handle]).unwrap();

        let mut task_out = ObjectWriter::new(dep.writers.remove(&tasks).unwrap());
        let mut result_in = ObjectReader::new(dep.readers.remove(&results).unwrap());
        let mut stream = synthetic_task_stream(5, 0.0);
        while let Some(env) = stream().unwrap() {
            task_out.write(&env).unwrap();
        }
        drop(task_out);
        for expect in 0..5u64 {
            let env: TaskEnvelope = result_in.read().unwrap();
            assert_eq!(env.type_name, RESULT);
            assert_eq!(env.unpack::<u64>().unwrap(), expect);
        }
        assert!(result_in.read::<TaskEnvelope>().is_err());
        drop(result_in);
        dep.join().unwrap();
    }

    #[test]
    fn distributed_meta_static_across_two_servers() {
        // Scatter/Gather on server 0, two workers on server 1.
        let client = Node::serve("127.0.0.1:0").unwrap();
        let (_s0, h0) = parallel_node();
        let (_s1, h1) = parallel_node();
        let mut b = GraphBuilder::new();
        let tasks = b.channel();
        let results = b.channel();
        let to_w0 = b.channel();
        let to_w1 = b.channel();
        let from_w0 = b.channel();
        let from_w1 = b.channel();
        b.add(0, names::SCATTER, &(), &[tasks], &[to_w0, to_w1])
            .unwrap();
        b.add(1, names::WORKER, &1.0f64, &[to_w0], &[from_w0])
            .unwrap();
        b.add(1, names::WORKER, &1.0f64, &[to_w1], &[from_w1])
            .unwrap();
        b.add(0, names::GATHER, &(), &[from_w0, from_w1], &[results])
            .unwrap();
        b.claim_writer(tasks).unwrap();
        b.claim_reader(results).unwrap();
        let mut dep = b.deploy(&client, &[h0, h1]).unwrap();

        let mut task_out = ObjectWriter::new(dep.writers.remove(&tasks).unwrap());
        let mut result_in = ObjectReader::new(dep.readers.remove(&results).unwrap());
        let mut stream = synthetic_task_stream(8, 0.0);
        while let Some(env) = stream().unwrap() {
            task_out.write(&env).unwrap();
        }
        drop(task_out);
        for expect in 0..8u64 {
            let env: TaskEnvelope = result_in.read().unwrap();
            assert_eq!(env.unpack::<u64>().unwrap(), expect, "task order preserved");
        }
        drop(result_in);
        dep.join().unwrap();
    }

    #[test]
    fn distributed_meta_dynamic_builder() {
        use kpn_net::{GraphBuilder, Node, TaskRegistry, CLIENT};
        let client_tasks = {
            let mut t = TaskTypeRegistry::new();
            crate::tasks::register_stock_tasks(&mut t);
            t.into_shared()
        };
        let mut client_reg = ProcessRegistry::with_defaults();
        register_parallel_processes(&mut client_reg, client_tasks);
        let client = Node::serve_with("127.0.0.1:0", client_reg, TaskRegistry::new()).unwrap();
        let (_s0, h0) = parallel_node();
        let (_s1, h1) = parallel_node();
        let mut g = GraphBuilder::new();
        let (task_in, result_out) =
            super::meta_dynamic_distributed(&mut g, CLIENT, &[0, 1, 0, 1], 1.0).unwrap();
        g.claim_writer(task_in).unwrap();
        g.claim_reader(result_out).unwrap();
        let mut dep = g.deploy(&client, &[h0, h1]).unwrap();
        let mut w = ObjectWriter::new(dep.writers.remove(&task_in).unwrap());
        let mut r = ObjectReader::new(dep.readers.remove(&result_out).unwrap());
        let mut stream = synthetic_task_stream(12, 1.0);
        while let Ok(Some(env)) = stream() {
            w.write(&env).unwrap();
        }
        drop(w);
        for expect in 0..12u64 {
            let env: TaskEnvelope = r.read().unwrap();
            assert_eq!(env.unpack::<u64>().unwrap(), expect, "task order");
        }
        drop(r);
        dep.join().unwrap();
    }

    #[test]
    fn distributed_meta_static_builder() {
        use kpn_net::{GraphBuilder, CLIENT};
        // Scatter/Gather run on the client, so it needs the parallel
        // registry too.
        let (client, _hc) = parallel_node();
        let (_s0, h0) = parallel_node();
        let mut g = GraphBuilder::new();
        let (task_in, result_out) =
            super::meta_static_distributed(&mut g, CLIENT, &[0, 0], 1.0).unwrap();
        g.claim_writer(task_in).unwrap();
        g.claim_reader(result_out).unwrap();
        let mut dep = g.deploy(&client, &[h0]).unwrap();
        let mut w = ObjectWriter::new(dep.writers.remove(&task_in).unwrap());
        let mut r = ObjectReader::new(dep.readers.remove(&result_out).unwrap());
        let mut stream = synthetic_task_stream(6, 0.0);
        while let Ok(Some(env)) = stream() {
            w.write(&env).unwrap();
        }
        drop(w);
        for expect in 0..6u64 {
            let env: TaskEnvelope = r.read().unwrap();
            assert_eq!(env.unpack::<u64>().unwrap(), expect);
        }
        drop(r);
        dep.join().unwrap();
    }
}
