//! Tasks and active objects (§5.1).
//!
//! "The computation to be carried out on the data is defined not in the
//! processes, but in the objects containing the data itself." A task
//! travels on channels as a [`TaskEnvelope`] (type name + codec payload);
//! the generic [`crate::Worker`] reconstructs it through a
//! [`TaskTypeRegistry`] — the same registry pattern `kpn-net` uses for
//! processes, substituting for Java's mobile code.

use kpn_core::{Error, Result};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Execution environment a worker gives its tasks. `speed` models the
/// heterogeneous CPU classes of the paper's evaluation (Table 1): a task
/// of cost `c` occupies a speed-`s` worker for `c / s` time units.
#[derive(Debug, Clone, Copy)]
pub struct TaskEnv {
    /// Relative CPU speed (1.0 = the paper's class-C baseline).
    pub speed: f64,
}

impl Default for TaskEnv {
    fn default() -> Self {
        TaskEnv { speed: 1.0 }
    }
}

/// A work task: decoded by the worker, run, producing the result envelope
/// sent onward to the consumer (the paper's `Task.run()` returning another
/// `Task`).
pub trait WorkTask: Send {
    /// Performs the work and returns the consumer-task envelope.
    fn run(self: Box<Self>, env: &TaskEnv) -> Result<TaskEnvelope>;
}

/// A serialized task on a channel: the `ObjectOutputStream` record the
/// generic processes forward without decoding.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TaskEnvelope {
    /// Task-registry key.
    pub type_name: String,
    /// Codec-encoded task payload.
    pub payload: Vec<u8>,
}

impl TaskEnvelope {
    /// Packs a serializable task value under a registered type name.
    pub fn pack<T: Serialize>(type_name: &str, task: &T) -> Result<Self> {
        Ok(TaskEnvelope {
            type_name: type_name.into(),
            payload: kpn_codec::to_bytes(task).map_err(Error::from)?,
        })
    }

    /// Decodes the payload as `T`.
    pub fn unpack<T: DeserializeOwned>(&self) -> Result<T> {
        kpn_codec::from_bytes(&self.payload).map_err(Error::from)
    }
}

type TaskFactory = Box<dyn Fn(&[u8]) -> Result<Box<dyn WorkTask>> + Send + Sync>;

/// Maps task type names to decoders, shared by every worker.
#[derive(Default)]
pub struct TaskTypeRegistry {
    factories: HashMap<String, TaskFactory>,
}

impl TaskTypeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a decodable task type.
    pub fn register<T>(&mut self, name: impl Into<String>)
    where
        T: WorkTask + DeserializeOwned + 'static,
    {
        let name = name.into();
        let for_err = name.clone();
        self.factories.insert(
            name,
            Box::new(move |payload| {
                let task: T = kpn_codec::from_bytes(payload)
                    .map_err(|e| Error::Codec(format!("task {for_err}: {e}")))?;
                Ok(Box::new(task))
            }),
        );
    }

    /// Decodes one envelope into a runnable task.
    pub fn decode(&self, envelope: &TaskEnvelope) -> Result<Box<dyn WorkTask>> {
        let f = self
            .factories
            .get(&envelope.type_name)
            .ok_or_else(|| Error::Graph(format!("unknown task type {:?}", envelope.type_name)))?;
        f(&envelope.payload)
    }

    /// Wraps in the `Arc` workers share.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }
}

impl std::fmt::Debug for TaskTypeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskTypeRegistry({} types)", self.factories.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Doubler {
        value: i64,
    }

    impl WorkTask for Doubler {
        fn run(self: Box<Self>, _env: &TaskEnv) -> Result<TaskEnvelope> {
            TaskEnvelope::pack("result", &(self.value * 2))
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let env = TaskEnvelope::pack("Doubler", &Doubler { value: 21 }).unwrap();
        assert_eq!(env.type_name, "Doubler");
        let d: Doubler = env.unpack().unwrap();
        assert_eq!(d.value, 21);
    }

    #[test]
    fn registry_decodes_and_runs() {
        let mut reg = TaskTypeRegistry::new();
        reg.register::<Doubler>("Doubler");
        let envelope = TaskEnvelope::pack("Doubler", &Doubler { value: 5 }).unwrap();
        let task = reg.decode(&envelope).unwrap();
        let result = task.run(&TaskEnv::default()).unwrap();
        assert_eq!(result.unpack::<i64>().unwrap(), 10);
    }

    #[test]
    fn unknown_task_type_reported() {
        let reg = TaskTypeRegistry::new();
        let envelope = TaskEnvelope::pack("Nope", &1i64).unwrap();
        assert!(reg.decode(&envelope).is_err());
    }

    #[test]
    fn corrupt_payload_reported() {
        let mut reg = TaskTypeRegistry::new();
        reg.register::<Doubler>("Doubler");
        let envelope = TaskEnvelope {
            type_name: "Doubler".into(),
            payload: vec![1, 2],
        };
        assert!(reg.decode(&envelope).is_err());
    }
}
