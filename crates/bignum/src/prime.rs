//! Primality testing and random prime generation, used to build the
//! experimental weak-RSA moduli of §5.2 ("a 512-bit randomly selected
//! prime number P to which a small difference D was added").
//!
//! Miller–Rabin runs in the Montgomery domain: one [`Montgomery`] context
//! is built per candidate (every candidate surviving trial division is
//! odd) and shared by all witnesses, so each witness costs only CIOS
//! passes — no division after setup. [`BigUint::is_probable_prime_div`]
//! runs the identical witness schedule through the division-path oracle;
//! the adversarial fixture battery pins both.

use crate::biguint::BigUint;
use crate::montgomery::Montgomery;
use rand::Rng;

/// Primes below 100, used for fast trial division.
const SMALL_PRIMES: [u64; 25] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
];

/// Deterministic Miller-Rabin witness set, sufficient for all n < 3.3·10^24
/// (and in particular for every u64).
const DETERMINISTIC_WITNESSES: [u64; 13] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];

/// ψ₁₃ = 3317044064679887385961981 (Sorenson–Webster): the smallest
/// composite that is a strong pseudoprime to all 13 bases above. Below
/// this bound the deterministic witnesses alone are a proof; at or above
/// it random witnesses are mandatory. (The previous cutoff — "deterministic
/// only below 128 bits" — wrongly certified ψ₁₃ itself, an 82-bit
/// composite, as prime; the adversarial fixture battery pins the fix.)
const PSI_13: &str = "3317044064679887385961981";

/// Which modular-multiplication kernel drives the witness chain.
#[derive(Clone, Copy)]
enum MrKernel {
    /// Shared CIOS context, all witnesses division-free (the default).
    Montgomery,
    /// `mul` + Knuth-D reduction per step (the differential oracle).
    Division,
}

impl BigUint {
    /// Probabilistic primality test: trial division by the primes below 100,
    /// then Miller-Rabin in the Montgomery domain. Below ψ₁₃ ≈ 3.3·10²⁴
    /// the deterministic witness set is a proof; at or above it the
    /// deterministic witnesses are followed by `rounds` random ones
    /// (error probability ≤ 4^-rounds).
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rounds: u32, rng: &mut R) -> bool {
        self.miller_rabin(rounds, rng, MrKernel::Montgomery)
    }

    /// [`BigUint::is_probable_prime`] forced through the division-path
    /// modular kernel — the reference oracle the Montgomery path is
    /// differentially tested against. Identical witness schedule, so for
    /// a given `rng` state both paths must agree exactly.
    pub fn is_probable_prime_div<R: Rng + ?Sized>(&self, rounds: u32, rng: &mut R) -> bool {
        self.miller_rabin(rounds, rng, MrKernel::Division)
    }

    fn miller_rabin<R: Rng + ?Sized>(&self, rounds: u32, rng: &mut R, kernel: MrKernel) -> bool {
        if self.bits() <= 6 {
            let v = self.to_u64().unwrap();
            return SMALL_PRIMES.contains(&v);
        }
        for &p in &SMALL_PRIMES {
            if self.divrem_u64(p).1 == 0 {
                // Divisible by a small prime: composite unless it *is* it.
                return self.to_u64() == Some(p);
            }
        }
        // Write self-1 = d * 2^s with d odd.
        let n_minus_1 = self.sub(&BigUint::one());
        let s = {
            let mut s = 0u64;
            while !n_minus_1.bit(s) {
                s += 1;
            }
            s
        };
        let d = n_minus_1.shr(s);

        // Every candidate reaching this point is odd (2 was trial-divided
        // away), so the Montgomery context always exists; one context is
        // shared by every witness. The witness chain stays entirely in the
        // Montgomery domain: x is a Montgomery-form residue throughout and
        // is compared against the Montgomery forms of 1 and n-1.
        let mont = match kernel {
            MrKernel::Montgomery => {
                let ctx = Montgomery::new(self).expect("candidate is odd and > 1");
                let minus_one_m = ctx.to_montgomery(&n_minus_1);
                Some((ctx, minus_one_m))
            }
            MrKernel::Division => None,
        };

        let witness = |a: &BigUint| -> bool {
            // Returns true when `a` proves compositeness.
            let a = a.rem(self);
            if a.is_zero() || a.is_one() {
                return false;
            }
            match &mont {
                Some((ctx, minus_one_m)) => {
                    let one_m = ctx.one_m();
                    let mut x = ctx.pow_m(&ctx.to_montgomery(&a), &d);
                    if x == one_m || x == *minus_one_m {
                        return false;
                    }
                    for _ in 1..s {
                        x = ctx.mul(&x, &x);
                        if x == *minus_one_m {
                            return false;
                        }
                        if x == one_m {
                            return true; // nontrivial square root of 1
                        }
                    }
                    true
                }
                None => {
                    let mut x = a.modpow_div(&d, self);
                    if x.is_one() || x == n_minus_1 {
                        return false;
                    }
                    for _ in 1..s {
                        x = x.mulmod_div(&x, self);
                        if x == n_minus_1 {
                            return false;
                        }
                        if x.is_one() {
                            return true; // nontrivial square root of 1
                        }
                    }
                    true
                }
            }
        };

        for &w in &DETERMINISTIC_WITNESSES {
            if witness(&BigUint::from_u64(w)) {
                return false;
            }
        }
        let deterministic_bound = BigUint::from_decimal(PSI_13).expect("valid constant");
        if *self >= deterministic_bound {
            for _ in 0..rounds {
                let a = BigUint::random_below(&n_minus_1, rng).add_u64(1);
                if witness(&a) {
                    return false;
                }
            }
        }
        true
    }

    /// Uniform random value in `[0, bound)`; `bound` must be nonzero.
    pub fn random_below<R: Rng + ?Sized>(bound: &BigUint, rng: &mut R) -> BigUint {
        assert!(!bound.is_zero(), "empty range");
        let bits = bound.bits();
        loop {
            let candidate = BigUint::random_bits(bits, rng);
            if candidate < *bound {
                return candidate;
            }
        }
    }

    /// Random value with at most `bits` bits.
    pub fn random_bits<R: Rng + ?Sized>(bits: u64, rng: &mut R) -> BigUint {
        let limbs = bits.div_ceil(64) as usize;
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.random()).collect();
        let top_bits = bits % 64;
        if top_bits != 0 {
            if let Some(top) = v.last_mut() {
                *top &= (1u64 << top_bits) - 1;
            }
        }
        BigUint::from_limbs(v)
    }

    /// Generates a random prime with exactly `bits` bits (top and bottom
    /// bits forced to 1, as RSA key generation does).
    pub fn gen_prime<R: Rng + ?Sized>(bits: u64, rng: &mut R) -> BigUint {
        assert!(bits >= 2, "prime needs at least 2 bits");
        let top = BigUint::one().shl(bits - 1);
        loop {
            let mut candidate = BigUint::random_bits(bits, rng);
            // Force the top bit (exact width) and the bottom bit (odd).
            if !candidate.bit(bits - 1) {
                candidate = candidate.add(&top);
            }
            if candidate.is_even() {
                candidate = candidate.add_u64(1);
            }
            debug_assert_eq!(candidate.bits(), bits);
            if candidate.is_probable_prime(16, rng) {
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    fn is_prime_u64(v: u64) -> bool {
        BigUint::from_u64(v).is_probable_prime(8, &mut rng())
    }

    #[test]
    fn small_numbers() {
        let primes: Vec<u64> = (0..100).filter(|&v| is_prime_u64(v)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97
            ]
        );
    }

    #[test]
    fn known_primes_and_composites() {
        assert!(is_prime_u64(1_000_000_007));
        assert!(is_prime_u64(1_000_000_009));
        assert!(!is_prime_u64(1_000_000_011));
        // Carmichael numbers must be rejected.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_prime_u64(c), "Carmichael {c}");
        }
        // Strong pseudoprime to base 2.
        assert!(!is_prime_u64(3215031751));
    }

    #[test]
    fn large_known_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let m127 = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(m127.is_probable_prime(16, &mut rng()));
        // 2^128 - 1 is composite.
        let c = BigUint::one().shl(128).sub(&BigUint::one());
        assert!(!c.is_probable_prime(16, &mut rng()));
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut r = rng();
        for bits in [16u64, 32, 64, 96, 128] {
            let p = BigUint::gen_prime(bits, &mut r);
            assert_eq!(p.bits(), bits, "bits for {p}");
            assert!(p.is_probable_prime(8, &mut r));
        }
    }

    #[test]
    fn gen_prime_256_bits() {
        let mut r = rng();
        let p = BigUint::gen_prime(256, &mut r);
        assert_eq!(p.bits(), 256);
        assert!(!p.is_even());
    }

    #[test]
    fn random_below_is_in_range() {
        let mut r = rng();
        let bound = BigUint::from_u64(1000);
        for _ in 0..100 {
            assert!(BigUint::random_below(&bound, &mut r) < bound);
        }
    }

    #[test]
    fn random_bits_respects_width() {
        let mut r = rng();
        for _ in 0..50 {
            assert!(BigUint::random_bits(100, &mut r).bits() <= 100);
        }
    }
}
