//! # kpn-bignum — arbitrary-precision integers for the factorization app
//!
//! The paper's evaluation application (§5.2) brute-force factors "weak"
//! RSA moduli `N = P·(P+D)` with 512-bit `P`. This crate supplies the
//! numeric substrate, written from scratch:
//!
//! * [`BigUint`] — unsigned big integers on u64 limbs: schoolbook and
//!   Karatsuba multiplication (threshold 24 limbs), Knuth Algorithm D
//!   division, shifts, modular exponentiation, integer square root;
//! * [`Montgomery`] — division-free modular multiplication (word-by-word
//!   CIOS/REDC) for odd moduli; `modpow`/`mulmod` dispatch to it
//!   automatically, with the division path kept as the even-modulus
//!   fallback and differential-test oracle;
//! * primality — trial division + Miller-Rabin (deterministic witnesses
//!   below the ψ₁₃ strong-pseudoprime bound, random witnesses above)
//!   running in the Montgomery domain, and random prime generation;
//! * [`factor`] — the weak-key search kernel: one call =
//!   one worker task of the paper's parallel factorization, with
//!   quadratic-residue prefilters shared across a task's differences.
//!
//! The whole crate is `unsafe`-free — limb kernels included — so Miri
//! runs it unmodified.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod biguint;
pub mod factor;
mod montgomery;
mod prime;
mod sqrt;

pub use biguint::BigUint;
pub use factor::{
    make_weak_key, search_range, test_difference, DiffTester, SearchOutcome, WeakKey,
};
pub use montgomery::Montgomery;

#[cfg(test)]
mod proptests {
    use super::BigUint;
    use proptest::prelude::*;

    fn biguint_strategy() -> impl Strategy<Value = BigUint> {
        proptest::collection::vec(any::<u64>(), 0..6).prop_map(BigUint::from_limbs)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn add_commutes(a in biguint_strategy(), b in biguint_strategy()) {
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn add_sub_inverse(a in biguint_strategy(), b in biguint_strategy()) {
            prop_assert_eq!(a.add(&b).sub(&b), a);
        }

        #[test]
        fn mul_commutes(a in biguint_strategy(), b in biguint_strategy()) {
            prop_assert_eq!(a.mul(&b), b.mul(&a));
        }

        #[test]
        fn mul_distributes(a in biguint_strategy(), b in biguint_strategy(), c in biguint_strategy()) {
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn division_identity(n in biguint_strategy(), d in biguint_strategy()) {
            prop_assume!(!d.is_zero());
            let (q, r) = n.divrem(&d);
            prop_assert_eq!(q.mul(&d).add(&r), n);
            prop_assert!(r < d);
        }

        #[test]
        fn shift_roundtrip(a in biguint_strategy(), s in 0u64..200) {
            prop_assert_eq!(a.shl(s).shr(s), a);
        }

        #[test]
        fn decimal_roundtrip(a in biguint_strategy()) {
            let s = a.to_decimal();
            prop_assert_eq!(BigUint::from_decimal(&s).unwrap(), a);
        }

        #[test]
        fn hex_roundtrip(a in biguint_strategy()) {
            let s = a.to_hex();
            prop_assert_eq!(BigUint::from_hex(&s).unwrap(), a);
        }

        #[test]
        fn isqrt_floor(a in biguint_strategy()) {
            let r = a.isqrt();
            prop_assert!(r.mul(&r) <= a);
            let r1 = r.add_u64(1);
            prop_assert!(r1.mul(&r1) > a);
        }

        #[test]
        fn square_detected(a in biguint_strategy()) {
            let sq = a.mul(&a);
            prop_assert_eq!(sq.perfect_sqrt(), Some(a));
        }

        #[test]
        fn codec_roundtrip_u64_agreement(x in any::<u64>(), y in 1u64..) {
            let a = BigUint::from_u64(x);
            let b = BigUint::from_u64(y);
            prop_assert_eq!(a.add(&b).to_u128(), Some(x as u128 + y as u128));
            prop_assert_eq!(a.mul(&b).to_u128(), Some(x as u128 * y as u128));
            let (q, r) = a.divrem(&b);
            prop_assert_eq!(q.to_u64(), Some(x / y));
            prop_assert_eq!(r.to_u64(), Some(x % y));
        }
    }
}
