//! The `BigUint` type: arbitrary-precision unsigned integers on 64-bit
//! limbs (little-endian limb order), with schoolbook and Karatsuba
//! multiplication and Knuth Algorithm D division.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Limbs above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 24;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` never has trailing zero limbs; zero is the empty
/// vector. Limbs are little-endian (`limbs[0]` is least significant).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = BigUint {
            limbs: vec![lo, hi],
        };
        out.normalize();
        out
    }

    /// Builds from little-endian limbs (normalizing trailing zeros).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// The little-endian limb slice (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True iff the value is even (0 is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().map(|l| l & 1 == 0).unwrap_or(true)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// The `i`-th bit (little-endian).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        match self.limbs.get(limb) {
            Some(&l) => (l >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | ((self.limbs[1] as u128) << 64)),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    // -- addition ---------------------------------------------------------

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Adds a `u64` in place.
    pub fn add_u64(&self, v: u64) -> BigUint {
        self.add(&BigUint::from_u64(v))
    }

    // -- subtraction ------------------------------------------------------

    /// `self - other`, or `None` when the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// `self - other`; panics on underflow.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    // -- multiplication ---------------------------------------------------

    /// `self * other` (schoolbook below the Karatsuba threshold of 24 limbs,
    /// Karatsuba above).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        if self.limbs.len().min(other.limbs.len()) >= KARATSUBA_THRESHOLD {
            return self.mul_karatsuba(other);
        }
        self.mul_schoolbook(other)
    }

    fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        let half = self.limbs.len().max(other.limbs.len()) / 2;
        let (a0, a1) = self.split_at(half);
        let (b0, b1) = other.split_at(half);
        let z0 = a0.mul(&b0);
        let z2 = a1.mul(&b1);
        let z1 = a0.add(&a1).mul(&b0.add(&b1)).sub(&z0).sub(&z2);
        z2.shl_limbs(2 * half).add(&z1.shl_limbs(half)).add(&z0)
    }

    fn split_at(&self, k: usize) -> (BigUint, BigUint) {
        if self.limbs.len() <= k {
            (self.clone(), BigUint::zero())
        } else {
            (
                BigUint::from_limbs(self.limbs[..k].to_vec()),
                BigUint::from_limbs(self.limbs[k..].to_vec()),
            )
        }
    }

    fn shl_limbs(&self, k: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u64; k];
        limbs.extend_from_slice(&self.limbs);
        BigUint { limbs }
    }

    /// Multiplies by a `u64`.
    pub fn mul_u64(&self, v: u64) -> BigUint {
        if v == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let t = (l as u128) * (v as u128) + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    // -- shifts -----------------------------------------------------------

    /// `self << n`.
    pub fn shl(&self, n: u64) -> BigUint {
        if self.is_zero() || n == 0 {
            return self.clone();
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = (n % 64) as u32;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self >> n`.
    pub fn shr(&self, n: u64) -> BigUint {
        let limb_shift = (n / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (n % 64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(out)
    }

    // -- division ---------------------------------------------------------

    /// `(self / other, self % other)`; panics if `other` is zero.
    pub fn divrem(&self, other: &BigUint) -> (BigUint, BigUint) {
        assert!(!other.is_zero(), "division by zero");
        if self < other {
            return (BigUint::zero(), self.clone());
        }
        if other.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(other.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        self.divrem_knuth(other)
    }

    /// `(self / v, self % v)` for a `u64` divisor; panics if `v` is zero.
    pub fn divrem_u64(&self, v: u64) -> (BigUint, u64) {
        assert!(v != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / v as u128) as u64;
            rem = cur % v as u128;
        }
        (BigUint::from_limbs(out), rem as u64)
    }

    /// Knuth Algorithm D (TAOCP 4.3.1) for multi-limb divisors.
    fn divrem_knuth(&self, other: &BigUint) -> (BigUint, BigUint) {
        let n = other.limbs.len();
        let m = self.limbs.len() - n;
        // D1: normalize so the divisor's top bit is set.
        let shift = other.limbs[n - 1].leading_zeros() as u64;
        let v = other.shl(shift).limbs;
        let mut u = self.shl(shift).limbs;
        u.resize(self.limbs.len() + 1, 0); // extra high limb for D2..D7

        let mut q = vec![0u64; m + 1];
        let v_top = v[n - 1];
        let v_next = v[n - 2];

        for j in (0..=m).rev() {
            // D3: estimate q̂ from the top two dividend limbs.
            let numer = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = numer / v_top as u128;
            let mut rhat = numer % v_top as u128;
            // Correct q̂ using the third limb.
            while qhat >= 1u128 << 64
                || qhat * v_next as u128 > ((rhat << 64) | u[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // D4: multiply and subtract.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let t = u[j + i] as i128 - (p as u64) as i128 - borrow;
                u[j + i] = t as u64;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = u[j + n] as i128 - carry as i128 - borrow;
            u[j + n] = t as u64;

            // D5/D6: if we subtracted too much, add back.
            if t < 0 {
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = (u[j + n] as u128).wrapping_add(carry) as u64;
            }
            q[j] = qhat as u64;
        }

        let quotient = BigUint::from_limbs(q);
        let remainder = BigUint::from_limbs(u[..n].to_vec()).shr(shift);
        (quotient, remainder)
    }

    /// `self % other`.
    pub fn rem(&self, other: &BigUint) -> BigUint {
        self.divrem(other).1
    }

    // -- modular arithmetic -----------------------------------------------
    //
    // Dispatch rule: an odd modulus (> 1) routes through the Montgomery
    // kernel (division-free CIOS, see `montgomery.rs`); an even modulus —
    // where no Montgomery form exists — takes the division path. The
    // `*_div` variants run the division path unconditionally and serve as
    // the differential-test oracle for the kernel.

    /// `(self * other) % m` — Montgomery for odd `m`, division otherwise.
    pub fn mulmod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        match crate::montgomery::Montgomery::new(m) {
            Some(ctx) => ctx.mulmod(self, other),
            None => self.mulmod_div(other, m),
        }
    }

    /// `(self * other) % m` via multiply-then-divide, on any modulus: the
    /// reference oracle the Montgomery kernel is differentially tested
    /// against.
    pub fn mulmod_div(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// `self^exp mod m`; panics if `m` is zero. Odd moduli run
    /// square-and-multiply in the Montgomery domain (one conversion in and
    /// out, division-free in between); even moduli fall back to
    /// [`BigUint::modpow_div`].
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus is zero");
        match crate::montgomery::Montgomery::new(m) {
            Some(ctx) => ctx.modpow(self, exp),
            None => self.modpow_div(exp, m),
        }
    }

    /// `self^exp mod m` by square-and-multiply over `mul` + `rem`, on any
    /// modulus: the division-path reference oracle.
    pub fn modpow_div(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus is zero");
        if m.is_one() {
            return BigUint::zero();
        }
        let mut base = self.rem(m);
        let mut result = BigUint::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mulmod_div(&base, m);
            }
            base = base.mulmod_div(&base, m);
        }
        result
    }

    // -- string conversions -------------------------------------------------

    /// Parses a decimal string.
    pub fn from_decimal(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let mut out = BigUint::zero();
        for chunk in s.as_bytes().chunks(19) {
            let mut val: u64 = 0;
            for &c in chunk {
                if !c.is_ascii_digit() {
                    return None;
                }
                val = val * 10 + (c - b'0') as u64;
            }
            out = out.mul_u64(10u64.pow(chunk.len() as u32)).add_u64(val);
        }
        Some(out)
    }

    /// Parses a hexadecimal string (no `0x` prefix).
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let mut out = BigUint::zero();
        for &c in s.as_bytes() {
            let d = (c as char).to_digit(16)? as u64;
            out = out.shl(4).add_u64(d);
        }
        Some(out)
    }

    /// Formats as decimal.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_u64(10_000_000_000_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.pop().unwrap().to_string();
        for c in chunks.into_iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        s
    }

    /// Big-endian byte encoding (no leading zero bytes; zero encodes as
    /// an empty slice) — the interchange format RSA tooling uses.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Parses a big-endian byte string (inverse of
    /// [`BigUint::to_bytes_be`]; leading zeros are accepted).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        BigUint::from_limbs(limbs)
    }

    /// Formats as lowercase hexadecimal.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        s
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({})", self.to_decimal())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl std::ops::$trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                BigUint::$impl_method(self, rhs)
            }
        }
        impl std::ops::$trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                BigUint::$impl_method(&self, &rhs)
            }
        }
    };
}

forward_binop!(Add, add, add);
forward_binop!(Sub, sub, sub);
forward_binop!(Mul, mul, mul);
forward_binop!(Rem, rem, rem);

impl std::ops::Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.divrem(rhs).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_decimal(s).unwrap()
    }

    #[test]
    fn construction_and_display() {
        assert_eq!(BigUint::zero().to_decimal(), "0");
        assert_eq!(BigUint::from_u64(12345).to_decimal(), "12345");
        assert_eq!(
            BigUint::from_u128(u128::MAX).to_decimal(),
            u128::MAX.to_string()
        );
        assert_eq!(big("340282366920938463463374607431768211456").bits(), 129);
    }

    #[test]
    fn normalization() {
        let a = BigUint::from_limbs(vec![5, 0, 0]);
        assert_eq!(a.limbs(), &[5]);
        assert_eq!(BigUint::from_limbs(vec![0, 0]), BigUint::zero());
    }

    #[test]
    fn add_with_carries() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(1);
        assert_eq!(a.add(&b).to_decimal(), "18446744073709551616");
        let c = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        assert_eq!(c.add(&BigUint::one()).limbs(), &[0, 0, 1],);
    }

    #[test]
    fn sub_with_borrows() {
        let a = big("18446744073709551616"); // 2^64
        assert_eq!(a.sub(&BigUint::one()).to_u64(), Some(u64::MAX));
        assert!(BigUint::from_u64(3)
            .checked_sub(&BigUint::from_u64(5))
            .is_none());
        assert_eq!(a.checked_sub(&a).unwrap(), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigUint::one().sub(&BigUint::from_u64(2));
    }

    #[test]
    fn mul_small_and_large() {
        assert_eq!(
            BigUint::from_u64(u64::MAX)
                .mul(&BigUint::from_u64(u64::MAX))
                .to_decimal(),
            "340282366920938463426481119284349108225"
        );
        // (2^128 - 1) * (2^128 - 1)
        let a = big("340282366920938463463374607431768211455");
        assert_eq!(
            a.mul(&a).to_decimal(),
            "115792089237316195423570985008687907852589419931798687112530834793049593217025"
        );
    }

    mod karatsuba_threshold_props {
        //! Karatsuba ≡ schoolbook straddling the 24-limb dispatch
        //! threshold: one limb below, exactly at, one above, and far
        //! above — plus asymmetric pairs, where the split point is taken
        //! from the longer operand.
        use super::*;
        use proptest::prelude::*;

        fn limbs(n: usize) -> impl Strategy<Value = BigUint> {
            proptest::collection::vec(any::<u64>(), n..n + 1).prop_map(BigUint::from_limbs)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            #[test]
            fn boundary_23(a in limbs(23), b in limbs(23)) {
                prop_assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
            }

            #[test]
            fn boundary_24(a in limbs(24), b in limbs(24)) {
                prop_assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
            }

            #[test]
            fn boundary_25(a in limbs(25), b in limbs(25)) {
                prop_assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
            }

            #[test]
            fn asymmetric_23_64(a in limbs(23), b in limbs(64)) {
                prop_assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
            }

            #[test]
            fn deep_recursion_64(a in limbs(64), b in limbs(64)) {
                // 64 limbs recurses through the threshold internally.
                prop_assert_eq!(a.mul(&b), a.mul_schoolbook(&b));
            }
        }
    }

    #[test]
    fn mul_karatsuba_matches_schoolbook() {
        // Build a 40-limb number deterministically.
        let mut limbs = Vec::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..40 {
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9).wrapping_add(1);
            limbs.push(x);
        }
        let a = BigUint::from_limbs(limbs.clone());
        limbs.reverse();
        let b = BigUint::from_limbs(limbs);
        assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_u64(1);
        assert_eq!(a.shl(64).limbs(), &[0, 1]);
        assert_eq!(a.shl(65).limbs(), &[0, 2]);
        assert_eq!(a.shl(130).shr(130), a);
        assert_eq!(big("12345678901234567890").shr(200), BigUint::zero());
        let b = big("987654321987654321987654321");
        assert_eq!(b.shl(77).shr(77), b);
    }

    #[test]
    fn divrem_small() {
        let (q, r) = big("1000000000000000000000").divrem_u64(7);
        assert_eq!(q.to_decimal(), "142857142857142857142");
        assert_eq!(r, 6);
    }

    #[test]
    fn divrem_multi_limb() {
        let n =
            big("115792089237316195423570985008687907852589419931798687112530834793049593217025");
        let d = big("340282366920938463463374607431768211455");
        let (q, r) = n.divrem(&d);
        assert_eq!(q, d);
        assert_eq!(r, BigUint::zero());
        // Non-trivial remainder.
        let n2 = n.add_u64(12345);
        let (q2, r2) = n2.divrem(&d);
        assert_eq!(q2.mul(&d).add(&r2), n2);
        assert!(r2 < d);
    }

    #[test]
    fn divrem_requires_addback_case() {
        // Trigger the rare D6 add-back path: classic Knuth test values.
        let u = BigUint::from_limbs(vec![0, 0, 0x8000_0000_0000_0000]);
        let v = BigUint::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = u.divrem(&v);
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r < v);
    }

    #[test]
    fn division_identity_stress() {
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for ncount in [1usize, 2, 3, 5, 8] {
            for dcount in [1usize, 2, 3, 4] {
                let n = BigUint::from_limbs((0..ncount).map(|_| next()).collect());
                let d = BigUint::from_limbs((0..dcount).map(|_| next()).collect());
                if d.is_zero() {
                    continue;
                }
                let (q, r) = n.divrem(&d);
                assert_eq!(q.mul(&d).add(&r), n, "n={n} d={d}");
                assert!(r < d);
            }
        }
    }

    #[test]
    fn modpow_known_values() {
        let b = BigUint::from_u64(4);
        let e = BigUint::from_u64(13);
        let m = BigUint::from_u64(497);
        assert_eq!(b.modpow(&e, &m).to_u64(), Some(445));
        // Fermat: 2^(p-1) = 1 mod p for prime p.
        let p = big("1000000007");
        assert_eq!(
            BigUint::from_u64(2)
                .modpow(&p.sub(&BigUint::one()), &p)
                .to_u64(),
            Some(1)
        );
    }

    #[test]
    fn modpow_modulus_one() {
        assert_eq!(
            BigUint::from_u64(5).modpow(&BigUint::from_u64(5), &BigUint::one()),
            BigUint::zero()
        );
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "123456789012345678901234567890123456789012345678901234567890",
        ] {
            assert_eq!(big(s).to_decimal(), s);
        }
        assert!(BigUint::from_decimal("12a").is_none());
        assert!(BigUint::from_decimal("").is_none());
    }

    #[test]
    fn hex_roundtrip() {
        let a = BigUint::from_hex("deadbeefcafebabe1234567890abcdef").unwrap();
        assert_eq!(a.to_hex(), "deadbeefcafebabe1234567890abcdef");
        assert_eq!(BigUint::from_hex("0").unwrap(), BigUint::zero());
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn ordering() {
        assert!(big("100") < big("101"));
        assert!(big("18446744073709551616") > big("18446744073709551615"));
        assert_eq!(big("42").cmp(&big("42")), Ordering::Equal);
    }

    #[test]
    fn bit_access() {
        let a = BigUint::from_u64(0b1010);
        assert!(!a.bit(0));
        assert!(a.bit(1));
        assert!(!a.bit(2));
        assert!(a.bit(3));
        assert!(!a.bit(64));
        assert!(a.shl(64).bit(65));
    }

    #[test]
    fn operators() {
        let a = big("1000");
        let b = big("3");
        assert_eq!((&a + &b).to_decimal(), "1003");
        assert_eq!((&a - &b).to_decimal(), "997");
        assert_eq!((&a * &b).to_decimal(), "3000");
        assert_eq!((&a / &b).to_decimal(), "333");
        assert_eq!((&a % &b).to_decimal(), "1");
    }

    #[test]
    fn parity() {
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
        assert!(big("18446744073709551616").is_even());
    }

    #[test]
    fn bytes_be_roundtrip() {
        for s in [
            "0",
            "1",
            "255",
            "256",
            "18446744073709551615",
            "18446744073709551616",
            "123456789012345678901234567890123456789012345678901234567890",
        ] {
            let v = big(s);
            assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v, "{s}");
        }
    }

    #[test]
    fn bytes_be_wire_shape() {
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
        assert_eq!(BigUint::from_u64(1).to_bytes_be(), vec![1]);
        assert_eq!(BigUint::from_u64(0x0102).to_bytes_be(), vec![1, 2]);
        // 2^64 = 01 followed by eight zero bytes.
        let v = BigUint::one().shl(64);
        assert_eq!(v.to_bytes_be(), vec![1, 0, 0, 0, 0, 0, 0, 0, 0]);
        // Leading zeros accepted on parse.
        assert_eq!(
            BigUint::from_bytes_be(&[0, 0, 1, 2]),
            BigUint::from_u64(0x0102)
        );
    }
}
