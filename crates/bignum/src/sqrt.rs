//! Integer square root and perfect-square testing — the core predicate of
//! the weak-key factor search (§5.2): `N = P·(P+D)` has a solution iff
//! `D² + 4N` is a perfect square.

use crate::biguint::BigUint;

impl BigUint {
    /// Floor of the square root, by integer Newton iteration.
    pub fn isqrt(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        if self.bits() <= 64 {
            return BigUint::from_u64((self.to_u64().unwrap() as f64).sqrt() as u64)
                .adjust_sqrt(self);
        }
        // Initial guess: 2^ceil(bits/2) ≥ √self, so the Newton sequence is
        // monotonically decreasing until it brackets the root.
        let mut x = BigUint::one().shl(self.bits().div_ceil(2));
        loop {
            // x' = (x + self/x) / 2
            let next = x.add(&self.divrem(&x).0).shr(1);
            if next >= x {
                break;
            }
            x = next;
        }
        x.adjust_sqrt(self)
    }

    /// Nudges an approximate root to the exact floor value.
    fn adjust_sqrt(self, n: &BigUint) -> BigUint {
        let mut x = self;
        while x.mul(&x) > *n {
            x = x.sub(&BigUint::one());
        }
        loop {
            let next = x.add_u64(1);
            if next.mul(&next) > *n {
                return x;
            }
            x = next;
        }
    }

    /// True iff the value is a perfect square; returns the root.
    pub fn perfect_sqrt(&self) -> Option<BigUint> {
        // Cheap filter: squares mod 16 are only {0,1,4,9}.
        let low = self.limbs().first().copied().unwrap_or(0) & 0xF;
        if !matches!(low, 0 | 1 | 4 | 9) {
            return None;
        }
        let root = self.isqrt();
        if root.mul(&root) == *self {
            Some(root)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_decimal(s).unwrap()
    }

    #[test]
    fn small_roots() {
        for (n, r) in [
            (0u64, 0u64),
            (1, 1),
            (2, 1),
            (3, 1),
            (4, 2),
            (8, 2),
            (9, 3),
            (15, 3),
            (16, 4),
        ] {
            assert_eq!(BigUint::from_u64(n).isqrt().to_u64(), Some(r), "isqrt({n})");
        }
    }

    #[test]
    fn u64_boundary() {
        let n = BigUint::from_u64(u64::MAX);
        let r = n.isqrt();
        assert_eq!(r.to_u64(), Some(4294967295));
    }

    #[test]
    fn large_exact_square() {
        let p = big("123456789012345678901234567890123456789");
        let sq = p.mul(&p);
        assert_eq!(sq.isqrt(), p);
        assert_eq!(sq.perfect_sqrt(), Some(p));
    }

    #[test]
    fn large_non_square() {
        let p = big("123456789012345678901234567890123456789");
        let sq_plus = p.mul(&p).add_u64(1);
        assert_eq!(sq_plus.isqrt(), p);
        // +1 above a square: ends in ...22 ≡ 6 mod 16? be robust: check both
        // the filter path and the exact path.
        assert!(
            sq_plus.perfect_sqrt().is_none() || sq_plus.isqrt().mul(&sq_plus.isqrt()) == sq_plus
        );
        let sq_minus = p.mul(&p).sub(&BigUint::one());
        assert!(sq_minus.perfect_sqrt().is_none());
    }

    #[test]
    fn floor_property_stress() {
        let mut x = 0xA076_1D64_78BD_642Fu64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for limbs in [1usize, 2, 3, 4, 6] {
            let n = BigUint::from_limbs((0..limbs).map(|_| next()).collect());
            let r = n.isqrt();
            assert!(r.mul(&r) <= n, "floor: n={n}");
            let r1 = r.add_u64(1);
            assert!(r1.mul(&r1) > n, "tight: n={n}");
        }
    }

    #[test]
    fn mod16_filter_consistent() {
        // Every residue that the filter rejects must truly be a non-square.
        for v in 0u64..4096 {
            let n = BigUint::from_u64(v);
            let is_square = {
                let r = (v as f64).sqrt() as u64;
                r * r == v || (r + 1) * (r + 1) == v
            };
            assert_eq!(n.perfect_sqrt().is_some(), is_square, "v={v}");
        }
    }
}
