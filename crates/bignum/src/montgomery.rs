//! Montgomery-form modular arithmetic: the multiplication kernel behind
//! `modpow`, Miller–Rabin, and prime generation for **odd** moduli.
//!
//! Montgomery representation maps `x` to `x·R mod n` with `R = 2^(64k)`
//! (`k` = limb count of `n`). In that domain a modular multiplication
//! needs no division at all: the word-by-word CIOS (Coarsely Integrated
//! Operand Scanning) loop interleaves the product accumulation with REDC
//! reduction steps, each of which cancels the lowest limb using the
//! precomputed `n' = -n⁻¹ mod 2^64`. One CIOS pass costs `2k² + k` word
//! multiplications — against `mul` + Knuth Algorithm D (≈ `2k²` plus the
//! quotient-estimation loop with its per-step 128-bit divisions), the
//! constant factor is far smaller and there is no normalization shifting,
//! which is what makes the §5.2 prime-generation and factor-search inner
//! loops fast.
//!
//! # Invariants
//!
//! * the modulus is odd and > 1 (checked by [`Montgomery::new`]);
//! * every Montgomery-form value handed to [`Montgomery::mul`] is fully
//!   reduced (`< n`); CIOS then keeps the running accumulator `t < 2n`
//!   before its final conditional subtraction, so each output is again
//!   `< n` — the standard CIOS bound `t ≤ 2n − 1` holds because
//!   `t' = (t + a_i·b + m·n)/2^64 < (2^64·n + 2^64·n)/2^64 = 2n`;
//! * `R > n` always (`k` is exactly `n`'s limb count), so conversion via
//!   `x·R² / R` round-trips every `x < n`.
//!
//! The whole kernel is safe Rust over `u64`/`u128` limb slices — no
//! `unsafe`, no platform intrinsics — so Miri can execute it directly
//! (CI does).
//!
//! Even moduli cannot use Montgomery form (`n` must be invertible mod
//! `2^64`); callers fall back to the division path, which doubles as the
//! differential-test oracle for this kernel (`tests/bignum_props.rs`).

use crate::biguint::BigUint;

/// Precomputed context for modular arithmetic with one odd modulus.
///
/// Construction costs one division (for `R² mod n`) and a handful of
/// word operations (Newton inversion for `n'`); every subsequent
/// [`mulmod`](Montgomery::mulmod) or squaring is division-free. Build it
/// once per modulus and reuse it — `is_probable_prime` amortizes one
/// context over all witnesses of a candidate.
#[derive(Debug, Clone)]
pub struct Montgomery {
    /// The modulus, padded to exactly `k` limbs (its natural length).
    n: Vec<u64>,
    /// `-n⁻¹ mod 2^64`, by Newton inversion.
    n0inv: u64,
    /// `R² mod n` in plain form, used to enter Montgomery form.
    r2: Vec<u64>,
    /// `R mod n` — the Montgomery form of 1.
    r1: Vec<u64>,
    /// The modulus as a `BigUint`, for reductions and conversions.
    modulus: BigUint,
}

impl Montgomery {
    /// Builds a context for `modulus`, or `None` when the modulus is even
    /// or ≤ 1 (Montgomery form needs `gcd(n, 2^64) = 1` and a nontrivial
    /// residue ring).
    pub fn new(modulus: &BigUint) -> Option<Montgomery> {
        if modulus.is_even() || modulus.is_one() {
            return None;
        }
        let k = modulus.limbs().len();
        let mut n = vec![0u64; k];
        n.copy_from_slice(modulus.limbs());
        let n0inv = neg_inv_u64(n[0]);
        let r1 = pad(BigUint::one().shl(64 * k as u64).rem(modulus).limbs(), k);
        let r2 = pad(
            BigUint::one().shl(128 * k as u64).rem(modulus).limbs(),
            k,
        );
        Some(Montgomery {
            n,
            n0inv,
            r2,
            r1,
            modulus: modulus.clone(),
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Converts `x` (reduced mod n first) into Montgomery form `x·R mod n`.
    pub fn to_montgomery(&self, x: &BigUint) -> BigUint {
        let xr = pad(x.rem(&self.modulus).limbs(), self.n.len());
        BigUint::from_limbs(self.cios(&xr, &self.r2))
    }

    /// Converts Montgomery form `x·R mod n` back to the plain residue `x`.
    pub fn from_montgomery(&self, x: &BigUint) -> BigUint {
        let k = self.n.len();
        debug_assert!(x < &self.modulus, "Montgomery-form value must be < n");
        let xr = pad(x.limbs(), k);
        let mut one = vec![0u64; k];
        one[0] = 1;
        BigUint::from_limbs(self.cios(&xr, &one))
    }

    /// Montgomery-domain product: maps `(aR, bR)` to `abR mod n`. Both
    /// inputs must be reduced (`< n`); the output is reduced.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let k = self.n.len();
        debug_assert!(a < &self.modulus && b < &self.modulus);
        let al = pad(a.limbs(), k);
        let bl = pad(b.limbs(), k);
        BigUint::from_limbs(self.cios(&al, &bl))
    }

    /// `(a * b) mod n` on plain values, via two conversions and one CIOS
    /// pass (the third conversion is folded into the multiply: converting
    /// only `a` leaves the product in Montgomery-free form).
    pub fn mulmod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let k = self.n.len();
        // aR · b / R = ab mod n: one conversion instead of two.
        let am = self.to_montgomery(a);
        let bl = pad(b.rem(&self.modulus).limbs(), k);
        BigUint::from_limbs(self.cios(&pad(am.limbs(), k), &bl))
    }

    /// `base^exp mod n` by square-and-multiply entirely inside the
    /// Montgomery domain: one conversion in, `exp.bits()` squarings plus
    /// one multiply per set bit, one conversion out.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.from_montgomery(&self.pow_m(&self.to_montgomery(base), exp))
    }

    /// The Montgomery form of 1 (`R mod n`).
    pub fn one_m(&self) -> BigUint {
        BigUint::from_limbs(self.r1.clone())
    }

    /// Montgomery-domain exponentiation: `base_m` is in Montgomery form
    /// and so is the result. This is the Miller–Rabin inner loop shape:
    /// the witness chain can square in-domain without converting back.
    ///
    /// The square-and-multiply loop runs over three reusable raw limb
    /// buffers — no allocation, `BigUint` normalization, or re-padding per
    /// step, which at 8–16 limbs would otherwise cost as much as the CIOS
    /// arithmetic itself.
    pub fn pow_m(&self, base_m: &BigUint, exp: &BigUint) -> BigUint {
        let k = self.n.len();
        debug_assert!(base_m < &self.modulus);
        // All three buffers are k+2 limbs so they can swap with the CIOS
        // output buffer; only [..k] carries the value.
        let mut result = pad(&self.r1, k + 2);
        let mut base = pad(base_m.limbs(), k + 2);
        let mut scratch = vec![0u64; k + 2];
        let bits = exp.bits();
        for i in 0..bits {
            if exp.bit(i) {
                self.cios_into(&result[..k], &base[..k], &mut scratch);
                std::mem::swap(&mut result, &mut scratch);
            }
            if i + 1 < bits {
                self.cios_into(&base[..k], &base[..k], &mut scratch);
                std::mem::swap(&mut base, &mut scratch);
            }
        }
        result.truncate(k);
        BigUint::from_limbs(result)
    }

    /// One CIOS (coarsely integrated operand scanning) pass over `k`-limb
    /// slices: returns `a·b·R⁻¹ mod n` as normalized limbs.
    fn cios(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut t = vec![0u64; self.n.len() + 2];
        self.cios_into(a, b, &mut t);
        t.truncate(self.n.len());
        while t.last() == Some(&0) {
            t.pop();
        }
        t
    }

    /// CIOS core: computes `a·b·R⁻¹ mod n` into `t[..k]` (`t` must have
    /// `k + 2` limbs; its previous contents are overwritten, and `t[k..]`
    /// is zero on return). `a` and `b` are `k`-limb slices and may alias
    /// each other, but not `t`.
    fn cios_into(&self, a: &[u64], b: &[u64], t: &mut [u64]) {
        let k = self.n.len();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        debug_assert_eq!(t.len(), k + 2);
        // t's top limb t[k+1] stays in {0, 1}: the accumulator is bounded
        // by 2n·2^64 inside the loop (see module invariants).
        t.fill(0);
        for &bi in &b[..k] {
            // t += a * bi
            let mut carry = 0u128;
            for j in 0..k {
                let s = t[j] as u128 + a[j] as u128 * bi as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // m cancels the low limb: (t + m·n) ≡ 0 mod 2^64.
            let m = t[0].wrapping_mul(self.n0inv);
            let s = t[0] as u128 + m as u128 * self.n[0] as u128;
            debug_assert_eq!(s as u64, 0);
            let mut carry = s >> 64;
            // t = (t + m·n) / 2^64, fused: store each limb shifted down.
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1] + (s >> 64) as u64;
            t[k + 1] = 0;
        }
        // Final conditional subtraction: t < 2n, so one pass suffices.
        if t[k] != 0 || ge(&t[..k], &self.n) {
            sub_in_place(&mut t[..k + 1], &self.n);
        }
    }
}

/// `-v⁻¹ mod 2^64` for odd `v`, by Newton–Hensel lifting: `inv = v⁻¹ mod
/// 2` trivially, and each step doubles the number of correct low bits
/// (`inv' = inv·(2 − v·inv)`), so five steps reach 64 bits from the
/// 4-bit-correct seed `3v ^ 2`.
fn neg_inv_u64(v: u64) -> u64 {
    debug_assert!(v & 1 == 1, "modulus limb must be odd");
    let mut inv = v.wrapping_mul(3) ^ 2; // correct mod 2^4
    for _ in 0..4 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(v.wrapping_mul(inv)));
    }
    debug_assert_eq!(v.wrapping_mul(inv), 1);
    inv.wrapping_neg()
}

/// Copies `limbs` into a fresh vector padded with high zeros to length `k`.
fn pad(limbs: &[u64], k: usize) -> Vec<u64> {
    debug_assert!(limbs.len() <= k);
    let mut out = vec![0u64; k];
    out[..limbs.len()].copy_from_slice(limbs);
    out
}

/// `a >= b` over equal-length little-endian limb slices.
fn ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a -= b` in place; `a` has one spare high limb absorbing the borrow.
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..b.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    let last = b.len();
    a[last] = a[last].wrapping_sub(borrow);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_decimal(s).unwrap()
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(Montgomery::new(&BigUint::from_u64(10)).is_none());
        assert!(Montgomery::new(&BigUint::one()).is_none());
        assert!(Montgomery::new(&BigUint::zero()).is_none());
        assert!(Montgomery::new(&BigUint::from_u64(9)).is_some());
    }

    #[test]
    fn neg_inv_is_exact() {
        for v in [1u64, 3, 5, 7, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF1] {
            let ninv = neg_inv_u64(v);
            assert_eq!(v.wrapping_mul(ninv), 1u64.wrapping_neg(), "v={v:#x}");
        }
    }

    #[test]
    fn roundtrip_small() {
        let m = Montgomery::new(&BigUint::from_u64(97)).unwrap();
        for x in 0..97u64 {
            let v = BigUint::from_u64(x);
            assert_eq!(m.from_montgomery(&m.to_montgomery(&v)), v, "x={x}");
        }
    }

    #[test]
    fn mulmod_matches_division_small() {
        let n = BigUint::from_u64(1_000_000_007);
        let m = Montgomery::new(&n).unwrap();
        let mut x = 0xDEAD_BEEFu64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = BigUint::from_u64(x);
            let b = BigUint::from_u64(x.rotate_left(17));
            assert_eq!(m.mulmod(&a, &b), a.mulmod_div(&b, &n));
        }
    }

    #[test]
    fn modpow_matches_division_multi_limb() {
        // 2^127 - 1 (Mersenne prime, 2 limbs) and a 3-limb odd composite.
        let moduli = [
            BigUint::one().shl(127).sub(&BigUint::one()),
            big("123456789012345678901234567890123456789012345678901"),
        ];
        for n in &moduli {
            let m = Montgomery::new(n).unwrap();
            let base = big("98765432109876543210987654321");
            let exp = big("1099511627776999");
            assert_eq!(m.modpow(&base, &exp), base.modpow_div(&exp, n));
        }
    }

    #[test]
    fn pow_m_stays_in_domain() {
        let n = big("100000000000000000000000000000000000000000000000151");
        let m = Montgomery::new(&n).unwrap();
        let base = big("31337");
        let exp = big("65537");
        let base_m = m.to_montgomery(&base);
        let r = m.pow_m(&base_m, &exp);
        assert!(r < n);
        assert_eq!(m.from_montgomery(&r), base.modpow_div(&exp, &n));
    }

    #[test]
    fn zero_exponent_and_base_edges() {
        let n = BigUint::from_u64(101);
        let m = Montgomery::new(&n).unwrap();
        assert_eq!(
            m.modpow(&BigUint::from_u64(7), &BigUint::zero()),
            BigUint::one()
        );
        assert_eq!(
            m.modpow(&BigUint::zero(), &BigUint::from_u64(5)),
            BigUint::zero()
        );
        assert_eq!(m.mulmod(&BigUint::zero(), &BigUint::from_u64(5)), BigUint::zero());
    }

    #[test]
    fn all_ones_modulus_stress() {
        // n with every limb 2^64-1 maximizes intermediate carries.
        let n = BigUint::from_limbs(vec![u64::MAX; 4]);
        let m = Montgomery::new(&n).unwrap();
        let a = BigUint::from_limbs(vec![u64::MAX - 1; 4]);
        let b = BigUint::from_limbs(vec![0x8000_0000_0000_0001; 4]);
        assert_eq!(m.mulmod(&a, &b), a.mulmod_div(&b, &n));
        let e = BigUint::from_u64(1 << 20);
        assert_eq!(m.modpow(&a, &e), a.modpow_div(&e, &n));
    }
}
