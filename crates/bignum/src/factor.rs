//! The weak-RSA-key factor search of §5.2.
//!
//! A "weak" RSA modulus is `N = P·(P+D)` for a small even difference `D`.
//! The brute-force search tests candidate differences: `N = P(P+D)` has an
//! integer solution iff the discriminant `D² + 4N` is a perfect square
//! `S²`, in which case `P = (S − D) / 2`.
//!
//! The paper splits the search space into tasks of 32 even differences
//! each; [`search_range`] is exactly one such task's work, and
//! `kpn-parallel` distributes these across Workers.

use crate::biguint::BigUint;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A weak modulus constructed for the experiment, with its known factors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeakKey {
    /// The modulus `N = P·(P+D)`.
    pub n: BigUint,
    /// The smaller factor.
    pub p: BigUint,
    /// The difference (`q = p + d`), always even.
    pub d: u64,
}

/// Builds an experimental weak key: a random `bits`-bit prime `P` and
/// `N = P·(P+D)` (the paper's test case uses 512-bit `P`, giving 1024-bit
/// `N`, with `D` chosen so the factor is found after a known number of
/// tasks).
pub fn make_weak_key<R: Rng + ?Sized>(bits: u64, d: u64, rng: &mut R) -> WeakKey {
    assert!(d.is_multiple_of(2), "difference must be even (P and P+D both odd)");
    let p = BigUint::gen_prime(bits, rng);
    let q = p.add_u64(d);
    WeakKey { n: p.mul(&q), p, d }
}

/// Result of one search task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SearchOutcome {
    /// No factor in the tested range.
    NotFound,
    /// `N = p·(p + d)`.
    Found {
        /// The recovered smaller factor.
        p: BigUint,
        /// The difference at which it was found.
        d: u64,
    },
}

/// Quadratic-residue filter moduli. `64` is checked from the low limb;
/// the odd ones each knock out the differences whose discriminant is a
/// non-residue. Combined pass rate ≈ 0.8%, so the big-integer square
/// root runs on roughly 1 in 120 candidates instead of 1 in 4 (the old
/// mod-16 filter alone).
const FILTER_MODULI: [u64; 4] = [64, 63, 65, 11];

/// Per-modulus context for the discriminant test, shared across all the
/// differences of one task: precomputes `4N` (the old code re-shifted it
/// per difference) and the residues `4N mod m` for each filter modulus,
/// so a candidate difference is usually rejected with a few words of
/// `u64` arithmetic and no big-integer operation at all.
#[derive(Debug, Clone)]
pub struct DiffTester {
    n: BigUint,
    four_n: BigUint,
    /// `4N mod m` for each entry of [`FILTER_MODULI`].
    four_n_mod: [u64; FILTER_MODULI.len()],
    /// Bitmask of squares mod `m` for each entry of [`FILTER_MODULI`]
    /// (`u128` because 65 > 64 residues).
    square_masks: [u128; FILTER_MODULI.len()],
}

impl DiffTester {
    /// Builds the shared context for modulus `n`.
    pub fn new(n: &BigUint) -> DiffTester {
        let four_n = n.shl(2);
        let mut four_n_mod = [0u64; FILTER_MODULI.len()];
        let mut square_masks = [0u128; FILTER_MODULI.len()];
        for (i, &m) in FILTER_MODULI.iter().enumerate() {
            four_n_mod[i] = four_n.divrem_u64(m).1;
            for r in 0..m {
                square_masks[i] |= 1u128 << ((r * r) % m);
            }
        }
        DiffTester {
            n: n.clone(),
            four_n,
            four_n_mod,
            square_masks,
        }
    }

    /// True iff `d² + 4N` is a square modulo every filter modulus — the
    /// cheap necessary condition run before any big-integer work.
    fn filters_pass(&self, d: u64) -> bool {
        for (i, &m) in FILTER_MODULI.iter().enumerate() {
            let dm = d % m;
            let disc_mod = (self.four_n_mod[i] + dm * dm) % m;
            if self.square_masks[i] & (1u128 << disc_mod) == 0 {
                return false;
            }
        }
        true
    }

    /// Tests whether `n = p(p+d)` for this specific difference; returns `p`.
    pub fn test(&self, d: u64) -> Option<BigUint> {
        if !self.filters_pass(d) {
            return None;
        }
        // discriminant = d² + 4n
        let disc = BigUint::from_u128((d as u128) * (d as u128)).add(&self.four_n);
        let s = disc.perfect_sqrt()?;
        // p = (s - d) / 2 — s ≥ d always holds since disc ≥ 4n > d².
        let diff = s.checked_sub(&BigUint::from_u64(d))?;
        if !diff.is_even() {
            return None;
        }
        let p = diff.shr(1);
        if p.is_zero() {
            return None;
        }
        let q = p.add_u64(d);
        if p.mul(&q) == self.n {
            Some(p)
        } else {
            None
        }
    }
}

/// Tests whether `n = p(p+d)` for this specific difference; returns `p`.
///
/// One-shot form of [`DiffTester::test`]; a loop over many differences of
/// one modulus should build the [`DiffTester`] once instead (as
/// [`search_range`] does).
pub fn test_difference(n: &BigUint, d: u64) -> Option<BigUint> {
    DiffTester::new(n).test(d)
}

/// Searches the even differences in `[d_start, d_end)` — one worker task's
/// unit of work (the paper uses ranges of 32 even values).
pub fn search_range(n: &BigUint, d_start: u64, d_end: u64) -> SearchOutcome {
    let tester = DiffTester::new(n);
    let mut d = d_start + (d_start % 2);
    while d < d_end {
        if let Some(p) = tester.test(d) {
            return SearchOutcome::Found { p, d };
        }
        d += 2;
    }
    SearchOutcome::NotFound
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFAC702)
    }

    #[test]
    fn make_weak_key_is_consistent() {
        let key = make_weak_key(64, 100, &mut rng());
        assert_eq!(key.p.mul(&key.p.add_u64(key.d)), key.n);
        assert_eq!(key.n.bits(), 128);
    }

    #[test]
    fn test_difference_finds_planted_factor() {
        let key = make_weak_key(96, 4242, &mut rng());
        assert_eq!(test_difference(&key.n, key.d), Some(key.p.clone()));
        assert_eq!(test_difference(&key.n, key.d + 2), None);
        assert_eq!(test_difference(&key.n, 0), None);
    }

    #[test]
    fn search_range_hits_and_misses() {
        let key = make_weak_key(80, 1000, &mut rng());
        match search_range(&key.n, 960, 1024) {
            SearchOutcome::Found { p, d } => {
                assert_eq!(p, key.p);
                assert_eq!(d, 1000);
            }
            other => panic!("expected Found, got {other:?}"),
        }
        assert_eq!(search_range(&key.n, 0, 1000), SearchOutcome::NotFound);
        assert_eq!(search_range(&key.n, 1002, 2000), SearchOutcome::NotFound);
    }

    #[test]
    fn search_range_normalizes_odd_start() {
        let key = make_weak_key(64, 10, &mut rng());
        // Odd start rounds up to the next even difference.
        match search_range(&key.n, 9, 12) {
            SearchOutcome::Found { d, .. } => assert_eq!(d, 10),
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn d_zero_square_modulus() {
        // N = P² (difference 0) is found at d = 0.
        let p = BigUint::gen_prime(64, &mut rng());
        let n = p.mul(&p);
        assert_eq!(test_difference(&n, 0), Some(p));
    }

    #[test]
    fn paper_shape_task_batches() {
        // The paper: each task covers 32 even differences; D chosen so the
        // factor is found in task 2048. Verify task arithmetic at a smaller
        // scale: task k covers [64k, 64(k+1)).
        let task = 20u64;
        let d = 64 * task + 30; // lands inside task 20
        let key = make_weak_key(64, d - (d % 2), &mut rng());
        let k = key.d / 64;
        assert_eq!(k, task);
        match search_range(&key.n, 64 * k, 64 * (k + 1)) {
            SearchOutcome::Found { .. } => {}
            other => panic!("task {task} should find the factor, got {other:?}"),
        }
    }

    #[test]
    fn outcome_serializes() {
        let key = make_weak_key(64, 8, &mut rng());
        let found = SearchOutcome::Found {
            p: key.p.clone(),
            d: 8,
        };
        // serde derive compiles; round-trip via the workspace codec is
        // covered in kpn-parallel integration tests.
        let cloned = found.clone();
        assert_eq!(found, cloned);
    }
}
