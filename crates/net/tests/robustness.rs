//! Robustness of the node's network surface: garbage on the wire,
//! half-open control sessions, and late/duplicate connections must never
//! take the server down.

use kpn_core::DataReader;
use kpn_net::{GraphBuilder, Node, ServerHandle};
use std::io::Write;
use std::net::TcpStream;

fn server() -> (std::sync::Arc<Node>, ServerHandle) {
    let n = Node::serve("127.0.0.1:0").unwrap();
    let h = ServerHandle::new(n.addr().to_string());
    (n, h)
}

#[test]
fn garbage_connections_do_not_kill_the_server() {
    let (node, handle) = server();
    let addr = node.addr();

    // 1. Connect and immediately hang up.
    drop(TcpStream::connect(addr).unwrap());
    // 2. Unknown connection tag.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&[0xFFu8; 16]).unwrap();
    drop(s);
    // 3. Control tag followed by garbage framing.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&[0x43]).unwrap(); // CONTROL
    s.write_all(&[0xFF; 64]).unwrap();
    drop(s);
    // 4. Data tag with a truncated hello.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&[0x48, 0x01]).unwrap(); // HELLO + 1 of 8 token bytes
    drop(s);
    // 5. Control message with an absurd length prefix (must not OOM).
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&[0x43]).unwrap();
    s.write_all(&u32::MAX.to_be_bytes()).unwrap();
    drop(s);

    // The server still works.
    handle.ping().expect("server survived the garbage");
    let mut g = GraphBuilder::new();
    let a = g.channel();
    let b = g.channel();
    g.add(0, "Sequence", &(0i64, Some(5u64)), &[], &[a])
        .unwrap();
    g.add(0, "Scale", &2i64, &[a], &[b]).unwrap();
    g.claim_reader(b).unwrap();
    let client = Node::serve("127.0.0.1:0").unwrap();
    let mut dep = g.deploy(&client, &[handle]).unwrap();
    let mut r = DataReader::new(dep.readers.remove(&b).unwrap());
    for i in 0..5 {
        assert_eq!(r.read_i64().unwrap(), i * 2);
    }
    drop(r);
    dep.join().unwrap();
}

#[test]
fn duplicate_hello_token_is_parked_not_fatal() {
    // Two writers presenting the same token: the first is routed, the
    // second parks (and is dropped when the endpoint dies) — never a
    // crash, and the legitimate stream is unaffected.
    let (node, _h) = server();
    let token: u64 = rand::random();
    let mut reader = node.remote_reader(token);
    let mut w1 = kpn_net::remote_writer(&node.addr().to_string(), token).unwrap();
    let _w2 = kpn_net::remote_writer(&node.addr().to_string(), token).unwrap();
    w1.write_all(b"legit").unwrap();
    let mut buf = [0u8; 5];
    reader.read_exact(&mut buf).unwrap();
    assert_eq!(&buf, b"legit");
}

#[test]
fn run_task_with_wrong_params_reports_error() {
    use kpn_net::{ProcessRegistry, TaskRegistry};
    let mut tasks = TaskRegistry::new();
    tasks.register("double", |x: i64| Ok(x * 2));
    let node = Node::serve_with("127.0.0.1:0", ProcessRegistry::with_defaults(), tasks).unwrap();
    let handle = ServerHandle::new(node.addr().to_string());
    // Right call works.
    let ok: i64 = handle.run_task("double", &21i64).unwrap();
    assert_eq!(ok, 42);
    // Wrong parameter type: the server reports a decode error, then keeps
    // serving.
    let err = handle
        .run_task::<_, i64>("double", &"not a number".to_string())
        .unwrap_err();
    assert!(err.to_string().contains("error"), "{err}");
    let still: i64 = handle.run_task("double", &5i64).unwrap();
    assert_eq!(still, 10);
}
