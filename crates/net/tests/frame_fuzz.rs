//! Fuzz the network-facing parsers: arbitrary bytes from the wire must
//! produce errors, never panics or unbounded allocations.

use kpn_net::{ChannelSpec, ControlRequest, GraphSpec, ProcessSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte blobs decoded as control messages or graph specs
    /// fail cleanly.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = kpn_codec::from_bytes::<ControlRequest>(&bytes);
        let _ = kpn_codec::from_bytes::<GraphSpec>(&bytes);
    }

    /// Specs round-trip through the codec unchanged (structural equality
    /// via re-encoding).
    #[test]
    fn specs_roundtrip(
        capacities in proptest::collection::vec(1usize..100_000, 0..8),
        names in proptest::collection::vec("[a-zA-Z]{1,12}", 0..8),
    ) {
        let spec = GraphSpec {
            channels: capacities
                .iter()
                .map(|&c| ChannelSpec { capacity: c })
                .collect(),
            processes: names
                .iter()
                .map(|n| ProcessSpec {
                    type_name: n.clone(),
                    params: n.as_bytes().to_vec(),
                    inputs: vec![],
                    outputs: vec![],
                })
                .collect(),
        };
        let bytes = kpn_codec::to_bytes(&spec).unwrap();
        let back: GraphSpec = kpn_codec::from_bytes(&bytes).unwrap();
        let bytes2 = kpn_codec::to_bytes(&back).unwrap();
        prop_assert_eq!(bytes, bytes2);
    }
}
