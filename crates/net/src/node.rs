//! A participating node: generic compute server (§4.1) and/or deploying
//! client. One [`Node`] owns one [`Acceptor`] (data + control), a
//! [`ProcessRegistry`], a task registry, and the networks it has been
//! asked to run.
//!
//! "The entire implementation can be contained in a single jar file that
//! is less than 8K bytes" — our equivalent is [`Node::serve`], a few lines
//! that bind a port and answer control requests; see the `kpn-server`
//! example binary.

use crate::acceptor::fresh_token;
use crate::acceptor::Acceptor;
use crate::control::ServerHandle;
use crate::control::{recv_msg, send_msg, ControlRequest, ControlResponse};
use crate::registry::ProcessRegistry;
use crate::remote::{
    monitored_reader, monitored_writer, remote_reader, remote_reader_interruptible, remote_writer,
    remote_writer_interruptible,
};
use crate::spec::{ChannelSpec, GraphSpec, InputSpec, OutputSpec};
use kpn_core::{ChannelReader, ChannelWriter, Error, Network, NetworkConfig, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// Builds a task result from encoded parameters (the `Task.run()` of
/// §5.1, exposed over RMI-style control calls).
pub type TaskFactory = Box<dyn Fn(&[u8]) -> Result<Vec<u8>> + Send + Sync>;

/// Registry of named tasks for [`ControlRequest::RunTask`].
#[derive(Default)]
pub struct TaskRegistry {
    tasks: HashMap<String, TaskFactory>,
}

impl TaskRegistry {
    /// An empty task registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a typed task function.
    pub fn register<P, R, F>(&mut self, name: impl Into<String>, f: F)
    where
        P: serde::de::DeserializeOwned,
        R: serde::Serialize,
        F: Fn(P) -> Result<R> + Send + Sync + 'static,
    {
        self.tasks.insert(
            name.into(),
            Box::new(move |params| {
                let p: P = kpn_codec::from_bytes(params).map_err(Error::from)?;
                let r = f(p)?;
                kpn_codec::to_bytes(&r).map_err(Error::from)
            }),
        );
    }

    fn run(&self, name: &str, params: &[u8]) -> Result<Vec<u8>> {
        let f = self
            .tasks
            .get(name)
            .ok_or_else(|| Error::Graph(format!("unknown task type {name:?}")))?;
        f(params)
    }
}

/// One process-network node (client, server, or both).
pub struct Node {
    acceptor: Arc<Acceptor>,
    registry: Arc<ProcessRegistry>,
    tasks: Arc<TaskRegistry>,
    networks: Mutex<Vec<Network>>,
}

impl Node {
    /// Starts a node with the default registry, bound to `addr`
    /// (`"127.0.0.1:0"` picks an ephemeral port).
    pub fn serve(addr: &str) -> Result<Arc<Self>> {
        Self::serve_with(addr, ProcessRegistry::with_defaults(), TaskRegistry::new())
    }

    /// Starts a node with the default registries and an explicit
    /// [`NetProfile`](crate::transport::NetProfile): accepted data
    /// connections are wrapped by the profile's transport factory and
    /// hosted read endpoints inherit its reconnect policy. This is how
    /// chaos tests inject seeded faults on the accept side.
    pub fn serve_with_profile(
        addr: &str,
        profile: crate::transport::NetProfile,
    ) -> Result<Arc<Self>> {
        Self::serve_full(
            addr,
            ProcessRegistry::with_defaults(),
            TaskRegistry::new(),
            profile,
        )
    }

    /// Starts a node with custom registries.
    pub fn serve_with(
        addr: &str,
        registry: ProcessRegistry,
        tasks: TaskRegistry,
    ) -> Result<Arc<Self>> {
        Self::serve_full(addr, registry, tasks, crate::transport::NetProfile::default())
    }

    /// Starts a node with custom registries and transport profile.
    pub fn serve_full(
        addr: &str,
        registry: ProcessRegistry,
        tasks: TaskRegistry,
        profile: crate::transport::NetProfile,
    ) -> Result<Arc<Self>> {
        let acceptor = Acceptor::bind_with(addr, profile)?;
        let node = Arc::new(Node {
            acceptor: acceptor.clone(),
            registry: Arc::new(registry),
            tasks: Arc::new(tasks),
            networks: Mutex::new(Vec::new()),
        });
        let weak = Arc::downgrade(&node);
        acceptor.set_control_handler(Arc::new(move |stream| {
            if let Some(node) = weak.upgrade() {
                node.handle_control(stream);
            }
        }));
        Ok(node)
    }

    /// The node's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.acceptor.local_addr()
    }

    /// The node's acceptor (for registering ad-hoc endpoints).
    pub fn acceptor(&self) -> &Arc<Acceptor> {
        &self.acceptor
    }

    /// The node's process registry.
    pub fn registry(&self) -> &Arc<ProcessRegistry> {
        &self.registry
    }

    /// Creates a read endpoint listening for `token` on this node.
    pub fn remote_reader(&self, token: u64) -> ChannelReader {
        remote_reader(&self.acceptor, token)
    }

    /// Creates a write endpoint connected to `addr` presenting `token`.
    pub fn remote_writer(&self, addr: &str, token: u64) -> Result<ChannelWriter> {
        remote_writer(addr, token)
    }

    /// Instantiates a partition locally and starts it. Returns the running
    /// [`Network`] (also tracked for [`Node::join_all`]).
    pub fn instantiate(&self, spec: GraphSpec) -> Result<Network> {
        let net = Network::with_config(NetworkConfig::default());
        // Remote endpoints register interruptors so a network abort can
        // wake threads blocked inside TCP reads/writes (which the local
        // deadlock monitor cannot poison).
        let mut interruptors: Vec<std::sync::Arc<crate::remote::Interruptor>> = Vec::new();
        // Build the partition-local channels; each endpoint is consumable
        // exactly once (channels are single-producer / single-consumer).
        let mut writers: Vec<Option<ChannelWriter>> = Vec::new();
        let mut readers: Vec<Option<ChannelReader>> = Vec::new();
        for (ci, ch) in spec.channels.iter().enumerate() {
            let (w, r) = net.try_channel_with_capacity(ch.capacity).map_err(|_| {
                Error::Graph(format!(
                    "spec channel {ci} has zero capacity: a zero-capacity channel \
                     can never transfer data"
                ))
            })?;
            writers.push(Some(w));
            readers.push(Some(r));
        }
        for (pi, p) in spec.processes.iter().enumerate() {
            let mut ins = Vec::with_capacity(p.inputs.len());
            for input in &p.inputs {
                ins.push(match input {
                    InputSpec::Local(i) => {
                        readers.get_mut(*i).and_then(Option::take).ok_or_else(|| {
                            Error::Graph(format!(
                                "process {pi}: channel {i} reader missing or already taken"
                            ))
                        })?
                    }
                    InputSpec::Remote { token } => {
                        let (reader, interruptor) =
                            remote_reader_interruptible(&self.acceptor, *token);
                        interruptors.push(interruptor);
                        monitored_reader(reader, net.monitor().clone())
                    }
                });
            }
            let mut outs = Vec::with_capacity(p.outputs.len());
            for output in &p.outputs {
                outs.push(match output {
                    OutputSpec::Local(i) => {
                        writers.get_mut(*i).and_then(Option::take).ok_or_else(|| {
                            Error::Graph(format!(
                                "process {pi}: channel {i} writer missing or already taken"
                            ))
                        })?
                    }
                    OutputSpec::Remote { addr, token } => {
                        let (writer, interruptor) = remote_writer_interruptible(addr, *token)?;
                        interruptors.push(interruptor);
                        monitored_writer(writer, net.monitor().clone())
                    }
                });
            }
            let process = self.registry.build(&p.type_name, &p.params, ins, outs)?;
            net.add_process(process);
        }
        if !interruptors.is_empty() {
            net.monitor().on_abort(Box::new(move || {
                for i in &interruptors {
                    i.interrupt();
                }
            }));
        }
        net.start();
        self.networks.lock().push(net.clone());
        Ok(net)
    }

    /// §4's decompose-and-redistribute: takes a whole graph partition and
    /// re-partitions it across this node and the given helper servers
    /// (round-robin by process). Channels that end up spanning hosts are
    /// cut with fresh endpoint tokens; endpoints that were already remote
    /// in the incoming spec keep their absolute addresses, so existing
    /// connections (e.g. back to the original client) are unaffected.
    pub fn redistribute(&self, spec: GraphSpec, helpers: &[ServerHandle]) -> Result<()> {
        if helpers.is_empty() {
            self.instantiate(spec)?;
            return Ok(());
        }
        let hosts = helpers.len() + 1; // self is host 0
        let host_of_process = |pi: usize| pi % hosts;
        let addr_of_host = |h: usize| -> String {
            if h == 0 {
                self.addr().to_string()
            } else {
                helpers[h - 1].addr().to_string()
            }
        };
        // Who produces / consumes each local channel?
        let nch = spec.channels.len();
        let mut producer_host: Vec<Option<usize>> = vec![None; nch];
        let mut consumer_host: Vec<Option<usize>> = vec![None; nch];
        for (pi, p) in spec.processes.iter().enumerate() {
            for input in &p.inputs {
                if let InputSpec::Local(c) = input {
                    consumer_host[*c] = Some(host_of_process(pi));
                }
            }
            for output in &p.outputs {
                if let OutputSpec::Local(c) = output {
                    producer_host[*c] = Some(host_of_process(pi));
                }
            }
        }
        // Placement per channel: kept-local index on its host, or a cut.
        enum Place {
            Unused,
            Local { host: usize, index: usize },
            Cut { reader_host: usize, token: u64 },
        }
        let mut local_counts = vec![0usize; hosts];
        let mut places = Vec::with_capacity(nch);
        for c in 0..nch {
            if producer_host[c].is_none() && consumer_host[c].is_none() {
                // Unused channel (e.g. an endpoint replaced by a remote
                // descriptor upstream): nothing to place.
                places.push(Place::Unused);
                continue;
            }
            let (Some(ph), Some(ch)) = (producer_host[c], consumer_host[c]) else {
                return Err(Error::Graph(format!(
                    "channel {c} not fully connected in redistributed spec"
                )));
            };
            if ph == ch {
                places.push(Place::Local {
                    host: ph,
                    index: local_counts[ph],
                });
                local_counts[ph] += 1;
            } else {
                places.push(Place::Cut {
                    reader_host: ch,
                    token: fresh_token(),
                });
            }
        }
        // Assemble one sub-spec per host.
        let mut subs: Vec<GraphSpec> = (0..hosts).map(|_| GraphSpec::default()).collect();
        for (c, place) in places.iter().enumerate() {
            if let Place::Local { host, .. } = place {
                subs[*host].channels.push(ChannelSpec {
                    capacity: spec.channels[c].capacity,
                });
            }
        }
        for (pi, p) in spec.processes.iter().enumerate() {
            let host = host_of_process(pi);
            let inputs = p
                .inputs
                .iter()
                .map(|i| match i {
                    InputSpec::Local(c) => match &places[*c] {
                        Place::Local { index, .. } => InputSpec::Local(*index),
                        Place::Cut { token, .. } => InputSpec::Remote { token: *token },
                        Place::Unused => unreachable!("referenced channel placed"),
                    },
                    remote => remote.clone(),
                })
                .collect();
            let outputs = p
                .outputs
                .iter()
                .map(|o| match o {
                    OutputSpec::Local(c) => match &places[*c] {
                        Place::Local { index, .. } => OutputSpec::Local(*index),
                        Place::Cut { reader_host, token } => OutputSpec::Remote {
                            addr: addr_of_host(*reader_host),
                            token: *token,
                        },
                        Place::Unused => unreachable!("referenced channel placed"),
                    },
                    remote => remote.clone(),
                })
                .collect();
            subs[host].processes.push(crate::spec::ProcessSpec {
                type_name: p.type_name.clone(),
                params: p.params.clone(),
                inputs,
                outputs,
            });
        }
        // Ship the helpers' shares, then run our own.
        for (h, handle) in helpers.iter().enumerate() {
            let sub = std::mem::take(&mut subs[h + 1]);
            if !sub.is_empty() {
                handle.run_graph(sub)?;
            }
        }
        let own = std::mem::take(&mut subs[0]);
        if !own.is_empty() {
            self.instantiate(own)?;
        }
        Ok(())
    }

    /// Waits for every network shipped to this node to terminate.
    /// Networks stay registered afterwards so monitor-status requests can
    /// still inspect them.
    pub fn join_all(&self) -> Result<()> {
        let mut joined = 0;
        loop {
            // New networks may arrive while joining; re-check the list.
            let next = {
                let nets = self.networks.lock();
                nets.get(joined).cloned()
            };
            let Some(net) = next else {
                return Ok(());
            };
            net.join()?;
            joined += 1;
        }
    }

    /// Stops accepting connections.
    pub fn shutdown(&self) {
        self.acceptor.close();
    }

    /// True once a shutdown was requested (locally or via the control
    /// protocol).
    pub fn is_shut_down(&self) -> bool {
        self.acceptor.is_closed()
    }

    fn handle_control(&self, mut stream: TcpStream) {
        loop {
            let request: ControlRequest = match recv_msg(&mut stream) {
                Ok(r) => r,
                Err(_) => return, // client hung up
            };
            let response = match request {
                ControlRequest::Ping => ControlResponse::Pong,
                ControlRequest::RunGraph(spec) => match self.instantiate(spec) {
                    Ok(_) => ControlResponse::Ok,
                    Err(e) => ControlResponse::Err(e.to_string()),
                },
                ControlRequest::RunGraphRedistributed { spec, helpers } => {
                    let handles: Vec<ServerHandle> =
                        helpers.into_iter().map(ServerHandle::new).collect();
                    match self.redistribute(spec, &handles) {
                        Ok(()) => ControlResponse::Ok,
                        Err(e) => ControlResponse::Err(e.to_string()),
                    }
                }
                ControlRequest::RunTask { type_name, params } => {
                    match self.tasks.run(&type_name, &params) {
                        Ok(bytes) => ControlResponse::TaskResult(bytes),
                        Err(e) => ControlResponse::Err(e.to_string()),
                    }
                }
                ControlRequest::WaitIdle => match self.join_all() {
                    Ok(()) => ControlResponse::Ok,
                    Err(e) => ControlResponse::Err(e.to_string()),
                },
                ControlRequest::MonitorStatus => {
                    let statuses = self
                        .networks
                        .lock()
                        .iter()
                        .map(|net| {
                            crate::probe::NetworkStatus::from_snapshot(&net.monitor().snapshot())
                        })
                        .collect();
                    ControlResponse::MonitorStatus(statuses)
                }
                ControlRequest::AbortNetworks => {
                    for net in self.networks.lock().iter() {
                        net.abort();
                    }
                    ControlResponse::Ok
                }
                ControlRequest::Shutdown => {
                    let _ = send_msg(&mut stream, &ControlResponse::Ok);
                    self.shutdown();
                    return;
                }
            };
            if send_msg(&mut stream, &response).is_err() {
                return;
            }
        }
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("addr", &self.addr())
            .field("networks", &self.networks.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::ServerHandle;
    use crate::spec::{ChannelSpec, ProcessSpec};

    fn params<T: serde::Serialize>(v: &T) -> Vec<u8> {
        kpn_codec::to_bytes(v).unwrap()
    }

    #[test]
    fn ping_pong() {
        let node = Node::serve("127.0.0.1:0").unwrap();
        let handle = ServerHandle::new(node.addr().to_string());
        handle.ping().unwrap();
    }

    #[test]
    fn run_task_roundtrip() {
        let mut tasks = TaskRegistry::new();
        tasks.register("square", |x: i64| Ok(x * x));
        let node =
            Node::serve_with("127.0.0.1:0", ProcessRegistry::with_defaults(), tasks).unwrap();
        let handle = ServerHandle::new(node.addr().to_string());
        let r: i64 = handle.run_task("square", &12i64).unwrap();
        assert_eq!(r, 144);
        let err = handle.run_task::<_, i64>("nope", &1i64).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn local_graph_spec_runs() {
        // Sequence -> Scale -> (result back to the "client" via a remote
        // endpoint on the same node, exercising the full loop).
        let node = Node::serve("127.0.0.1:0").unwrap();
        let token = 424242u64;
        let mut result = kpn_core::DataReader::new(node.remote_reader(token));
        let spec = GraphSpec {
            channels: vec![ChannelSpec { capacity: 1024 }],
            processes: vec![
                ProcessSpec {
                    type_name: "Sequence".into(),
                    params: params(&(1i64, Some(5u64))),
                    inputs: vec![],
                    outputs: vec![OutputSpec::Local(0)],
                },
                ProcessSpec {
                    type_name: "Scale".into(),
                    params: params(&10i64),
                    inputs: vec![InputSpec::Local(0)],
                    outputs: vec![OutputSpec::Remote {
                        addr: node.addr().to_string(),
                        token,
                    }],
                },
            ],
        };
        let handle = ServerHandle::new(node.addr().to_string());
        handle.run_graph(spec).unwrap();
        for expect in [10, 20, 30, 40, 50] {
            assert_eq!(result.read_i64().unwrap(), expect);
        }
        assert!(result.read_i64().is_err());
        handle.wait_idle().unwrap();
    }

    #[test]
    fn bad_spec_is_rejected() {
        let node = Node::serve("127.0.0.1:0").unwrap();
        let handle = ServerHandle::new(node.addr().to_string());
        let spec = GraphSpec {
            channels: vec![],
            processes: vec![ProcessSpec {
                type_name: "DoesNotExist".into(),
                params: vec![],
                inputs: vec![],
                outputs: vec![],
            }],
        };
        let err = handle.run_graph(spec).unwrap_err();
        assert!(err.to_string().contains("DoesNotExist"));
    }

    #[test]
    fn double_claim_of_channel_endpoint_is_rejected() {
        let node = Node::serve("127.0.0.1:0").unwrap();
        let spec = GraphSpec {
            channels: vec![ChannelSpec { capacity: 64 }],
            processes: vec![
                ProcessSpec {
                    type_name: "Sequence".into(),
                    params: params(&(0i64, Some(1u64))),
                    inputs: vec![],
                    outputs: vec![OutputSpec::Local(0)],
                },
                ProcessSpec {
                    type_name: "Sequence".into(),
                    params: params(&(0i64, Some(1u64))),
                    inputs: vec![],
                    outputs: vec![OutputSpec::Local(0)], // second producer!
                },
            ],
        };
        let err = match node.instantiate(spec) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected error"),
        };
        assert!(err.contains("already taken"));
    }
}
