//! Remote channel endpoints over TCP — the `RemoteOutputStream` /
//! `RemoteInputStream` / `RedirectedInputStream` of §4.2–4.3.
//!
//! A [`RemoteSink`] plugs into a [`kpn_core::ChannelWriter`]; a
//! [`RemoteSource`] (or, before its connection arrives, a
//! [`PendingSource`]) plugs into a [`kpn_core::ChannelReader`]. Both sides
//! preserve the full channel semantics across the network:
//!
//! * graceful writer close → `Close` frame → reader drains, then EOF;
//! * reader close → socket shutdown → writer's next write fails with
//!   [`Error::WriteClosed`] ("these exceptions even propagate across
//!   network connections", §3.4);
//! * TCP flow control supplies the bounded-buffer backpressure that local
//!   channels get from their ring buffer (§3.5);
//! * a migrating writer sends `Redirect{token}`; the reader registers the
//!   token with its own acceptor and splices in the replacement
//!   connection, after which traffic flows directly between the new homes
//!   (Figure 15 — no bytes transit the original server).

use crate::acceptor::{connect_data, fresh_token, Acceptor, PendingConn};
use crate::frame::{read_frame_header, write_data_frame, write_frame, Frame, FrameHeader};
use kpn_core::{
    BlockKind, ChannelReader, ChannelWriter, Error, Monitor, Result, Sink, Source, SourceRead,
};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;

/// Maximum payload of one `Data` frame.
const MAX_FRAME: usize = 64 * 1024;

/// Size of the socket-side write coalescing buffer: big enough to merge a
/// frame header with a typical stream-buffer-sized payload into one
/// syscall, small enough per connection to stay cheap.
const SINK_BUFFER: usize = 16 * 1024;

fn map_write_err(e: std::io::Error) -> Error {
    use std::io::ErrorKind::*;
    match e.kind() {
        BrokenPipe | ConnectionReset | ConnectionAborted | NotConnected => Error::WriteClosed,
        _ => Error::Io(e),
    }
}

/// Out-of-band interruption for a remote endpoint: lets a network abort
/// wake threads blocked inside transports the deadlock monitor cannot
/// poison (a TCP read, or the wait for a pending connection). Shared
/// between the endpoint (which keeps it pointed at its current transport,
/// across redirects) and the abort hook that fires it.
pub struct Interruptor {
    state: parking_lot::Mutex<InterruptState>,
}

#[derive(Default)]
struct InterruptState {
    interrupted: bool,
    /// A second handle to the endpoint's current socket.
    socket: Option<TcpStream>,
    /// A registration waiting at an acceptor (pending connection).
    pending: Option<(std::sync::Weak<Acceptor>, u64)>,
}

impl Interruptor {
    /// A fresh, un-fired interruptor.
    pub fn new() -> Arc<Self> {
        Arc::new(Interruptor {
            state: parking_lot::Mutex::new(InterruptState::default()),
        })
    }

    /// Fires the interrupt: shuts the current socket (if any) and cancels
    /// any pending registration. Threads blocked in the transport observe
    /// a disconnect and unwind. Idempotent; also affects transports
    /// attached later.
    pub fn interrupt(&self) {
        let (socket, pending) = {
            let mut st = self.state.lock();
            st.interrupted = true;
            (st.socket.take(), st.pending.take())
        };
        if let Some(s) = socket {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some((acc, token)) = pending {
            if let Some(acc) = acc.upgrade() {
                // Dropping the waiting sender makes the blocked recv fail.
                acc.unregister(token);
            }
        }
    }

    /// True once fired.
    pub fn is_interrupted(&self) -> bool {
        self.state.lock().interrupted
    }

    fn attach_socket(&self, stream: &TcpStream) {
        let mut st = self.state.lock();
        if st.interrupted {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        st.socket = stream.try_clone().ok();
        st.pending = None;
    }

    fn attach_pending(&self, acceptor: &Arc<Acceptor>, token: u64) {
        let mut st = self.state.lock();
        if st.interrupted {
            acceptor.unregister(token);
            return;
        }
        st.socket = None;
        st.pending = Some((Arc::downgrade(acceptor), token));
    }
}

impl std::fmt::Debug for Interruptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Interruptor(fired: {})", self.is_interrupted())
    }
}

/// The write end of a channel whose reader lives on another server.
///
/// Frames are staged behind a [`BufWriter`] so a header and its payload
/// (and any adjacent small frames) coalesce into one syscall, and the
/// socket runs with `TCP_NODELAY`: batching is decided by our explicit
/// flush-on-frame-boundary, not by Nagle's timer. Payload bytes are
/// framed in place — no per-frame allocation.
pub struct RemoteSink {
    stream: BufWriter<TcpStream>,
    closed: bool,
}

impl RemoteSink {
    /// Connects to the reader's acceptor and presents `token`.
    pub fn connect(addr: &str, token: u64) -> Result<Self> {
        let stream = connect_data(addr, token)?;
        let _ = stream.set_nodelay(true);
        Ok(RemoteSink {
            stream: BufWriter::with_capacity(SINK_BUFFER, stream),
            closed: false,
        })
    }

    fn socket(&self) -> &TcpStream {
        self.stream.get_ref()
    }

    /// The peer (reader-side) address — the acceptor this sink connected
    /// to, used when shipping the writer endpoint onward.
    pub fn peer_addr(&self) -> Result<SocketAddr> {
        Ok(self.socket().peer_addr()?)
    }

    /// Begins migrating this writer endpoint to another server (§4.3):
    /// sends `Redirect{token}` so the reader splices in a connection that
    /// the endpoint's new home will open directly, then retires this
    /// connection. Returns `(reader_addr, token)` for the new home's
    /// `RemoteSink::connect`.
    pub fn begin_redirect(mut self) -> Result<(SocketAddr, u64)> {
        let token = fresh_token();
        let peer = self.peer_addr()?;
        write_frame(&mut self.stream, &Frame::Redirect { token })
            .map_err(|e| Error::Disconnected(format!("redirect failed: {e}")))?;
        self.stream.flush().map_err(map_write_err)?;
        self.closed = true; // redirect supersedes Close
        let _ = self.socket().shutdown(Shutdown::Both);
        Ok((peer, token))
    }
}

impl Sink for RemoteSink {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        if self.closed {
            return Err(Error::WriteClosed);
        }
        for chunk in buf.chunks(MAX_FRAME) {
            write_data_frame(&mut self.stream, chunk).map_err(|e| match e {
                Error::Io(io) => map_write_err(io),
                other => other,
            })?;
        }
        // Flush on the frame boundary: every `write_all` a raw (unwrapped)
        // writer performs is immediately visible to the remote reader, so
        // deadlock safety never depends on socket-side buffering. Batched
        // callers sit behind a stream-layer buffer that already delivers
        // chunk-sized `write_all`s here.
        self.stream.flush().map_err(map_write_err)?;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.stream.flush().map_err(map_write_err)
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let _ = write_frame(&mut self.stream, &Frame::Close);
        let _ = self.stream.flush();
        let _ = self.socket().shutdown(Shutdown::Write);
    }
}

impl Drop for RemoteSink {
    fn drop(&mut self) {
        self.close();
    }
}

/// The read end of a channel whose writer lives on another server.
pub struct RemoteSource {
    stream: BufReader<TcpStream>,
    /// The local acceptor, needed to honour `Redirect` frames.
    acceptor: Option<Arc<Acceptor>>,
    /// Abort-interruption handle, kept pointing at the live transport.
    interruptor: Option<Arc<Interruptor>>,
    /// Bytes left to stream from the current `Data` frame.
    remaining: usize,
}

impl RemoteSource {
    pub(crate) fn with_interruptor(
        stream: TcpStream,
        acceptor: Option<Arc<Acceptor>>,
        interruptor: Option<Arc<Interruptor>>,
    ) -> Self {
        if let Some(i) = &interruptor {
            i.attach_socket(&stream);
        }
        RemoteSource {
            stream: BufReader::new(stream),
            acceptor,
            interruptor,
            remaining: 0,
        }
    }
}

impl Source for RemoteSource {
    fn read(&mut self, buf: &mut [u8]) -> Result<SourceRead> {
        // A socket read can block indefinitely: publish this thread's
        // buffered output first (same deadlock-safety rule as local
        // channels — see `kpn_core::flush`).
        kpn_core::flush::flush_before_block();
        loop {
            if self.remaining > 0 {
                let n = buf.len().min(self.remaining);
                let got = self.stream.read(&mut buf[..n])?;
                if got == 0 {
                    return Err(Error::Disconnected("peer vanished mid-frame".into()));
                }
                self.remaining -= got;
                return Ok(SourceRead::Data(got));
            }
            match read_frame_header(&mut self.stream)? {
                FrameHeader::Data(0) => continue,
                FrameHeader::Data(len) => self.remaining = len,
                FrameHeader::Close => return Ok(SourceRead::End),
                FrameHeader::Redirect(token) => {
                    let acceptor = self.acceptor.clone().ok_or_else(|| {
                        Error::Graph("redirect received but node has no acceptor".into())
                    })?;
                    let pending = acceptor.register(token);
                    if let Some(i) = &self.interruptor {
                        i.attach_pending(&acceptor, token);
                    }
                    let source = PendingSource {
                        pending,
                        token,
                        acceptor: acceptor.clone(),
                        interruptor: self.interruptor.clone(),
                    };
                    return Ok(SourceRead::Splice(ChannelReader::from_source(Box::new(
                        source,
                    ))));
                }
            }
        }
    }

    fn close(&mut self) {
        let _ = self.stream.get_ref().shutdown(Shutdown::Both);
    }
}

/// A read endpoint whose data connection has not arrived yet — the
/// listening state of the automatic connection establishment (§4.2) and of
/// the `RedirectedInputStream` (§4.3). The first read blocks until the
/// connection shows up, then splices in a [`RemoteSource`].
pub struct PendingSource {
    pending: PendingConn,
    token: u64,
    acceptor: Arc<Acceptor>,
    interruptor: Option<Arc<Interruptor>>,
}

impl PendingSource {
    /// Registers `token` at the node's acceptor and returns the endpoint.
    pub fn listen(acceptor: &Arc<Acceptor>, token: u64) -> Self {
        Self::listen_with(acceptor, token, None)
    }

    /// Like [`PendingSource::listen`], with an abort-interruption handle
    /// that stays attached through connection arrival and redirects.
    pub fn listen_with(
        acceptor: &Arc<Acceptor>,
        token: u64,
        interruptor: Option<Arc<Interruptor>>,
    ) -> Self {
        if let Some(i) = &interruptor {
            i.attach_pending(acceptor, token);
        }
        PendingSource {
            pending: acceptor.register(token),
            token,
            acceptor: acceptor.clone(),
            interruptor,
        }
    }
}

impl Source for PendingSource {
    fn read(&mut self, _buf: &mut [u8]) -> Result<SourceRead> {
        // Waiting for a connection is a blocking read: flush first so the
        // peer (who may need our buffered output to make progress before
        // connecting back) can proceed.
        kpn_core::flush::flush_before_block();
        match self.pending.rx.recv() {
            Ok(stream) => {
                let source = RemoteSource::with_interruptor(
                    stream,
                    Some(self.acceptor.clone()),
                    self.interruptor.clone(),
                );
                Ok(SourceRead::Splice(ChannelReader::from_source(Box::new(
                    source,
                ))))
            }
            Err(_) => Err(Error::Disconnected(
                "acceptor closed before connection arrived".into(),
            )),
        }
    }

    fn close(&mut self) {
        self.acceptor.unregister(self.token);
    }
}

/// Wraps a remote read endpoint so blocking reads register with the
/// network's deadlock monitor as *external* blocks (§6.2): they count
/// toward all-blocked detection and cluster snapshots, but can never cause
/// a local true-deadlock abort, because the monitor cannot see whether
/// data is in flight on the wire.
pub fn monitored_reader(inner: ChannelReader, monitor: Arc<Monitor>) -> ChannelReader {
    ChannelReader::from_source(Box::new(MonitoredSource { inner, monitor }))
}

struct MonitoredSource {
    inner: ChannelReader,
    monitor: Arc<Monitor>,
}

impl Source for MonitoredSource {
    fn read(&mut self, buf: &mut [u8]) -> Result<SourceRead> {
        let _guard = self.monitor.external_block(BlockKind::Read)?;
        match self.inner.read(buf)? {
            0 => Ok(SourceRead::End),
            n => Ok(SourceRead::Data(n)),
        }
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

/// Wraps a remote write endpoint so blocking writes (TCP backpressure)
/// register with the deadlock monitor as external blocks; see
/// [`monitored_reader`].
pub fn monitored_writer(inner: ChannelWriter, monitor: Arc<Monitor>) -> ChannelWriter {
    ChannelWriter::from_sink(Box::new(MonitoredSink { inner, monitor }))
}

struct MonitoredSink {
    inner: ChannelWriter,
    monitor: Arc<Monitor>,
}

impl Sink for MonitoredSink {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        let _guard = self.monitor.external_block(BlockKind::Write)?;
        self.inner.write_all(buf)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

/// Creates the write end of a cross-server channel: connects to the
/// reader's node and presents the endpoint token.
pub fn remote_writer(addr: &str, token: u64) -> Result<ChannelWriter> {
    Ok(ChannelWriter::from_sink(Box::new(RemoteSink::connect(
        addr, token,
    )?)))
}

/// Creates the read end of a cross-server channel: listens (via the node's
/// acceptor) for the connection presenting `token`.
pub fn remote_reader(acceptor: &Arc<Acceptor>, token: u64) -> ChannelReader {
    ChannelReader::from_source(Box::new(PendingSource::listen(acceptor, token)))
}

/// Like [`remote_reader`], returning the [`Interruptor`] that can wake a
/// blocked read from outside (used by network abort hooks).
pub fn remote_reader_interruptible(
    acceptor: &Arc<Acceptor>,
    token: u64,
) -> (ChannelReader, Arc<Interruptor>) {
    let interruptor = Interruptor::new();
    let source = PendingSource::listen_with(acceptor, token, Some(interruptor.clone()));
    (ChannelReader::from_source(Box::new(source)), interruptor)
}

/// Like [`remote_writer`], returning the [`Interruptor`] that can wake a
/// blocked write from outside.
pub fn remote_writer_interruptible(
    addr: &str,
    token: u64,
) -> Result<(ChannelWriter, Arc<Interruptor>)> {
    let sink = RemoteSink::connect(addr, token)?;
    let interruptor = Interruptor::new();
    interruptor.attach_socket(sink.socket());
    Ok((ChannelWriter::from_sink(Box::new(sink)), interruptor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpn_core::{DataReader, DataWriter};
    use std::time::Duration;

    fn node() -> Arc<Acceptor> {
        Acceptor::bind("127.0.0.1:0").unwrap()
    }

    #[test]
    fn bytes_flow_across_tcp() {
        let b = node();
        let token = fresh_token();
        let mut reader = remote_reader(&b, token);
        let mut writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        writer.write_all(b"over the wire").unwrap();
        let mut buf = [0u8; 13];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"over the wire");
    }

    #[test]
    fn connect_before_register_is_parked() {
        let b = node();
        let token = fresh_token();
        // Writer connects first; the reader registers afterwards.
        let mut writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        writer.write_all(b"early").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let mut reader = remote_reader(&b, token);
        let mut buf = [0u8; 5];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"early");
    }

    #[test]
    fn writer_close_gives_reader_eof_after_drain() {
        let b = node();
        let token = fresh_token();
        let mut reader = remote_reader(&b, token);
        let mut writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        writer.write_all(b"tail").unwrap();
        drop(writer);
        let mut buf = [0u8; 4];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"tail");
        assert_eq!(reader.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn reader_close_fails_writer_across_network() {
        let b = node();
        let token = fresh_token();
        let reader = remote_reader(&b, token);
        let mut writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        writer.write_all(b"x").unwrap();
        drop(reader);
        // The shutdown needs a moment to reach the writer's kernel.
        std::thread::sleep(Duration::from_millis(50));
        let mut failed = false;
        for _ in 0..100 {
            if writer.write_all(b"yyyyyyyy").is_err() {
                failed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(failed, "writer never observed the closed reader");
    }

    #[test]
    fn typed_streams_work_over_tcp() {
        let b = node();
        let token = fresh_token();
        let reader = remote_reader(&b, token);
        let writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        let mut dw = DataWriter::new(writer);
        let mut dr = DataReader::new(reader);
        for i in 0..1000i64 {
            dw.write_i64(i * 3).unwrap();
        }
        drop(dw);
        for i in 0..1000i64 {
            assert_eq!(dr.read_i64().unwrap(), i * 3);
        }
        assert!(dr.read_i64().is_err());
    }

    #[test]
    fn large_transfer_chunks_into_frames() {
        let b = node();
        let token = fresh_token();
        let mut reader = remote_reader(&b, token);
        let mut writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        let data: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        let expect = data.clone();
        let h = std::thread::spawn(move || writer.write_all(&data));
        let mut got = vec![0u8; expect.len()];
        reader.read_exact(&mut got).unwrap();
        h.join().unwrap().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn redirect_moves_traffic_to_new_writer() {
        // Figure 15: A→B traffic redirected so C→B talks directly.
        let b = node();
        let token = fresh_token();
        let mut reader = remote_reader(&b, token); // "Print" on B
        let mut sink_a = RemoteSink::connect(&b.local_addr().to_string(), token).unwrap();
        sink_a.write_all(b"from A;").unwrap();
        // A migrates the writer endpoint: redirect, then "ship" to C.
        let (reader_addr, new_token) = sink_a.begin_redirect().unwrap();
        // C connects directly to B; A is out of the path from here on.
        let mut writer_c = remote_writer(&reader_addr.to_string(), new_token).unwrap();
        writer_c.write_all(b"from C").unwrap();
        drop(writer_c);
        let mut buf = [0u8; 13];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"from A;from C");
        assert_eq!(reader.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn chained_redirects() {
        // An endpoint migrated twice (A→C→D) still delivers in order.
        let b = node();
        let token = fresh_token();
        let mut reader = remote_reader(&b, token);
        let mut sink_a = RemoteSink::connect(&b.local_addr().to_string(), token).unwrap();
        sink_a.write_all(b"1").unwrap();
        let (addr1, tok1) = sink_a.begin_redirect().unwrap();
        let mut sink_c = RemoteSink::connect(&addr1.to_string(), tok1).unwrap();
        sink_c.write_all(b"2").unwrap();
        let (addr2, tok2) = sink_c.begin_redirect().unwrap();
        let mut sink_d = RemoteSink::connect(&addr2.to_string(), tok2).unwrap();
        sink_d.write_all(b"3").unwrap();
        sink_d.close();
        let mut buf = [0u8; 3];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"123");
        assert_eq!(reader.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn pending_source_close_unregisters() {
        let b = node();
        let token = fresh_token();
        let reader = remote_reader(&b, token);
        drop(reader);
        // A late connection for the abandoned endpoint is simply dropped;
        // the connector then observes a closed socket on write.
        let mut writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let mut failed = false;
        for _ in 0..100 {
            if writer.write_all(b"zzzzzzzz").is_err() {
                failed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(failed, "writer to abandoned endpoint never failed");
    }
}
