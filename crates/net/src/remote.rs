//! Remote channel endpoints over TCP — the `RemoteOutputStream` /
//! `RemoteInputStream` / `RedirectedInputStream` of §4.2–4.3.
//!
//! A [`RemoteSink`] plugs into a [`kpn_core::ChannelWriter`]; a
//! [`RemoteSource`] (or, before its connection arrives, a
//! [`PendingSource`]) plugs into a [`kpn_core::ChannelReader`]. Both sides
//! preserve the full channel semantics across the network:
//!
//! * graceful writer close → `Close` frame → reader drains, then EOF;
//! * reader close → socket shutdown → writer's next write fails with
//!   [`Error::WriteClosed`] ("these exceptions even propagate across
//!   network connections", §3.4);
//! * TCP flow control supplies the bounded-buffer backpressure that local
//!   channels get from their ring buffer (§3.5);
//! * a migrating writer sends `Redirect{token}`; the reader registers the
//!   token with its own acceptor and splices in the replacement
//!   connection, after which traffic flows directly between the new homes
//!   (Figure 15 — no bytes transit the original server).
//!
//! ## Fault tolerance (sequence-numbered reconnection)
//!
//! With a [`ReconnectPolicy`] enabled, endpoints survive transient link
//! failure without perturbing the Kahn semantics. Every frame carries the
//! writer's byte offset into the logical stream; the writer retains a
//! bounded buffer of unacknowledged frames, and the reader tracks the
//! next offset it will deliver, acknowledging cumulatively. When a
//! transport operation fails with a *transient* error (reset, timeout,
//! refused connect, EOF mid-stream):
//!
//! * the **writer** reconnects under exponential backoff + jitter + an
//!   overall budget, waits for the reader's resume acknowledgement, trims
//!   its replay buffer to the acknowledged offset, and retransmits the
//!   rest — the reader discards any duplicate prefix, so every stream
//!   byte is delivered exactly once;
//! * the **reader** shuts the broken transport (so a writer whose half
//!   was still healthy fails fast and recovers too), re-registers its
//!   token at the local acceptor, and acknowledges its resume offset on
//!   the replacement connection.
//!
//! One hazard needs an active component: reconnection is writer-driven
//! (only the writer holds the reader's address), but a writer only
//! *discovers* a dead link when it next touches the socket. A process
//! parked reading some other channel may not write for an arbitrarily
//! long time — and if the lost connection swallowed an in-flight frame,
//! the whole network can stall waiting for a replay that nothing
//! triggers. A single process-wide watchdog thread therefore pumps every
//! resilient sink that is not currently busy (see [`SinkCore::pump`]):
//! it drains acknowledgements and, on finding the link dead, runs the
//! ordinary recovery episode on the idle sink's behalf.
//!
//! Transient failure is distinguished from *deliberate* stream events,
//! which must still cascade per §3.4: a reader that processes `Close` (or
//! is closed locally) marks its token dead, and the acceptor answers any
//! later connection for that token with a `Stop` notice — a recovering
//! writer that sees `Stop` stops retrying (and treats it as success when
//! it was only waiting for a `Close`/`Redirect` marker to be
//! acknowledged, since `Stop` proves the reader got that far). True
//! deadlock detection is also preserved: recovery episodes are counted in
//! process-wide gauges (see [`crate::transport::recovery_stats`]) that
//! the cluster probe checks, so a reconnecting channel is never counted
//! as a blocked one.

use crate::acceptor::{fresh_token, Acceptor, PendingConn};
use crate::frame::{
    parse_frame_header, write_data_frame, write_frame, AckEvent, AckParser, Frame, FrameHeader,
};
use crate::transport::{
    error_is_transient, profile_for, NetProfile, ReconnectPolicy, RecoveryGuard, SplitMix64,
    Transport, TransportFactory,
};
use kpn_core::{
    BlockKind, ChannelReader, ChannelWriter, Error, Monitor, Result, Sink, Source, SourceRead,
};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Maximum payload of one `Data` frame.
const MAX_FRAME: usize = 64 * 1024;

/// Size of the socket-side write coalescing buffer: big enough to merge a
/// frame header with a typical stream-buffer-sized payload into one
/// syscall, small enough per connection to stay cheap.
const SINK_BUFFER: usize = 16 * 1024;

/// The reader acknowledges after this many delivered bytes (and at every
/// `Close`/`Redirect` marker and connection adoption).
const ACK_EVERY: u64 = 16 * 1024;

/// Poll granularity for blocking ack waits and reconnect handshakes:
/// short enough to notice aborts and deadlines promptly.
const RECOVERY_POLL: Duration = Duration::from_millis(100);

/// Budget meter for one recovery episode, charged in *nominal* time: each
/// wait subtracts the duration it asked for (the backoff delay, the poll
/// interval) rather than the wall-clock time it actually took. A loaded
/// machine therefore performs exactly as many reconnect attempts as an
/// idle one before giving up — the chaos suite's fault schedules are
/// op-count based and rely on that; wall-clock deadlines made episode
/// length (and thus which operation a schedule's n-th fault landed on
/// after an early give-up) depend on scheduler noise.
struct RecoveryBudget {
    remaining: Duration,
}

impl RecoveryBudget {
    fn new(policy: &ReconnectPolicy) -> Self {
        RecoveryBudget {
            remaining: policy.budget,
        }
    }

    /// Charges the nominal cost of one wait against the budget.
    fn charge(&mut self, nominal: Duration) {
        self.remaining = self.remaining.saturating_sub(nominal);
    }

    fn exhausted(&self) -> bool {
        self.remaining.is_zero()
    }
}

fn map_write_err(e: std::io::Error) -> Error {
    use std::io::ErrorKind::*;
    match e.kind() {
        BrokenPipe | ConnectionReset | ConnectionAborted | NotConnected => Error::WriteClosed,
        _ => Error::Io(e),
    }
}

/// Transient-link classification for errors surfacing on an endpoint's
/// data path. `Eof`/`WriteClosed` are included because
/// `From<io::Error> for Error` folds `UnexpectedEof`/`BrokenPipe` into
/// them before we see the I/O kind; on a *transport* operation they mean
/// the connection died, not that the stream ended (graceful end is a
/// `Close` frame, never a socket error).
fn link_failure(e: &Error) -> bool {
    matches!(e, Error::Eof | Error::WriteClosed) || error_is_transient(e)
}

/// Out-of-band interruption for a remote endpoint: lets a network abort
/// wake threads blocked inside transports the deadlock monitor cannot
/// poison (a TCP read, or the wait for a pending connection). Shared
/// between the endpoint (which keeps it pointed at its current transport,
/// across redirects and reconnects) and the abort hook that fires it.
pub struct Interruptor {
    state: parking_lot::Mutex<InterruptState>,
}

#[derive(Default)]
struct InterruptState {
    interrupted: bool,
    /// A second handle to the endpoint's current socket.
    socket: Option<TcpStream>,
    /// A registration waiting at an acceptor (pending connection).
    pending: Option<(std::sync::Weak<Acceptor>, u64)>,
}

impl Interruptor {
    /// A fresh, un-fired interruptor.
    pub fn new() -> Arc<Self> {
        Arc::new(Interruptor {
            state: parking_lot::Mutex::new(InterruptState::default()),
        })
    }

    /// Fires the interrupt: shuts the current socket (if any) and cancels
    /// any pending registration. Threads blocked in the transport observe
    /// a disconnect and unwind; a recovery loop checks the flag and gives
    /// up instead of reconnecting. Idempotent; also affects transports
    /// attached later.
    pub fn interrupt(&self) {
        let (socket, pending) = {
            let mut st = self.state.lock();
            st.interrupted = true;
            (st.socket.take(), st.pending.take())
        };
        if let Some(s) = socket {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some((acc, token)) = pending {
            if let Some(acc) = acc.upgrade() {
                // Dropping the waiting sender makes the blocked recv fail.
                acc.unregister(token);
            }
        }
    }

    /// True once fired.
    pub fn is_interrupted(&self) -> bool {
        self.state.lock().interrupted
    }

    fn attach_transport(&self, t: &dyn Transport) {
        let handle = t.shutdown_handle();
        let mut st = self.state.lock();
        if st.interrupted {
            let _ = t.shutdown(Shutdown::Both);
            return;
        }
        st.socket = handle;
        st.pending = None;
    }

    fn attach_pending(&self, acceptor: &Arc<Acceptor>, token: u64) {
        let mut st = self.state.lock();
        if st.interrupted {
            acceptor.unregister(token);
            return;
        }
        st.socket = None;
        st.pending = Some((Arc::downgrade(acceptor), token));
    }
}

impl std::fmt::Debug for Interruptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Interruptor(fired: {})", self.is_interrupted())
    }
}

/// One frame retained for replay until acknowledged.
enum ReplayFrame {
    Data { offset: u64, bytes: Vec<u8> },
    Close { offset: u64 },
    Redirect { offset: u64, token: u64 },
}

/// The movable state of a [`RemoteSink`]: connection, stream accounting,
/// and replay buffer. Separated from the `Sink` facade so a deliberate
/// close can hand the state to a detached "linger" thread that sees the
/// final `Close` marker acknowledged (reconnecting if needed) without
/// blocking the closing process.
struct SinkCore {
    conn: Option<BufWriter<Box<dyn Transport>>>,
    /// Reader-side acceptor address, for reconnects.
    addr: String,
    token: u64,
    policy: ReconnectPolicy,
    factory: Arc<dyn TransportFactory>,
    interruptor: Option<Arc<Interruptor>>,
    peer: Option<SocketAddr>,
    /// The peer answered `Stop`: the reader is deliberately gone.
    peer_stopped: bool,
    /// A terminal failure the watchdog hit while pumping this sink on the
    /// owner's behalf, delivered on the owner's next operation so the
    /// cascade carries the real error (and the owner does not burn a
    /// second recovery budget rediscovering it).
    pending_failure: Option<Error>,
    /// Next stream offset to assign (payload bytes + markers written).
    sent: u64,
    /// Everything below this offset is acknowledged by the reader.
    acked: u64,
    replay: VecDeque<ReplayFrame>,
    replay_bytes: usize,
    acks: AckParser,
    rng: SplitMix64,
}

impl SinkCore {
    fn connect(addr: &str, token: u64, profile: NetProfile) -> Result<Self> {
        let NetProfile { factory, policy } = profile;
        let mut rng = SplitMix64(token ^ 0x005E_ED0F_5EED);
        let mut budget = RecoveryBudget::new(&policy);
        let mut attempt: u32 = 0;
        let transport = loop {
            match factory.connect(addr, token) {
                Ok(t) => break crate::rio::maybe_wrap(t),
                Err(e) if policy.enabled && link_failure(&e) && !budget.exhausted() => {
                    let delay = policy.backoff(attempt, &mut rng);
                    attempt = attempt.saturating_add(1);
                    budget.charge(delay);
                    crate::rio::sleep(delay);
                }
                Err(e) => return Err(e),
            }
        };
        let _ = transport.set_op_timeout(policy.op_timeout);
        let peer = transport.peer_addr().ok().or_else(|| addr.parse().ok());
        Ok(SinkCore {
            conn: Some(BufWriter::with_capacity(SINK_BUFFER, transport)),
            addr: addr.to_string(),
            token,
            policy,
            factory,
            interruptor: None,
            peer,
            peer_stopped: false,
            pending_failure: None,
            sent: 0,
            acked: 0,
            replay: VecDeque::new(),
            replay_bytes: 0,
            acks: AckParser::default(),
            rng,
        })
    }

    fn interrupted(&self) -> bool {
        self.interruptor
            .as_ref()
            .is_some_and(|i| i.is_interrupted())
    }

    fn apply_ack_events(&mut self, events: &[AckEvent]) {
        for ev in events {
            match ev {
                AckEvent::Ack(off) => {
                    if *off > self.acked {
                        self.acked = *off;
                    }
                }
                AckEvent::Stop => self.peer_stopped = true,
            }
        }
        self.trim_replay();
    }

    /// Drops fully acknowledged replay entries and trims the acknowledged
    /// prefix of a partially acknowledged `Data` frame.
    fn trim_replay(&mut self) {
        while let Some(front) = self.replay.front_mut() {
            match front {
                ReplayFrame::Data { offset, bytes } => {
                    let end = *offset + bytes.len() as u64;
                    if end <= self.acked {
                        self.replay_bytes -= bytes.len();
                        self.replay.pop_front();
                    } else if *offset < self.acked {
                        let cut = (self.acked - *offset) as usize;
                        bytes.drain(..cut);
                        *offset = self.acked;
                        self.replay_bytes -= cut;
                        break;
                    } else {
                        break;
                    }
                }
                ReplayFrame::Close { offset } | ReplayFrame::Redirect { offset, .. } => {
                    if *offset < self.acked {
                        self.replay.pop_front();
                    } else {
                        break;
                    }
                }
            }
        }
    }

    /// Consumes any acknowledgements sitting in the reverse direction of
    /// the connection without blocking, keeping the replay buffer trimmed.
    fn drain_acks(&mut self) -> Result<()> {
        if !self.policy.enabled {
            return Ok(());
        }
        let mut events = Vec::new();
        let mut failure: Option<Error> = None;
        {
            let Some(conn) = self.conn.as_mut() else {
                return Ok(());
            };
            if conn.get_ref().set_nonblocking(true).is_err() {
                return Ok(());
            }
            let mut tmp = [0u8; 256];
            loop {
                match conn.get_mut().read(&mut tmp) {
                    Ok(0) => {
                        failure = Some(Error::Disconnected(
                            "connection closed while draining acks".into(),
                        ));
                        break;
                    }
                    Ok(n) => {
                        if let Err(e) = self.acks.feed(&tmp[..n], |ev| events.push(ev)) {
                            failure = Some(e);
                            break;
                        }
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        failure = Some(e.into());
                        break;
                    }
                }
            }
            let _ = conn.get_ref().set_nonblocking(false);
        }
        self.apply_ack_events(&events);
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Routes a failed transport operation: transient link failures enter
    /// recovery (the replay buffer retransmits whatever the failed
    /// operation was sending); everything else maps to the fail-fast
    /// semantics of the policy-disabled path.
    fn handle_failure(&mut self, e: Error) -> Result<()> {
        if self.policy.enabled && !self.peer_stopped && !self.interrupted() && link_failure(&e) {
            self.recover()
        } else {
            Err(match e {
                Error::Io(io) => map_write_err(io),
                other => other,
            })
        }
    }

    /// One recovery episode: reconnect with backoff + jitter under the
    /// policy budget, handshake for the reader's resume acknowledgement,
    /// and retransmit the unacknowledged suffix.
    fn recover(&mut self) -> Result<()> {
        let guard = RecoveryGuard::enter();
        if let Some(conn) = self.conn.take() {
            let _ = conn.get_ref().shutdown(Shutdown::Both);
        }
        let mut budget = RecoveryBudget::new(&self.policy);
        let mut attempt: u32 = 0;
        loop {
            if self.interrupted() {
                return Err(Error::WriteClosed);
            }
            if attempt > 0 {
                let delay = self.policy.backoff(attempt - 1, &mut self.rng);
                budget.charge(delay);
                crate::rio::sleep(delay);
            }
            if budget.exhausted() {
                return Err(Error::Disconnected(format!(
                    "reconnect budget exhausted after {attempt} attempts \
                     (token {:#x}, {} unacked bytes)",
                    self.token, self.replay_bytes
                )));
            }
            guard.attempt();
            attempt = attempt.saturating_add(1);
            let transport = match self.factory.connect(&self.addr, self.token) {
                Ok(t) => crate::rio::maybe_wrap(t),
                Err(e) if link_failure(&e) => continue,
                Err(e) => return Err(e),
            };
            match self.resume_handshake(transport, &mut budget) {
                Ok(Some(conn)) => {
                    self.conn = Some(conn);
                    match self.transmit_replay() {
                        Ok(()) => return Ok(()),
                        Err(e) if link_failure(&e) => {
                            if let Some(conn) = self.conn.take() {
                                let _ = conn.get_ref().shutdown(Shutdown::Both);
                            }
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(None) => {
                    // `Stop`: the reader is deliberately gone.
                    self.peer_stopped = true;
                    return Err(Error::WriteClosed);
                }
                Err(e) if link_failure(&e) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Waits on a fresh connection for the reader's resume `Ack` (sent
    /// when the reader adopts the connection) or a `Stop` notice.
    /// `Ok(Some(conn))` means resume: `acked` is updated and the replay
    /// buffer trimmed. `Ok(None)` means `Stop`.
    fn resume_handshake(
        &mut self,
        mut transport: Box<dyn Transport>,
        budget: &mut RecoveryBudget,
    ) -> Result<Option<BufWriter<Box<dyn Transport>>>> {
        let _ = transport.set_op_timeout(Some(RECOVERY_POLL));
        let mut parser = AckParser::default();
        let mut tmp = [0u8; 64];
        loop {
            if self.interrupted() {
                return Err(Error::WriteClosed);
            }
            if budget.exhausted() {
                return Err(Error::Disconnected(
                    "no resume ack within reconnect budget".into(),
                ));
            }
            match transport.read(&mut tmp) {
                Ok(0) => return Err(Error::Disconnected("eof during resume handshake".into())),
                Ok(n) => {
                    let mut events = Vec::new();
                    parser.feed(&tmp[..n], |ev| events.push(ev))?;
                    let mut resume: Option<u64> = None;
                    for ev in &events {
                        match ev {
                            AckEvent::Stop => return Ok(None),
                            AckEvent::Ack(off) => resume = Some(resume.unwrap_or(0).max(*off)),
                        }
                    }
                    if let Some(off) = resume {
                        if off > self.acked {
                            self.acked = off;
                        }
                        self.trim_replay();
                        let _ = transport.set_op_timeout(self.policy.op_timeout);
                        if let Some(i) = &self.interruptor {
                            i.attach_transport(&*transport);
                        }
                        self.acks = AckParser::default();
                        return Ok(Some(BufWriter::with_capacity(SINK_BUFFER, transport)));
                    }
                }
                Err(ref e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    budget.charge(RECOVERY_POLL);
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Retransmits every retained frame on the current connection.
    fn transmit_replay(&mut self) -> Result<()> {
        let Some(conn) = self.conn.as_mut() else {
            return Err(Error::WriteClosed);
        };
        for frame in &self.replay {
            match frame {
                ReplayFrame::Data { offset, bytes } => write_data_frame(conn, bytes, *offset)?,
                ReplayFrame::Close { offset } => {
                    write_frame(conn, &Frame::Close { offset: *offset })?
                }
                ReplayFrame::Redirect { offset, token } => write_frame(
                    conn,
                    &Frame::Redirect {
                        token: *token,
                        offset: *offset,
                    },
                )?,
            }
        }
        conn.flush()?;
        Ok(())
    }

    /// Blocks until the reader has acknowledged every unit below `target`,
    /// reconnecting and replaying as needed. With `marker_wait`, a `Stop`
    /// from the peer counts as success: the frames below `target` end in a
    /// `Close`/`Redirect` marker, and a deliberately-dead token proves the
    /// reader processed that far (in-order delivery).
    ///
    /// There is deliberately no overall deadline here: on a *healthy* link
    /// this is ordinary bounded-channel backpressure (the reader may drain
    /// arbitrarily slowly), exactly like blocking on TCP flow control in
    /// fail-fast mode. Only recovery episodes — where the link is actually
    /// down — are budget-bounded, so a permanently dead link still
    /// terminates via `recover()`'s budget.
    fn wait_acked(&mut self, target: u64, marker_wait: bool) -> Result<()> {
        if !self.policy.enabled || self.acked >= target {
            return Ok(());
        }
        // Reading acks can block: publish this task's buffered output
        // first (same deadlock-safety rule as local channels).
        kpn_core::flush::flush_before_block();
        // An event-driven transport parks the *fiber* on readiness inside
        // its own read path, so this wait occupies no OS thread and needs
        // no compensation. A blocking transport holds an OS thread, not
        // just a task: tell the executor so a pooled worker is compensated
        // for while we sit in `read`. (`conn == None` means the first step
        // goes straight to `recover`, whose fresh transport matches the
        // backend — decide by the backend in that case.)
        let event_driven = match self.conn.as_ref() {
            Some(c) => c.get_ref().is_event_driven(),
            None => crate::rio::parking_context().is_some(),
        };
        if event_driven {
            self.wait_acked_inner(target, marker_wait)
        } else {
            kpn_core::exec::blocking_region(|| self.wait_acked_inner(target, marker_wait))
        }
    }

    fn wait_acked_inner(&mut self, target: u64, marker_wait: bool) -> Result<()> {
        let mut tmp = [0u8; 256];
        loop {
            if self.acked >= target {
                break;
            }
            if self.peer_stopped {
                if marker_wait {
                    break;
                }
                return Err(Error::WriteClosed);
            }
            if self.interrupted() {
                return Err(Error::WriteClosed);
            }
            let mut step = || -> Result<usize> {
                let Some(conn) = self.conn.as_mut() else {
                    return Err(Error::WriteClosed);
                };
                conn.flush()?;
                let _ = conn.get_ref().set_op_timeout(Some(RECOVERY_POLL));
                let r = conn.get_mut().read(&mut tmp);
                let _ = conn.get_ref().set_op_timeout(self.policy.op_timeout);
                match r {
                    Ok(0) => Err(Error::Disconnected("eof during ack wait".into())),
                    Ok(n) => Ok(n),
                    Err(ref e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        Ok(0)
                    }
                    Err(e) => Err(e.into()),
                }
            };
            let failure = match step() {
                Ok(0) => continue,
                Ok(n) => {
                    let mut events = Vec::new();
                    let fed = self.acks.feed(&tmp[..n], |ev| events.push(ev));
                    self.apply_ack_events(&events);
                    match fed {
                        Ok(()) => continue,
                        Err(e) => e, // garbage on the ack stream: treat as a link fault
                    }
                }
                Err(e) => e,
            };
            match self.handle_failure(failure) {
                Ok(()) => continue,
                Err(e) => {
                    if self.peer_stopped && marker_wait {
                        break;
                    }
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn write_chunks(&mut self, buf: &[u8]) -> Result<()> {
        if let Some(e) = self.pending_failure.take() {
            return Err(e);
        }
        if self.peer_stopped {
            return Err(Error::WriteClosed);
        }
        if self.policy.enabled {
            if let Err(e) = self.drain_acks() {
                self.handle_failure(e)?;
            }
            if self.peer_stopped {
                return Err(Error::WriteClosed);
            }
        }
        for chunk in buf.chunks(MAX_FRAME) {
            if self.policy.enabled {
                // Floor: one full frame plus the reader's ack granularity,
                // so the reader's lagging cumulative ack (< ACK_EVERY
                // behind its delivery point) always frees enough window.
                let cap = self
                    .policy
                    .replay_capacity
                    .max(MAX_FRAME + ACK_EVERY as usize);
                if self.replay_bytes + chunk.len() > cap {
                    // Replay window full: block until the reader catches
                    // up — semantically a smaller bounded channel.
                    let free_needed = (self.replay_bytes + chunk.len() - cap) as u64;
                    self.wait_acked(self.acked + free_needed, false)?;
                }
                self.replay.push_back(ReplayFrame::Data {
                    offset: self.sent,
                    bytes: chunk.to_vec(),
                });
                self.replay_bytes += chunk.len();
            }
            let offset = self.sent;
            self.sent += chunk.len() as u64;
            let r = match self.conn.as_mut() {
                Some(conn) => write_data_frame(conn, chunk, offset),
                None => Err(Error::WriteClosed),
            };
            if let Err(e) = r {
                // Recovery retransmits this chunk from the replay buffer.
                self.handle_failure(e)?;
            }
        }
        // Flush on the frame boundary: every `write_all` a raw (unwrapped)
        // writer performs is immediately visible to the remote reader, so
        // deadlock safety never depends on socket-side buffering. Batched
        // callers sit behind a stream-layer buffer that already delivers
        // chunk-sized `write_all`s here.
        let r = match self.conn.as_mut() {
            Some(conn) => conn.flush().map_err(Error::Io),
            None => Err(Error::WriteClosed),
        };
        if let Err(e) = r {
            self.handle_failure(e)?;
        }
        Ok(())
    }

    /// Appends a marker frame to the replay buffer and transmits it
    /// (best-effort — `wait_acked` recovery retransmits on failure).
    fn send_marker(&mut self, frame: ReplayFrame) {
        let wire = match &frame {
            ReplayFrame::Close { offset } => Frame::Close { offset: *offset },
            ReplayFrame::Redirect { offset, token } => Frame::Redirect {
                token: *token,
                offset: *offset,
            },
            ReplayFrame::Data { .. } => unreachable!("markers only"),
        };
        self.replay.push_back(frame);
        if let Some(conn) = self.conn.as_mut() {
            let _ = write_frame(conn, &wire);
            let _ = conn.flush();
        }
    }

    /// Sees the final `Close` marker acknowledged, then retires the
    /// connection. Runs on a detached linger thread so closing a channel
    /// never blocks the closing process on the reader's progress.
    fn linger_close(&mut self, target: u64) {
        let _ = self.wait_acked(target, true);
        if let Some(conn) = self.conn.as_ref() {
            let _ = conn.get_ref().shutdown(Shutdown::Write);
        }
    }

    /// One watchdog step on an idle sink (see the module docs): drain any
    /// acknowledgements the reader pushed while this sink's process was
    /// parked on some other channel, and if that reveals a dead link,
    /// run an ordinary recovery episode here on the watchdog thread.
    ///
    /// Reconnection is writer-driven, so without this a process that
    /// stops writing for a while never notices its socket died — and an
    /// in-flight frame lost with the connection could only be restored
    /// by a replay that nothing would ever trigger, stalling the reader
    /// (and, transitively, any cycle through it) forever.
    fn pump(&mut self) {
        if !self.policy.enabled || self.peer_stopped || self.interrupted() || self.conn.is_none()
        {
            return;
        }
        if let Err(e) = self.drain_acks() {
            // A failed recovery leaves `conn` empty (so the watchdog does
            // not retry a link whose budget is spent); the terminal error
            // is stashed to surface on the owning process's next write,
            // exactly as if that write had discovered the dead link.
            if let Err(e) = self.handle_failure(e) {
                self.pending_failure = Some(e);
            }
        }
    }
}

/// Resilient sinks the watchdog thread pumps, registered on creation and
/// pruned when the owning facade (or its linger thread) drops the core.
static PUMP_SINKS: Mutex<Vec<std::sync::Weak<Mutex<SinkCore>>>> = Mutex::new(Vec::new());
static PUMP_THREAD: std::sync::Once = std::sync::Once::new();

fn pump_register(core: &Arc<Mutex<SinkCore>>) {
    PUMP_SINKS.lock().push(Arc::downgrade(core));
    PUMP_THREAD.call_once(|| {
        let _ = std::thread::Builder::new()
            .name("kpn-sink-pump".into())
            .spawn(pump_loop);
    });
}

/// The watchdog: every poll interval, give each registered sink whose
/// owner is not actively using it (`try_lock`) one [`SinkCore::pump`]
/// step. A sink mid-recovery on its own fiber is simply skipped, and a
/// recovery episode run *here* blocks only this thread — the owning
/// process keeps running until it next touches the sink, then waits on
/// the lock exactly as if it were performing the recovery itself.
fn pump_loop() {
    loop {
        std::thread::sleep(RECOVERY_POLL);
        let sinks: Vec<Arc<Mutex<SinkCore>>> = {
            let mut reg = PUMP_SINKS.lock();
            reg.retain(|w| w.strong_count() > 0);
            reg.iter().filter_map(std::sync::Weak::upgrade).collect()
        };
        for sink in sinks {
            if let Some(mut core) = sink.try_lock() {
                core.pump();
            }
        }
    }
}

/// The write end of a channel whose reader lives on another server.
///
/// Frames are staged behind a [`BufWriter`] so a header and its payload
/// (and any adjacent small frames) coalesce into one syscall, and the
/// socket runs with `TCP_NODELAY`: batching is decided by our explicit
/// flush-on-frame-boundary, not by Nagle's timer. Payload bytes are
/// framed in place — no per-frame allocation.
///
/// With a [`ReconnectPolicy`] enabled (via the address's installed
/// [`NetProfile`]), the sink retains unacknowledged frames and survives
/// transient link failure by reconnecting and replaying — see the module
/// docs.
pub struct RemoteSink {
    /// Shared with the watchdog thread (and, after close, the linger
    /// thread): the owning process locks it for every operation, the
    /// watchdog only ever `try_lock`s.
    core: Option<Arc<Mutex<SinkCore>>>,
    closed: bool,
}

impl RemoteSink {
    /// Connects to the reader's acceptor and presents `token`, using the
    /// [`NetProfile`] installed for `addr` (plain fail-fast TCP when none
    /// is).
    pub fn connect(addr: &str, token: u64) -> Result<Self> {
        Self::connect_with(addr, token, profile_for(addr))
    }

    /// Connects with an explicit profile.
    pub fn connect_with(addr: &str, token: u64, profile: NetProfile) -> Result<Self> {
        let core = Arc::new(Mutex::new(SinkCore::connect(addr, token, profile)?));
        if core.lock().policy.enabled {
            pump_register(&core);
        }
        Ok(RemoteSink {
            core: Some(core),
            closed: false,
        })
    }

    fn core(&self) -> Result<&Arc<Mutex<SinkCore>>> {
        self.core.as_ref().ok_or(Error::WriteClosed)
    }

    pub(crate) fn set_interruptor(&mut self, interruptor: Arc<Interruptor>) {
        if let Some(core) = self.core.as_ref() {
            let mut core = core.lock();
            if let Some(conn) = core.conn.as_ref() {
                interruptor.attach_transport(&**conn.get_ref());
            }
            core.interruptor = Some(interruptor);
        }
    }

    /// The peer (reader-side) address — the acceptor this sink connected
    /// to, used when shipping the writer endpoint onward.
    pub fn peer_addr(&self) -> Result<SocketAddr> {
        let core = self.core.as_ref().ok_or(Error::WriteClosed)?.lock();
        if let Some(peer) = core.peer {
            return Ok(peer);
        }
        match core.conn.as_ref() {
            Some(conn) => Ok(conn.get_ref().peer_addr()?),
            None => Err(Error::WriteClosed),
        }
    }

    /// Begins migrating this writer endpoint to another server (§4.3):
    /// sends `Redirect{token}` so the reader splices in a connection that
    /// the endpoint's new home will open directly, then retires this
    /// connection. Returns `(reader_addr, token)` for the new home's
    /// `RemoteSink::connect`.
    ///
    /// Under a reconnect policy this blocks until the reader acknowledges
    /// the redirect marker (reconnecting and replaying if the link fails
    /// mid-handshake), so the marker is delivered exactly once before the
    /// old connection goes away.
    pub fn begin_redirect(mut self) -> Result<(SocketAddr, u64)> {
        let peer = self.peer_addr()?;
        let token = fresh_token();
        let mut core = self.core()?.lock();
        let offset = core.sent;
        core.sent += 1;
        if core.policy.enabled {
            core.send_marker(ReplayFrame::Redirect { offset, token });
            let target = core.sent;
            core.wait_acked(target, true)
                .map_err(|e| Error::Disconnected(format!("redirect failed: {e}")))?;
        } else {
            let conn = core.conn.as_mut().ok_or(Error::WriteClosed)?;
            write_frame(conn, &Frame::Redirect { token, offset })
                .map_err(|e| Error::Disconnected(format!("redirect failed: {e}")))?;
            conn.flush().map_err(map_write_err)?;
        }
        if let Some(conn) = core.conn.as_ref() {
            let _ = conn.get_ref().shutdown(Shutdown::Both);
        }
        drop(core);
        self.closed = true; // redirect supersedes Close
        Ok((peer, token))
    }
}

impl Sink for RemoteSink {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        if self.closed {
            return Err(Error::WriteClosed);
        }
        self.core()?.lock().write_chunks(buf)
    }

    fn flush(&mut self) -> Result<()> {
        let mut core = self.core()?.lock();
        let r = match core.conn.as_mut() {
            Some(conn) => conn.flush().map_err(Error::Io),
            None => Err(Error::WriteClosed),
        };
        match r {
            Ok(()) => Ok(()),
            Err(e) => core.handle_failure(e),
        }
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let Some(core) = self.core.take() else {
            return;
        };
        let mut c = core.lock();
        let offset = c.sent;
        c.sent += 1;
        if c.policy.enabled && !c.peer_stopped {
            c.send_marker(ReplayFrame::Close { offset });
            let target = c.sent;
            drop(c);
            // The Close marker is only acknowledged once the reader drains
            // to it, which can be arbitrarily later: see it through from a
            // detached thread so closing never blocks this process. (The
            // thread holds the lock throughout, so the watchdog skips the
            // sink; dropping the Arc afterwards prunes it.)
            let _ = std::thread::Builder::new()
                .name("kpn-sink-linger".into())
                .spawn(move || core.lock().linger_close(target));
        } else if let Some(conn) = c.conn.as_mut() {
            let _ = write_frame(conn, &Frame::Close { offset });
            let _ = conn.flush();
            let _ = conn.get_ref().shutdown(Shutdown::Write);
        }
    }
}

impl Drop for RemoteSink {
    fn drop(&mut self) {
        self.close();
    }
}

/// The read end of a channel whose writer lives on another server.
///
/// With a reconnect policy (from the owning acceptor's [`NetProfile`])
/// the source tracks the next stream offset it will deliver, discards
/// replayed duplicate bytes, acknowledges cumulatively, and on transient
/// link failure re-registers its token and adopts the writer's
/// replacement connection — see the module docs.
pub struct RemoteSource {
    stream: BufReader<Box<dyn Transport>>,
    /// The local acceptor, needed to honour `Redirect` frames and to
    /// re-listen during recovery.
    acceptor: Option<Arc<Acceptor>>,
    /// Abort-interruption handle, kept pointing at the live transport.
    interruptor: Option<Arc<Interruptor>>,
    policy: ReconnectPolicy,
    /// The endpoint token this source listens under (0 = unknown: no
    /// recovery possible).
    token: u64,
    /// Bytes left to stream from the current `Data` frame.
    remaining: usize,
    /// Leading duplicate bytes of the current frame to discard (replayed
    /// data the channel has already delivered).
    skip: usize,
    /// Next stream offset to deliver.
    expected: u64,
    /// Bytes delivered since the last acknowledgement.
    unacked: u64,
    /// Set when an ack write failed mid-frame: the ack direction may
    /// carry a partial frame the writer's parser cannot resynchronize
    /// from, so the connection has been shut down and the next read must
    /// go straight to recovery instead of the idle wait.
    ack_poisoned: bool,
    closed: bool,
}

impl RemoteSource {
    pub(crate) fn adopt(
        transport: Box<dyn Transport>,
        acceptor: Option<Arc<Acceptor>>,
        interruptor: Option<Arc<Interruptor>>,
        policy: ReconnectPolicy,
        token: u64,
    ) -> Self {
        // Accepted connections arrive unwrapped (the acceptor's factory
        // knows nothing about executors); attach the reactor here.
        let transport = crate::rio::maybe_wrap(transport);
        if let Some(i) = &interruptor {
            i.attach_transport(&*transport);
        }
        let _ = transport.set_op_timeout(policy.op_timeout);
        let mut source = RemoteSource {
            stream: BufReader::new(transport),
            acceptor,
            interruptor,
            policy,
            token,
            remaining: 0,
            skip: 0,
            expected: 0,
            unacked: 0,
            ack_poisoned: false,
            closed: false,
        };
        if source.policy.enabled {
            // Adoption ack: a writer already in recovery is waiting for
            // our resume offset; a fresh writer drains it harmlessly. A
            // failure here cannot be ignored: the frame may be partially
            // written, and the reader would otherwise settle into the idle
            // wait while the writer blocks on an ack that can never parse.
            if source.send_ack().is_err() {
                source.retire_ack_channel();
            }
        }
        source
    }

    /// Shuts the connection down after a failed ack write. An ack frame
    /// that errored mid-write may sit partially on the wire, and the
    /// writer's ack parser has no way to resynchronize past it — so the
    /// only safe move is to kill the connection (the writer's pending
    /// handshake sees EOF at once and reconnects) and route this source's
    /// next read into recovery.
    fn retire_ack_channel(&mut self) {
        let _ = self.stream.get_ref().shutdown(Shutdown::Both);
        self.ack_poisoned = true;
    }

    /// Writes `Ack{expected}` on the reverse direction of the transport.
    fn send_ack(&mut self) -> Result<()> {
        let t = self.stream.get_mut();
        write_frame(
            t,
            &Frame::Ack {
                offset: self.expected,
            },
        )?;
        t.flush()?;
        self.unacked = 0;
        Ok(())
    }

    fn ack_progress(&mut self, delivered: usize) {
        if !self.policy.enabled {
            return;
        }
        self.unacked += delivered as u64;
        if self.unacked >= ACK_EVERY {
            // A failed ack is not merely "link died" (where the next read
            // would fail anyway): a fault can interrupt the frame mid-write
            // while the link stays up, leaving the ack stream garbled.
            // Retire the connection so recovery resynchronizes both sides.
            if self.send_ack().is_err() {
                self.retire_ack_channel();
            }
        }
    }

    /// Marks this endpoint deliberately finished: acknowledge the final
    /// marker and poison the token so a recovering writer receives `Stop`
    /// instead of retrying forever.
    fn finish_deliberate(&mut self) {
        if self.policy.enabled {
            let _ = self.send_ack();
        }
        if self.token != 0 {
            if let Some(a) = &self.acceptor {
                a.unregister(self.token);
            }
        }
    }

    fn try_read(&mut self, buf: &mut [u8]) -> Result<SourceRead> {
        if self.ack_poisoned {
            // A failed ack write retired this connection (see
            // `retire_ack_channel`); skip the idle wait and reconnect.
            self.ack_poisoned = false;
            return Err(Error::Eof);
        }
        loop {
            if self.remaining > 0 {
                if self.skip > 0 {
                    // Replayed duplicate prefix: consume and discard.
                    let mut scratch = [0u8; 1024];
                    let n = self.skip.min(scratch.len());
                    let got = self.stream.read(&mut scratch[..n])?;
                    if got == 0 {
                        return Err(Error::Disconnected("peer vanished mid-frame".into()));
                    }
                    self.skip -= got;
                    self.remaining -= got;
                    continue;
                }
                let n = buf.len().min(self.remaining);
                let got = self.stream.read(&mut buf[..n])?;
                if got == 0 {
                    return Err(Error::Disconnected("peer vanished mid-frame".into()));
                }
                self.remaining -= got;
                self.expected += got as u64;
                self.ack_progress(got);
                return Ok(SourceRead::Data(got));
            }
            // Waiting for the next frame's tag byte is the *idle* position:
            // a read timeout here means the channel simply has no data
            // (Kahn-legal, possibly forever), not that the link is sick, so
            // we keep waiting instead of tearing the connection down. A
            // timeout *inside* a frame (header tail or payload, above and
            // below) is different — the writer started a frame and stalled —
            // and propagates as a transient error into recovery, which is
            // safe because replay re-sends the whole frame.
            let tag = loop {
                let mut tag = [0u8; 1];
                match self.stream.read(&mut tag) {
                    Ok(0) => {
                        return Err(Error::Disconnected(
                            "connection closed without Close frame".into(),
                        ))
                    }
                    Ok(_) => break tag[0],
                    Err(ref e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::TimedOut
                                | io::ErrorKind::WouldBlock
                                | io::ErrorKind::Interrupted
                        ) =>
                    {
                        if let Some(i) = &self.interruptor {
                            if i.is_interrupted() {
                                return Err(Error::WriteClosed);
                            }
                        }
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                }
            };
            match parse_frame_header(tag, &mut self.stream)? {
                FrameHeader::Data { len: 0, .. } => continue,
                FrameHeader::Data { len, offset } => {
                    if offset > self.expected {
                        return Err(Error::Graph(format!(
                            "stream gap: data at offset {offset}, expected {}",
                            self.expected
                        )));
                    }
                    self.remaining = len;
                    self.skip = ((self.expected - offset) as usize).min(len);
                }
                FrameHeader::Close { offset } => {
                    if offset > self.expected {
                        return Err(Error::Graph(format!(
                            "stream gap: close at offset {offset}, expected {}",
                            self.expected
                        )));
                    }
                    self.expected = offset + 1;
                    self.finish_deliberate();
                    return Ok(SourceRead::End);
                }
                FrameHeader::Redirect { token, offset } => {
                    if offset > self.expected {
                        return Err(Error::Graph(format!(
                            "stream gap: redirect at offset {offset}, expected {}",
                            self.expected
                        )));
                    }
                    self.expected = offset + 1;
                    let acceptor = self.acceptor.clone().ok_or_else(|| {
                        Error::Graph("redirect received but node has no acceptor".into())
                    })?;
                    if self.policy.enabled {
                        let _ = self.send_ack();
                    }
                    if self.token != 0 {
                        // The old writer endpoint is done with this token:
                        // poison it so its recovering connects see `Stop`
                        // (= the marker arrived) instead of retrying.
                        acceptor.unregister(self.token);
                    }
                    let source =
                        PendingSource::listen_with(&acceptor, token, self.interruptor.clone());
                    return Ok(SourceRead::Splice(ChannelReader::from_source(Box::new(
                        source,
                    ))));
                }
                FrameHeader::Ack { .. } | FrameHeader::Stop => {
                    return Err(Error::Graph(
                        "unexpected ack/stop frame on data direction".into(),
                    ));
                }
            }
        }
    }

    /// One reader recovery episode: retire the broken transport (waking a
    /// writer whose half was still healthy), re-register the token, adopt
    /// the writer's replacement connection, and acknowledge the resume
    /// offset on it.
    fn recover(&mut self) -> Result<()> {
        let acceptor = match &self.acceptor {
            Some(a) if self.token != 0 => a.clone(),
            _ => {
                return Err(Error::Disconnected(
                    "link failed and endpoint cannot re-listen".into(),
                ))
            }
        };
        let guard = RecoveryGuard::enter();
        let _ = self.stream.get_ref().shutdown(Shutdown::Both);
        let mut budget = RecoveryBudget::new(&self.policy);
        let mut pending = acceptor.register(self.token);
        if let Some(i) = &self.interruptor {
            i.attach_pending(&acceptor, self.token);
        }
        loop {
            if self
                .interruptor
                .as_ref()
                .is_some_and(|i| i.is_interrupted())
            {
                return Err(Error::Disconnected("aborted while reconnecting".into()));
            }
            match pending.recv_wait(Some(RECOVERY_POLL)) {
                Ok(transport) => {
                    guard.attempt();
                    let transport = crate::rio::maybe_wrap(transport);
                    let _ = transport.set_op_timeout(self.policy.op_timeout);
                    if let Some(i) = &self.interruptor {
                        i.attach_transport(&*transport);
                    }
                    self.stream = BufReader::new(transport);
                    self.remaining = 0;
                    self.skip = 0;
                    match self.send_ack() {
                        Ok(()) => return Ok(()),
                        Err(_) => {
                            // The adopted connection died immediately:
                            // retire it and keep listening. Charging one
                            // poll interval bounds how many dead adoptions
                            // one episode tolerates.
                            let _ = self.stream.get_ref().shutdown(Shutdown::Both);
                            budget.charge(RECOVERY_POLL);
                            if budget.exhausted() {
                                return Err(self.budget_error());
                            }
                            pending = acceptor.register(self.token);
                            if let Some(i) = &self.interruptor {
                                i.attach_pending(&acceptor, self.token);
                            }
                        }
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    budget.charge(RECOVERY_POLL);
                    if budget.exhausted() {
                        return Err(self.budget_error());
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(Error::Disconnected(
                        "acceptor closed while reconnecting".into(),
                    ));
                }
            }
        }
    }

    fn budget_error(&self) -> Error {
        Error::Disconnected(format!(
            "reconnect budget exhausted: no replacement connection for token {:#x} \
             ({} stream units delivered)",
            self.token, self.expected
        ))
    }

    fn read_loop(&mut self, buf: &mut [u8]) -> Result<SourceRead> {
        loop {
            match self.try_read(buf) {
                Ok(r) => return Ok(r),
                Err(e) if self.policy.enabled && !self.closed && link_failure(&e) => {
                    self.recover()?;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Source for RemoteSource {
    fn read(&mut self, buf: &mut [u8]) -> Result<SourceRead> {
        // A socket read can block indefinitely: publish this task's
        // buffered output first (same deadlock-safety rule as local
        // channels — see `kpn_core::flush`).
        kpn_core::flush::flush_before_block();
        if self.stream.get_ref().is_event_driven() {
            // Event-driven transport: a wait parks this *fiber* on socket
            // readiness and the worker thread moves on — no OS thread is
            // held, so no blocking region is needed (or wanted: it would
            // spawn a compensation thread for a wait that costs none).
            self.read_loop(buf)
        } else {
            // Blocking transport: the wait occupies a worker thread; enter
            // a blocking region so a pooled executor backfills it.
            kpn_core::exec::blocking_region(|| self.read_loop(buf))
        }
    }

    fn close(&mut self) {
        self.closed = true;
        if self.token != 0 {
            if let Some(a) = &self.acceptor {
                // Deliberate close: a recovering writer gets `Stop` and
                // cascades instead of retrying against a gone reader.
                a.unregister(self.token);
            }
        }
        let _ = self.stream.get_ref().shutdown(Shutdown::Both);
    }
}

/// A read endpoint whose data connection has not arrived yet — the
/// listening state of the automatic connection establishment (§4.2) and of
/// the `RedirectedInputStream` (§4.3). The first read blocks until the
/// connection shows up, then splices in a [`RemoteSource`].
pub struct PendingSource {
    pending: PendingConn,
    token: u64,
    acceptor: Arc<Acceptor>,
    interruptor: Option<Arc<Interruptor>>,
}

impl PendingSource {
    /// Registers `token` at the node's acceptor and returns the endpoint.
    pub fn listen(acceptor: &Arc<Acceptor>, token: u64) -> Self {
        Self::listen_with(acceptor, token, None)
    }

    /// Like [`PendingSource::listen`], with an abort-interruption handle
    /// that stays attached through connection arrival, redirects, and
    /// reconnects.
    pub fn listen_with(
        acceptor: &Arc<Acceptor>,
        token: u64,
        interruptor: Option<Arc<Interruptor>>,
    ) -> Self {
        if let Some(i) = &interruptor {
            i.attach_pending(acceptor, token);
        }
        PendingSource {
            pending: acceptor.register(token),
            token,
            acceptor: acceptor.clone(),
            interruptor,
        }
    }
}

impl Source for PendingSource {
    fn read(&mut self, _buf: &mut [u8]) -> Result<SourceRead> {
        // Waiting for a connection is a blocking read: flush first so the
        // peer (who may need our buffered output to make progress before
        // connecting back) can proceed. `recv_wait` parks the fiber on the
        // reactor backend; otherwise it blocks inside a blocking region so
        // a pooled executor keeps its worker count whole.
        kpn_core::flush::flush_before_block();
        match self.pending.recv_wait(None) {
            Ok(transport) => {
                let policy = self.acceptor.profile().policy.clone();
                let source = RemoteSource::adopt(
                    transport,
                    Some(self.acceptor.clone()),
                    self.interruptor.clone(),
                    policy,
                    self.token,
                );
                Ok(SourceRead::Splice(ChannelReader::from_source(Box::new(
                    source,
                ))))
            }
            Err(_) => Err(Error::Disconnected(
                "acceptor closed before connection arrived".into(),
            )),
        }
    }

    fn close(&mut self) {
        self.acceptor.unregister(self.token);
    }
}

/// Wraps a remote read endpoint so blocking reads register with the
/// network's deadlock monitor as *external* blocks (§6.2): they count
/// toward all-blocked detection and cluster snapshots, but can never cause
/// a local true-deadlock abort, because the monitor cannot see whether
/// data is in flight on the wire.
pub fn monitored_reader(inner: ChannelReader, monitor: Arc<Monitor>) -> ChannelReader {
    ChannelReader::from_source(Box::new(MonitoredSource { inner, monitor }))
}

struct MonitoredSource {
    inner: ChannelReader,
    monitor: Arc<Monitor>,
}

impl Source for MonitoredSource {
    fn read(&mut self, buf: &mut [u8]) -> Result<SourceRead> {
        let _guard = self.monitor.external_block(BlockKind::Read)?;
        match self.inner.read(buf)? {
            0 => Ok(SourceRead::End),
            n => Ok(SourceRead::Data(n)),
        }
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

/// Wraps a remote write endpoint so blocking writes (TCP backpressure)
/// register with the deadlock monitor as external blocks; see
/// [`monitored_reader`].
pub fn monitored_writer(inner: ChannelWriter, monitor: Arc<Monitor>) -> ChannelWriter {
    ChannelWriter::from_sink(Box::new(MonitoredSink { inner, monitor }))
}

struct MonitoredSink {
    inner: ChannelWriter,
    monitor: Arc<Monitor>,
}

impl Sink for MonitoredSink {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        let _guard = self.monitor.external_block(BlockKind::Write)?;
        self.inner.write_all(buf)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

/// Creates the write end of a cross-server channel: connects to the
/// reader's node and presents the endpoint token.
pub fn remote_writer(addr: &str, token: u64) -> Result<ChannelWriter> {
    Ok(ChannelWriter::from_sink(Box::new(RemoteSink::connect(
        addr, token,
    )?)))
}

/// Creates the read end of a cross-server channel: listens (via the node's
/// acceptor) for the connection presenting `token`.
pub fn remote_reader(acceptor: &Arc<Acceptor>, token: u64) -> ChannelReader {
    ChannelReader::from_source(Box::new(PendingSource::listen(acceptor, token)))
}

/// Like [`remote_reader`], returning the [`Interruptor`] that can wake a
/// blocked read from outside (used by network abort hooks).
pub fn remote_reader_interruptible(
    acceptor: &Arc<Acceptor>,
    token: u64,
) -> (ChannelReader, Arc<Interruptor>) {
    let interruptor = Interruptor::new();
    let source = PendingSource::listen_with(acceptor, token, Some(interruptor.clone()));
    (ChannelReader::from_source(Box::new(source)), interruptor)
}

/// Like [`remote_writer`], returning the [`Interruptor`] that can wake a
/// blocked write from outside.
pub fn remote_writer_interruptible(
    addr: &str,
    token: u64,
) -> Result<(ChannelWriter, Arc<Interruptor>)> {
    let mut sink = RemoteSink::connect(addr, token)?;
    let interruptor = Interruptor::new();
    sink.set_interruptor(interruptor.clone());
    Ok((ChannelWriter::from_sink(Box::new(sink)), interruptor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{install_profile, remove_profile, TcpFactory};
    use kpn_core::{DataReader, DataWriter};
    use std::time::Duration;

    fn node() -> Arc<Acceptor> {
        Acceptor::bind("127.0.0.1:0").unwrap()
    }

    #[test]
    fn bytes_flow_across_tcp() {
        let b = node();
        let token = fresh_token();
        let mut reader = remote_reader(&b, token);
        let mut writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        writer.write_all(b"over the wire").unwrap();
        let mut buf = [0u8; 13];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"over the wire");
    }

    #[test]
    fn connect_before_register_is_parked() {
        let b = node();
        let token = fresh_token();
        // Writer connects first; the reader registers afterwards.
        let mut writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        writer.write_all(b"early").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let mut reader = remote_reader(&b, token);
        let mut buf = [0u8; 5];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"early");
    }

    #[test]
    fn writer_close_gives_reader_eof_after_drain() {
        let b = node();
        let token = fresh_token();
        let mut reader = remote_reader(&b, token);
        let mut writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        writer.write_all(b"tail").unwrap();
        drop(writer);
        let mut buf = [0u8; 4];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"tail");
        assert_eq!(reader.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn reader_close_fails_writer_across_network() {
        let b = node();
        let token = fresh_token();
        let reader = remote_reader(&b, token);
        let mut writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        writer.write_all(b"x").unwrap();
        drop(reader);
        // The shutdown needs a moment to reach the writer's kernel.
        std::thread::sleep(Duration::from_millis(50));
        let mut failed = false;
        for _ in 0..100 {
            if writer.write_all(b"yyyyyyyy").is_err() {
                failed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(failed, "writer never observed the closed reader");
    }

    #[test]
    fn typed_streams_work_over_tcp() {
        let b = node();
        let token = fresh_token();
        let reader = remote_reader(&b, token);
        let writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        let mut dw = DataWriter::new(writer);
        let mut dr = DataReader::new(reader);
        for i in 0..1000i64 {
            dw.write_i64(i * 3).unwrap();
        }
        drop(dw);
        for i in 0..1000i64 {
            assert_eq!(dr.read_i64().unwrap(), i * 3);
        }
        assert!(dr.read_i64().is_err());
    }

    #[test]
    fn large_transfer_chunks_into_frames() {
        let b = node();
        let token = fresh_token();
        let mut reader = remote_reader(&b, token);
        let mut writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        let data: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        let expect = data.clone();
        let h = std::thread::spawn(move || writer.write_all(&data));
        let mut got = vec![0u8; expect.len()];
        reader.read_exact(&mut got).unwrap();
        h.join().unwrap().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn redirect_moves_traffic_to_new_writer() {
        // Figure 15: A→B traffic redirected so C→B talks directly.
        let b = node();
        let token = fresh_token();
        let mut reader = remote_reader(&b, token); // "Print" on B
        let mut sink_a = RemoteSink::connect(&b.local_addr().to_string(), token).unwrap();
        sink_a.write_all(b"from A;").unwrap();
        // A migrates the writer endpoint: redirect, then "ship" to C.
        let (reader_addr, new_token) = sink_a.begin_redirect().unwrap();
        // C connects directly to B; A is out of the path from here on.
        let mut writer_c = remote_writer(&reader_addr.to_string(), new_token).unwrap();
        writer_c.write_all(b"from C").unwrap();
        drop(writer_c);
        let mut buf = [0u8; 13];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"from A;from C");
        assert_eq!(reader.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn chained_redirects() {
        // An endpoint migrated twice (A→C→D) still delivers in order.
        let b = node();
        let token = fresh_token();
        let mut reader = remote_reader(&b, token);
        let mut sink_a = RemoteSink::connect(&b.local_addr().to_string(), token).unwrap();
        sink_a.write_all(b"1").unwrap();
        let (addr1, tok1) = sink_a.begin_redirect().unwrap();
        let mut sink_c = RemoteSink::connect(&addr1.to_string(), tok1).unwrap();
        sink_c.write_all(b"2").unwrap();
        let (addr2, tok2) = sink_c.begin_redirect().unwrap();
        let mut sink_d = RemoteSink::connect(&addr2.to_string(), tok2).unwrap();
        sink_d.write_all(b"3").unwrap();
        sink_d.close();
        let mut buf = [0u8; 3];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"123");
        assert_eq!(reader.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn pending_source_close_unregisters() {
        let b = node();
        let token = fresh_token();
        let reader = remote_reader(&b, token);
        drop(reader);
        // A late connection for the abandoned endpoint gets a Stop notice
        // and is dropped; the connector then observes a closed socket on
        // write.
        let mut writer = remote_writer(&b.local_addr().to_string(), token).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let mut failed = false;
        for _ in 0..100 {
            if writer.write_all(b"zzzzzzzz").is_err() {
                failed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(failed, "writer to abandoned endpoint never failed");
    }

    #[test]
    fn resilient_mode_plain_roundtrip() {
        // The ack/replay machinery must be invisible when no faults occur.
        let profile = NetProfile {
            factory: Arc::new(TcpFactory),
            policy: ReconnectPolicy::resilient(),
        };
        let b = Acceptor::bind_with("127.0.0.1:0", profile.clone()).unwrap();
        let addr = b.local_addr().to_string();
        install_profile(addr.clone(), profile);
        let token = fresh_token();
        let mut reader = remote_reader(&b, token);
        let mut writer = remote_writer(&addr, token).unwrap();
        writer.write_all(b"resilient").unwrap();
        let mut buf = [0u8; 9];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"resilient");
        drop(writer); // close() hands the Close marker to a linger thread
        assert_eq!(reader.read(&mut buf).unwrap(), 0);
        remove_profile(&addr);
    }

    #[test]
    fn resilient_large_transfer_with_acks() {
        // Push more than the replay capacity through so the ack-driven
        // trimming and capacity waits actually run.
        let mut policy = ReconnectPolicy::resilient();
        policy.replay_capacity = 96 * 1024;
        let profile = NetProfile {
            factory: Arc::new(TcpFactory),
            policy,
        };
        let b = Acceptor::bind_with("127.0.0.1:0", profile.clone()).unwrap();
        let addr = b.local_addr().to_string();
        install_profile(addr.clone(), profile);
        let token = fresh_token();
        let mut reader = remote_reader(&b, token);
        let mut writer = remote_writer(&addr, token).unwrap();
        let data: Vec<u8> = (0..400_000u32).map(|i| (i % 239) as u8).collect();
        let expect = data.clone();
        let h = std::thread::spawn(move || {
            writer.write_all(&data).unwrap();
        });
        let mut got = vec![0u8; expect.len()];
        reader.read_exact(&mut got).unwrap();
        h.join().unwrap();
        assert_eq!(got, expect);
        remove_profile(&addr);
    }
}
