//! Building and partitioning distributed program graphs.
//!
//! A [`GraphBuilder`] records a whole program graph — processes, channels,
//! and a partition assignment — then [`GraphBuilder::deploy`] cuts it:
//! channels whose endpoints land in the same partition stay local; cut
//! channels get a fresh endpoint token, the reader side listening at its
//! node's acceptor, the writer side connecting (§4.2's automatic
//! connection establishment, driven here by spec construction instead of
//! `writeReplace`/`readResolve` hooks). Connections between two remote
//! partitions are always direct — the deploying client never relays data,
//! which is the invariant Figure 15's redirect protocol exists to protect.
//!
//! The deploying client is itself a partition ([`CLIENT`]): processes
//! assigned to it run in a local network, and channel ends claimed with
//! [`GraphBuilder::claim_reader`]/[`claim_writer`] are handed back as raw
//! endpoints so the caller can feed and drain the distributed graph.
//!
//! [`claim_writer`]: GraphBuilder::claim_writer

use crate::acceptor::fresh_token;
use crate::control::ServerHandle;
use crate::node::Node;
use crate::spec::{ChannelSpec, GraphSpec, InputSpec, OutputSpec, ProcessSpec};
use kpn_core::{ChannelReader, ChannelWriter, Error, Network, Result, DEFAULT_CAPACITY};
use serde::Serialize;
use std::collections::HashMap;

/// Partition id of the deploying client.
pub const CLIENT: usize = usize::MAX;

/// Internal pseudo-partition for endpoints claimed by the caller. Distinct
/// from [`CLIENT`] so that a channel between a client-partition process and
/// a claimed endpoint still counts as a cut channel (the claimed end is a
/// raw endpoint outside the client's network).
const CLAIMED: usize = usize::MAX - 1;

/// Identifies a channel in a [`GraphBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChanId(usize);

#[derive(Debug)]
struct BuilderChannel {
    capacity: usize,
    producer: Option<Endpoint>,
    consumer: Option<Endpoint>,
}

#[derive(Debug, Clone, Copy)]
enum Endpoint {
    /// `(process index, port index)` — port order within the process.
    Process(usize),
    /// Claimed by the deploying client as a raw endpoint.
    Claimed,
}

#[derive(Debug)]
struct BuilderProcess {
    partition: usize,
    type_name: String,
    params: Vec<u8>,
    inputs: Vec<ChanId>,
    outputs: Vec<ChanId>,
}

/// Records a program graph plus its partition assignment.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    channels: Vec<BuilderChannel>,
    processes: Vec<BuilderProcess>,
    claimed_readers: Vec<ChanId>,
    claimed_writers: Vec<ChanId>,
}

/// A deployed distributed graph.
pub struct Deployment {
    /// The client-partition network (empty if no processes were assigned
    /// to [`CLIENT`]).
    pub client_network: Network,
    /// Endpoints claimed with [`GraphBuilder::claim_reader`].
    pub readers: HashMap<ChanId, ChannelReader>,
    /// Endpoints claimed with [`GraphBuilder::claim_writer`].
    pub writers: HashMap<ChanId, ChannelWriter>,
    /// Handles to the servers that received partitions.
    pub servers: Vec<ServerHandle>,
}

impl Deployment {
    /// Waits for the client partition and every server partition to
    /// terminate — observing the distributed termination cascade of §3.4.
    pub fn join(&self) -> Result<()> {
        self.client_network.join()?;
        for s in &self.servers {
            s.wait_idle()?;
        }
        Ok(())
    }
}

impl GraphBuilder {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a channel with the default capacity.
    pub fn channel(&mut self) -> ChanId {
        self.channel_with_capacity(DEFAULT_CAPACITY)
    }

    /// Adds a channel with an explicit capacity.
    pub fn channel_with_capacity(&mut self, capacity: usize) -> ChanId {
        self.channels.push(BuilderChannel {
            capacity,
            producer: None,
            consumer: None,
        });
        ChanId(self.channels.len() - 1)
    }

    /// Adds a process to `partition` ([`CLIENT`] or an index into the
    /// server list given to [`GraphBuilder::deploy`]). `inputs` and
    /// `outputs` are claimed in order; each channel has exactly one
    /// producer and one consumer (§1).
    pub fn add<P: Serialize>(
        &mut self,
        partition: usize,
        type_name: &str,
        params: &P,
        inputs: &[ChanId],
        outputs: &[ChanId],
    ) -> Result<()> {
        let index = self.processes.len();
        for &c in inputs {
            self.claim(c, Endpoint::Process(index), false)?;
        }
        for &c in outputs {
            self.claim(c, Endpoint::Process(index), true)?;
        }
        self.processes.push(BuilderProcess {
            partition,
            type_name: type_name.into(),
            params: kpn_codec::to_bytes(params).map_err(Error::from)?,
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
        });
        Ok(())
    }

    /// Marks a channel's read end as claimed by the client: `deploy`
    /// returns the raw [`ChannelReader`].
    pub fn claim_reader(&mut self, c: ChanId) -> Result<()> {
        self.claim(c, Endpoint::Claimed, false)?;
        self.claimed_readers.push(c);
        Ok(())
    }

    /// Marks a channel's write end as claimed by the client: `deploy`
    /// returns the raw [`ChannelWriter`].
    pub fn claim_writer(&mut self, c: ChanId) -> Result<()> {
        self.claim(c, Endpoint::Claimed, true)?;
        self.claimed_writers.push(c);
        Ok(())
    }

    fn claim(&mut self, c: ChanId, endpoint: Endpoint, producer: bool) -> Result<()> {
        let ch = self
            .channels
            .get_mut(c.0)
            .ok_or_else(|| Error::Graph(format!("unknown channel {c:?}")))?;
        let slot = if producer {
            &mut ch.producer
        } else {
            &mut ch.consumer
        };
        if slot.is_some() {
            return Err(Error::Graph(format!(
                "channel {c:?} already has a {}",
                if producer { "producer" } else { "consumer" }
            )));
        }
        *slot = Some(endpoint);
        Ok(())
    }

    fn partition_of(&self, e: Endpoint) -> usize {
        match e {
            Endpoint::Claimed => CLAIMED,
            Endpoint::Process(i) => self.processes[i].partition,
        }
    }

    /// Renders the graph as Graphviz DOT, clustered by partition —
    /// useful to inspect a deployment plan before shipping it.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph kpn {\n  rankdir=LR;\n  node [shape=box];\n");
        // Group processes by partition.
        let mut partitions: Vec<usize> = self.processes.iter().map(|p| p.partition).collect();
        partitions.sort_unstable();
        partitions.dedup();
        for part in partitions {
            let label = if part == CLIENT {
                "client".to_string()
            } else {
                format!("server {part}")
            };
            let _ = writeln!(out, "  subgraph \"cluster_{label}\" {{");
            let _ = writeln!(out, "    label=\"{label}\";");
            for (i, p) in self.processes.iter().enumerate() {
                if p.partition == part {
                    let _ = writeln!(out, "    p{i} [label=\"{}\"];", p.type_name);
                }
            }
            let _ = writeln!(out, "  }}");
        }
        for (ci, ch) in self.channels.iter().enumerate() {
            let node_of = |e: Option<Endpoint>, suffix: &str| match e {
                Some(Endpoint::Process(i)) => format!("p{i}"),
                Some(Endpoint::Claimed) => format!("claimed_{suffix}_{ci}"),
                None => format!("unconnected_{suffix}_{ci}"),
            };
            let from = node_of(ch.producer, "w");
            let to = node_of(ch.consumer, "r");
            if !from.starts_with('p') {
                let _ = writeln!(out, "  {from} [shape=plaintext, label=\"in\"];");
            }
            if !to.starts_with('p') {
                let _ = writeln!(out, "  {to} [shape=plaintext, label=\"out\"];");
            }
            let _ = writeln!(out, "  {from} -> {to} [label=\"c{ci}\"];");
        }
        out.push_str("}\n");
        out
    }

    /// Partitions the graph into one [`GraphSpec`] per partition *without*
    /// deploying — the static planning half of [`GraphBuilder::deploy`],
    /// for writing partition files, feeding `kpn_lint::check_specs`, or
    /// inspecting a cut before any server exists.
    ///
    /// `addr_of` names the acceptor address of each partition (used in
    /// `OutputSpec::Remote`). Cut channels get deterministic sequential
    /// endpoint tokens (deploy uses globally fresh tokens instead, so a
    /// plan written to disk is reproducible). Claimed endpoints are
    /// rejected: they reference a live client node, which a static plan
    /// does not have. Returns `(partition, spec)` pairs sorted by
    /// partition id.
    pub fn specs(&self, addr_of: impl Fn(usize) -> String) -> Result<Vec<(usize, GraphSpec)>> {
        if !self.claimed_readers.is_empty() || !self.claimed_writers.is_empty() {
            return Err(Error::Graph(
                "static partitioning cannot plan claimed endpoints; \
                 assign every channel end to a process"
                    .into(),
            ));
        }
        for (i, ch) in self.channels.iter().enumerate() {
            if ch.producer.is_none() || ch.consumer.is_none() {
                return Err(Error::Graph(format!("channel {i} is not fully connected")));
            }
        }

        // Placement mirrors `deploy`: same-partition channels stay local
        // (indexed per partition), cut channels get an endpoint token.
        enum Plan {
            Local { index: usize },
            Cut { reader_partition: usize, token: u64 },
        }
        let mut plans = Vec::with_capacity(self.channels.len());
        let mut local_counts: HashMap<usize, usize> = HashMap::new();
        let mut next_token = 1u64;
        for ch in &self.channels {
            let prod = self.partition_of(ch.producer.unwrap());
            let cons = self.partition_of(ch.consumer.unwrap());
            if prod == cons {
                let count = local_counts.entry(prod).or_insert(0);
                plans.push(Plan::Local { index: *count });
                *count += 1;
            } else {
                plans.push(Plan::Cut {
                    reader_partition: cons,
                    token: next_token,
                });
                next_token += 1;
            }
        }

        let mut specs: HashMap<usize, GraphSpec> = HashMap::new();
        for (ci, ch) in self.channels.iter().enumerate() {
            if let Plan::Local { .. } = plans[ci] {
                let partition = self.partition_of(ch.producer.unwrap());
                specs
                    .entry(partition)
                    .or_default()
                    .channels
                    .push(ChannelSpec {
                        capacity: ch.capacity,
                    });
            }
        }
        for p in &self.processes {
            let inputs = p
                .inputs
                .iter()
                .map(|c| match plans[c.0] {
                    Plan::Local { index } => InputSpec::Local(index),
                    Plan::Cut { token, .. } => InputSpec::Remote { token },
                })
                .collect();
            let outputs = p
                .outputs
                .iter()
                .map(|c| match &plans[c.0] {
                    Plan::Local { index } => OutputSpec::Local(*index),
                    Plan::Cut {
                        reader_partition,
                        token,
                    } => OutputSpec::Remote {
                        addr: addr_of(*reader_partition),
                        token: *token,
                    },
                })
                .collect();
            specs
                .entry(p.partition)
                .or_default()
                .processes
                .push(ProcessSpec {
                    type_name: p.type_name.clone(),
                    params: p.params.clone(),
                    inputs,
                    outputs,
                });
        }
        let mut out: Vec<(usize, GraphSpec)> = specs.into_iter().collect();
        out.sort_by_key(|(p, _)| *p);
        Ok(out)
    }

    /// Partitions the graph, ships each server its [`GraphSpec`], starts
    /// the client partition locally, and returns the claimed endpoints.
    ///
    /// `node` is the deploying client's node (its acceptor receives the
    /// data connections for claimed readers); `servers` are the remote
    /// compute servers, indexed by the partition ids used in
    /// [`GraphBuilder::add`].
    pub fn deploy(self, node: &Node, servers: &[ServerHandle]) -> Result<Deployment> {
        // Validate: every channel fully connected, partitions in range.
        for (i, ch) in self.channels.iter().enumerate() {
            if ch.producer.is_none() || ch.consumer.is_none() {
                return Err(Error::Graph(format!("channel {i} is not fully connected")));
            }
            if ch.capacity == 0 {
                return Err(Error::Graph(format!(
                    "channel {i} has zero capacity: a zero-capacity channel can \
                     never transfer data"
                )));
            }
        }
        for p in &self.processes {
            if p.partition != CLIENT && p.partition >= servers.len() {
                return Err(Error::Graph(format!(
                    "process {:?} assigned to unknown partition {}",
                    p.type_name, p.partition
                )));
            }
        }

        let addr_of = |partition: usize| -> String {
            if partition == CLIENT || partition == CLAIMED {
                node.addr().to_string()
            } else {
                servers[partition].addr().to_string()
            }
        };

        // Decide the fate of each channel.
        enum Placement {
            /// Internal to `partition`; local channel index there.
            Local { partition: usize, index: usize },
            /// Cut channel: reader at `reader_partition` listens on token.
            Cut { reader_partition: usize, token: u64 },
        }
        let mut placements = Vec::with_capacity(self.channels.len());
        let mut local_counts: HashMap<usize, usize> = HashMap::new();
        for ch in &self.channels {
            let prod = self.partition_of(ch.producer.unwrap());
            let cons = self.partition_of(ch.consumer.unwrap());
            if prod == cons {
                let count = local_counts.entry(prod).or_insert(0);
                placements.push(Placement::Local {
                    partition: prod,
                    index: *count,
                });
                *count += 1;
            } else {
                placements.push(Placement::Cut {
                    reader_partition: cons,
                    token: fresh_token(),
                });
            }
        }

        // Assemble one GraphSpec per partition (client included).
        let mut specs: HashMap<usize, GraphSpec> = HashMap::new();
        for (ci, ch) in self.channels.iter().enumerate() {
            if let Placement::Local { partition, .. } = placements[ci] {
                specs
                    .entry(partition)
                    .or_default()
                    .channels
                    .push(ChannelSpec {
                        capacity: ch.capacity,
                    });
            }
        }
        for p in &self.processes {
            let inputs = p
                .inputs
                .iter()
                .map(|c| match placements[c.0] {
                    Placement::Local { index, .. } => InputSpec::Local(index),
                    Placement::Cut { token, .. } => InputSpec::Remote { token },
                })
                .collect();
            let outputs = p
                .outputs
                .iter()
                .map(|c| match &placements[c.0] {
                    Placement::Local { index, .. } => OutputSpec::Local(*index),
                    Placement::Cut {
                        reader_partition,
                        token,
                    } => OutputSpec::Remote {
                        addr: addr_of(*reader_partition),
                        token: *token,
                    },
                })
                .collect();
            specs
                .entry(p.partition)
                .or_default()
                .processes
                .push(ProcessSpec {
                    type_name: p.type_name.clone(),
                    params: p.params.clone(),
                    inputs,
                    outputs,
                });
        }

        // Claimed endpoints: cut channels ending (or starting) at the
        // client that have no client-side process.
        let mut readers = HashMap::new();
        for &c in &self.claimed_readers {
            match &placements[c.0] {
                Placement::Cut { token, .. } => {
                    readers.insert(c, node.remote_reader(*token));
                }
                Placement::Local { .. } => {
                    return Err(Error::Graph(format!(
                        "claimed reader {c:?} pairs with a claimed writer; \
                         use a local kpn-core channel instead"
                    )));
                }
            }
        }
        let mut writers = HashMap::new();
        for &c in &self.claimed_writers {
            match &placements[c.0] {
                Placement::Cut {
                    reader_partition,
                    token,
                } => {
                    writers.insert(c, node.remote_writer(&addr_of(*reader_partition), *token)?);
                }
                Placement::Local { .. } => {
                    return Err(Error::Graph(format!(
                        "claimed writer {c:?} pairs with a claimed reader; \
                         use a local kpn-core channel instead"
                    )));
                }
            }
        }

        // Ship server partitions (order does not matter: connections for
        // not-yet-registered endpoints are parked at the acceptors).
        let mut used_servers = Vec::new();
        for (partition, spec) in specs.iter() {
            if *partition == CLIENT {
                continue;
            }
            servers[*partition].run_graph(spec.clone())?;
            used_servers.push(servers[*partition].clone());
        }

        // Start the client partition.
        let client_spec = specs.remove(&CLIENT).unwrap_or_default();
        let client_network = node.instantiate(client_spec)?;

        Ok(Deployment {
            client_network,
            readers,
            writers,
            servers: used_servers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpn_core::{DataReader, DataWriter};

    fn spawn_server() -> (std::sync::Arc<Node>, ServerHandle) {
        let node = Node::serve("127.0.0.1:0").unwrap();
        let handle = ServerHandle::new(node.addr().to_string());
        (node, handle)
    }

    #[test]
    fn single_server_pipeline() {
        let client = Node::serve("127.0.0.1:0").unwrap();
        let (_server, handle) = spawn_server();
        let mut b = GraphBuilder::new();
        let a = b.channel();
        let out = b.channel();
        b.add(0, "Sequence", &(1i64, Some(4u64)), &[], &[a])
            .unwrap();
        b.add(0, "Scale", &100i64, &[a], &[out]).unwrap();
        b.claim_reader(out).unwrap();
        let mut dep = b.deploy(&client, &[handle]).unwrap();
        let mut r = DataReader::new(dep.readers.remove(&out).unwrap());
        for expect in [100, 200, 300, 400] {
            assert_eq!(r.read_i64().unwrap(), expect);
        }
        assert!(r.read_i64().is_err());
        drop(r);
        dep.join().unwrap();
    }

    #[test]
    fn two_servers_talk_directly() {
        // Producer on server 0, consumer pipeline on server 1, result to
        // the client: exercises server↔server and server↔client cuts.
        let client = Node::serve("127.0.0.1:0").unwrap();
        let (_s0, h0) = spawn_server();
        let (_s1, h1) = spawn_server();
        let mut b = GraphBuilder::new();
        let a = b.channel();
        let c = b.channel();
        b.add(0, "Sequence", &(0i64, Some(10u64)), &[], &[a])
            .unwrap();
        b.add(1, "Scale", &7i64, &[a], &[c]).unwrap();
        b.claim_reader(c).unwrap();
        let mut dep = b.deploy(&client, &[h0, h1]).unwrap();
        let mut r = DataReader::new(dep.readers.remove(&c).unwrap());
        for i in 0..10 {
            assert_eq!(r.read_i64().unwrap(), i * 7);
        }
        assert!(r.read_i64().is_err());
        drop(r);
        dep.join().unwrap();
    }

    #[test]
    fn client_writer_feeds_remote_graph() {
        let client = Node::serve("127.0.0.1:0").unwrap();
        let (_s0, h0) = spawn_server();
        let mut b = GraphBuilder::new();
        let input = b.channel();
        let output = b.channel();
        b.add(0, "Scale", &-1i64, &[input], &[output]).unwrap();
        b.claim_writer(input).unwrap();
        b.claim_reader(output).unwrap();
        let mut dep = b.deploy(&client, &[h0]).unwrap();
        let mut w = DataWriter::new(dep.writers.remove(&input).unwrap());
        let mut r = DataReader::new(dep.readers.remove(&output).unwrap());
        for i in 0..5 {
            w.write_i64(i).unwrap();
        }
        drop(w);
        for i in 0..5 {
            assert_eq!(r.read_i64().unwrap(), -i);
        }
        assert!(r.read_i64().is_err());
        drop(r);
        dep.join().unwrap();
    }

    #[test]
    fn client_partition_processes_run_locally() {
        let client = Node::serve("127.0.0.1:0").unwrap();
        let (_s0, h0) = spawn_server();
        let mut b = GraphBuilder::new();
        let a = b.channel();
        let c = b.channel();
        // Producer runs ON THE CLIENT, worker remotely.
        b.add(CLIENT, "Sequence", &(5i64, Some(3u64)), &[], &[a])
            .unwrap();
        b.add(0, "Scale", &2i64, &[a], &[c]).unwrap();
        b.claim_reader(c).unwrap();
        let mut dep = b.deploy(&client, &[h0]).unwrap();
        let mut r = DataReader::new(dep.readers.remove(&c).unwrap());
        for expect in [10, 12, 14] {
            assert_eq!(r.read_i64().unwrap(), expect);
        }
        drop(r);
        dep.join().unwrap();
    }

    #[test]
    fn half_connected_channel_is_rejected() {
        let client = Node::serve("127.0.0.1:0").unwrap();
        let mut b = GraphBuilder::new();
        let a = b.channel();
        b.add(CLIENT, "Sequence", &(0i64, Some(1u64)), &[], &[a])
            .unwrap();
        let err = match b.deploy(&client, &[]) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected error"),
        };
        assert!(err.contains("not fully connected"));
    }

    #[test]
    fn double_producer_is_rejected_at_build() {
        let mut b = GraphBuilder::new();
        let a = b.channel();
        b.add(0, "Sequence", &(0i64, Some(1u64)), &[], &[a])
            .unwrap();
        let err = b
            .add(0, "Sequence", &(0i64, Some(1u64)), &[], &[a])
            .unwrap_err();
        assert!(err.to_string().contains("already has a producer"));
    }

    #[test]
    fn unknown_partition_is_rejected() {
        let client = Node::serve("127.0.0.1:0").unwrap();
        let mut b = GraphBuilder::new();
        let a = b.channel();
        b.add(3, "Sequence", &(0i64, Some(1u64)), &[], &[a])
            .unwrap();
        b.claim_reader(a).unwrap();
        let err = match b.deploy(&client, &[]) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected error"),
        };
        assert!(err.contains("unknown partition"));
    }

    #[test]
    fn dot_export_shows_partitions_and_edges() {
        let mut b = GraphBuilder::new();
        let a = b.channel();
        let c = b.channel();
        b.add(0, "Sequence", &(0i64, Some(4u64)), &[], &[a])
            .unwrap();
        b.add(1, "Scale", &2i64, &[a], &[c]).unwrap();
        b.claim_reader(c).unwrap();
        let dot = b.to_dot();
        assert!(dot.contains("cluster_server 0"), "{dot}");
        assert!(dot.contains("cluster_server 1"), "{dot}");
        assert!(dot.contains("p0 -> p1"), "{dot}");
        assert!(dot.contains("Sequence"), "{dot}");
        assert!(dot.contains("Scale"), "{dot}");
        // Claimed reader shows as an exit port.
        assert!(dot.contains("claimed_r_1"), "{dot}");
    }
}
