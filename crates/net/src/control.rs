//! The compute-server control protocol — the RMI surface of §4.1.
//!
//! The Java implementation exposes `Server.run(Runnable)` (fire and
//! forget) and `Server.run(Task)` (wait for the result). Ours exposes the
//! equivalent over a framed codec session: `RunGraph` ships a partition
//! and returns immediately once it is running; `RunTask` executes a
//! registered task to completion and returns its encoded result; `WaitIdle`
//! blocks until every shipped partition has terminated (used by deployers
//! to observe the distributed termination cascade).

use kpn_core::{Error, Result};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::TcpStream;

use crate::probe::NetworkStatus;
use crate::spec::GraphSpec;

/// Requests a client can send on a control session.
#[derive(Serialize, Deserialize, Debug)]
pub enum ControlRequest {
    /// Liveness check.
    Ping,
    /// Instantiate and start a graph partition (`run(Runnable)`).
    RunGraph(GraphSpec),
    /// Execute a registered task and return its result (`run(Task)`).
    RunTask {
        /// Task-registry key.
        type_name: String,
        /// Encoded task parameters.
        params: Vec<u8>,
    },
    /// Ship a whole graph and let the receiving server decompose and
    /// redistribute it across the named helper servers (§4: "that server
    /// could decompose it and redistribute some or all of the component
    /// Process objects to other available servers").
    RunGraphRedistributed {
        /// The whole (unpartitioned) graph.
        spec: GraphSpec,
        /// Control addresses of helper servers.
        helpers: Vec<String>,
    },
    /// Block until all graphs shipped to this server have terminated.
    WaitIdle,
    /// Report the monitor snapshot of every network on this node (§6.2
    /// distributed deadlock detection).
    MonitorStatus,
    /// Abort every network on this node (distributed deadlock resolution).
    AbortNetworks,
    /// Stop accepting work and shut the node down.
    Shutdown,
}

/// Responses from the server.
#[derive(Serialize, Deserialize, Debug)]
pub enum ControlResponse {
    /// Ping reply.
    Pong,
    /// Request succeeded.
    Ok,
    /// Task result payload.
    TaskResult(Vec<u8>),
    /// Monitor snapshots, one per network.
    MonitorStatus(Vec<NetworkStatus>),
    /// Request failed.
    Err(String),
}

/// Writes one length-prefixed codec message.
pub(crate) fn send_msg<T: Serialize, W: Write>(stream: &mut W, msg: &T) -> Result<()> {
    let bytes = kpn_codec::to_bytes(msg).map_err(Error::from)?;
    stream.write_all(&(bytes.len() as u32).to_be_bytes())?;
    stream.write_all(&bytes)?;
    stream.flush()?;
    Ok(())
}

/// Reads one length-prefixed codec message. The payload is read in
/// chunks so a corrupt or hostile length prefix fails on EOF instead of
/// forcing a giant upfront allocation.
pub(crate) fn recv_msg<T: DeserializeOwned, R: Read>(stream: &mut R) -> Result<T> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    let mut bytes = Vec::new();
    let mut remaining = len;
    let mut chunk = [0u8; 4096];
    while remaining > 0 {
        let n = remaining.min(chunk.len());
        stream.read_exact(&mut chunk[..n])?;
        bytes.extend_from_slice(&chunk[..n]);
        remaining -= n;
    }
    kpn_codec::from_bytes(&bytes).map_err(Error::from)
}

/// A client handle to one compute server (per-request connections, like
/// RMI stubs).
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: String,
}

impl ServerHandle {
    /// A handle to the server at `addr` (no connection is made yet).
    pub fn new(addr: impl Into<String>) -> Self {
        ServerHandle { addr: addr.into() }
    }

    /// The server's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn call(&self, request: &ControlRequest) -> Result<ControlResponse> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| Error::Disconnected(format!("control connect {}: {e}", self.addr)))?;
        stream.set_nodelay(true)?;
        stream.write_all(&[crate::frame::CONN_CONTROL])?;
        send_msg(&mut stream, request)?;
        recv_msg(&mut stream)
    }

    /// Liveness check.
    pub fn ping(&self) -> Result<()> {
        match self.call(&ControlRequest::Ping)? {
            ControlResponse::Pong => Ok(()),
            other => Err(Error::Graph(format!("unexpected ping reply {other:?}"))),
        }
    }

    /// Ships a partition; returns once the server has it running.
    pub fn run_graph(&self, spec: GraphSpec) -> Result<()> {
        match self.call(&ControlRequest::RunGraph(spec))? {
            ControlResponse::Ok => Ok(()),
            ControlResponse::Err(e) => Err(Error::Graph(e)),
            other => Err(Error::Graph(format!("unexpected reply {other:?}"))),
        }
    }

    /// Runs a registered task to completion, returning its decoded result
    /// (the blocking `Server.run(Task)` of §4.1).
    pub fn run_task<P: Serialize, R: DeserializeOwned>(
        &self,
        type_name: &str,
        params: &P,
    ) -> Result<R> {
        let params = kpn_codec::to_bytes(params).map_err(Error::from)?;
        match self.call(&ControlRequest::RunTask {
            type_name: type_name.into(),
            params,
        })? {
            ControlResponse::TaskResult(bytes) => {
                kpn_codec::from_bytes(&bytes).map_err(Error::from)
            }
            ControlResponse::Err(e) => Err(Error::Graph(e)),
            other => Err(Error::Graph(format!("unexpected reply {other:?}"))),
        }
    }

    /// Ships a whole graph for the server to decompose and redistribute
    /// across `helpers` (§4).
    pub fn run_graph_redistributed(&self, spec: GraphSpec, helpers: &[&str]) -> Result<()> {
        match self.call(&ControlRequest::RunGraphRedistributed {
            spec,
            helpers: helpers.iter().map(|s| s.to_string()).collect(),
        })? {
            ControlResponse::Ok => Ok(()),
            ControlResponse::Err(e) => Err(Error::Graph(e)),
            other => Err(Error::Graph(format!("unexpected reply {other:?}"))),
        }
    }

    /// Blocks until every partition shipped to this server has terminated.
    pub fn wait_idle(&self) -> Result<()> {
        match self.call(&ControlRequest::WaitIdle)? {
            ControlResponse::Ok => Ok(()),
            ControlResponse::Err(e) => Err(Error::Graph(e)),
            other => Err(Error::Graph(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the monitor snapshots of every network on the server.
    pub fn monitor_status(&self) -> Result<Vec<NetworkStatus>> {
        match self.call(&ControlRequest::MonitorStatus)? {
            ControlResponse::MonitorStatus(v) => Ok(v),
            other => Err(Error::Graph(format!("unexpected reply {other:?}"))),
        }
    }

    /// Aborts every network on the server (deadlock resolution).
    pub fn abort_networks(&self) -> Result<()> {
        match self.call(&ControlRequest::AbortNetworks)? {
            ControlResponse::Ok => Ok(()),
            other => Err(Error::Graph(format!("unexpected reply {other:?}"))),
        }
    }

    /// Asks the node to shut down.
    pub fn shutdown(&self) -> Result<()> {
        match self.call(&ControlRequest::Shutdown)? {
            ControlResponse::Ok => Ok(()),
            other => Err(Error::Graph(format!("unexpected reply {other:?}"))),
        }
    }
}
