//! The process registry: reconstructs processes from their serialized
//! descriptions on the receiving server.
//!
//! This substitutes for Java's ability to download class definitions
//! (§4.1): every node agrees on a set of named process types; a
//! [`crate::ProcessSpec`] names one and carries its constructor
//! parameters. The standard library of `kpn-core` is pre-registered by
//! [`ProcessRegistry::with_defaults`]; applications register their own
//! types (e.g. the generic Worker of `kpn-parallel`) the same way.

use kpn_core::stdlib::{
    Add, Average, Cons, Constant, ConstantF64, Discard, Divide, Duplicate, Equal, Guard, Identity,
    ModRouter, Modulo, OrderedMerge, Print, Scale, Sequence, Sift,
};
use kpn_core::{ChannelReader, ChannelWriter, Error, Iterative, IterativeProcess, Process, Result};
use serde::de::DeserializeOwned;
use std::collections::HashMap;

/// Builds a process from decoded parameters and its channel endpoints.
pub type Factory = Box<
    dyn Fn(&[u8], Vec<ChannelReader>, Vec<ChannelWriter>) -> Result<Box<dyn Process>> + Send + Sync,
>;

/// Maps process type names to factories.
pub struct ProcessRegistry {
    factories: HashMap<String, Factory>,
}

/// Decodes factory parameters with a codec error message that names the
/// offending process type.
pub fn decode_params<T: DeserializeOwned>(type_name: &str, params: &[u8]) -> Result<T> {
    kpn_codec::from_bytes(params)
        .map_err(|e| Error::Graph(format!("bad params for {type_name}: {e}")))
}

fn arity(
    type_name: &str,
    ins: &mut [ChannelReader],
    outs: &mut [ChannelWriter],
    expect_in: usize,
    expect_out: usize,
) -> Result<()> {
    if ins.len() != expect_in || outs.len() != expect_out {
        return Err(Error::Graph(format!(
            "{type_name} expects {expect_in} inputs / {expect_out} outputs, got {} / {}",
            ins.len(),
            outs.len()
        )));
    }
    Ok(())
}

impl ProcessRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProcessRegistry {
            factories: HashMap::new(),
        }
    }

    /// A registry with the whole `kpn-core` standard library registered.
    pub fn with_defaults() -> Self {
        let mut reg = Self::new();
        reg.register_defaults();
        reg
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register(&mut self, name: impl Into<String>, factory: Factory) {
        self.factories.insert(name.into(), factory);
    }

    /// Registers an [`Iterative`]-producing closure under `name`.
    pub fn register_iterative<F, T>(&mut self, name: impl Into<String>, f: F)
    where
        T: Iterative,
        F: Fn(&[u8], Vec<ChannelReader>, Vec<ChannelWriter>) -> Result<T> + Send + Sync + 'static,
    {
        self.register(
            name,
            Box::new(move |params, ins, outs| {
                Ok(Box::new(IterativeProcess::new(f(params, ins, outs)?)))
            }),
        );
    }

    /// True when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Registered type names (sorted), for diagnostics.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.factories.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Instantiates a process from its serialized description.
    pub fn build(
        &self,
        type_name: &str,
        params: &[u8],
        inputs: Vec<ChannelReader>,
        outputs: Vec<ChannelWriter>,
    ) -> Result<Box<dyn Process>> {
        let factory = self.factories.get(type_name).ok_or_else(|| {
            Error::Graph(format!(
                "unknown process type {type_name:?}; registered: {:?}",
                self.names()
            ))
        })?;
        factory(params, inputs, outputs)
    }

    fn register_defaults(&mut self) {
        self.register_iterative("Constant", |params, mut ins, mut outs| {
            arity("Constant", &mut ins, &mut outs, 0, 1)?;
            let (value, limit): (i64, Option<u64>) = decode_params("Constant", params)?;
            let c = Constant::new(value, outs.remove(0));
            Ok(match limit {
                Some(n) => c.with_limit(n),
                None => c,
            })
        });
        self.register_iterative("ConstantF64", |params, mut ins, mut outs| {
            arity("ConstantF64", &mut ins, &mut outs, 0, 1)?;
            let (value, limit): (f64, Option<u64>) = decode_params("ConstantF64", params)?;
            let c = ConstantF64::new(value, outs.remove(0));
            Ok(match limit {
                Some(n) => c.with_limit(n),
                None => c,
            })
        });
        self.register_iterative("Sequence", |params, mut ins, mut outs| {
            arity("Sequence", &mut ins, &mut outs, 0, 1)?;
            let (start, count): (i64, Option<u64>) = decode_params("Sequence", params)?;
            Ok(match count {
                Some(n) => Sequence::new(start, n, outs.remove(0)),
                None => Sequence::unbounded(start, outs.remove(0)),
            })
        });
        self.register_iterative("Cons", |params, mut ins, mut outs| {
            arity("Cons", &mut ins, &mut outs, 2, 1)?;
            let self_removing: bool = decode_params("Cons", params)?;
            let rest = ins.remove(1);
            let first = ins.remove(0);
            let c = Cons::new(first, rest, outs.remove(0));
            Ok(if self_removing { c.removing_self() } else { c })
        });
        self.register_iterative("Duplicate", |_params, mut ins, outs| {
            if ins.len() != 1 || outs.is_empty() {
                return Err(Error::Graph("Duplicate expects 1 input, ≥1 output".into()));
            }
            Ok(Duplicate::new(ins.remove(0), outs))
        });
        self.register_iterative("Identity", |_params, mut ins, mut outs| {
            arity("Identity", &mut ins, &mut outs, 1, 1)?;
            Ok(Identity::new(ins.remove(0), outs.remove(0)))
        });
        self.register_iterative("Add", |_params, mut ins, mut outs| {
            arity("Add", &mut ins, &mut outs, 2, 1)?;
            let b = ins.remove(1);
            Ok(Add::new(ins.remove(0), b, outs.remove(0)))
        });
        self.register_iterative("Scale", |params, mut ins, mut outs| {
            arity("Scale", &mut ins, &mut outs, 1, 1)?;
            let factor: i64 = decode_params("Scale", params)?;
            Ok(Scale::new(factor, ins.remove(0), outs.remove(0)))
        });
        self.register_iterative("Divide", |_params, mut ins, mut outs| {
            arity("Divide", &mut ins, &mut outs, 2, 1)?;
            let den = ins.remove(1);
            Ok(Divide::new(ins.remove(0), den, outs.remove(0)))
        });
        self.register_iterative("Average", |_params, mut ins, mut outs| {
            arity("Average", &mut ins, &mut outs, 2, 1)?;
            let b = ins.remove(1);
            Ok(Average::new(ins.remove(0), b, outs.remove(0)))
        });
        self.register_iterative("Equal", |_params, mut ins, mut outs| {
            arity("Equal", &mut ins, &mut outs, 2, 1)?;
            let b = ins.remove(1);
            Ok(Equal::new(ins.remove(0), b, outs.remove(0)))
        });
        self.register_iterative("Guard", |params, mut ins, mut outs| {
            arity("Guard", &mut ins, &mut outs, 2, 1)?;
            let stop_after_first: bool = decode_params("Guard", params)?;
            let ctrl = ins.remove(1);
            let g = Guard::new(ins.remove(0), ctrl, outs.remove(0));
            Ok(if stop_after_first {
                g.stopping_after_first()
            } else {
                g
            })
        });
        self.register_iterative("Modulo", |params, mut ins, mut outs| {
            arity("Modulo", &mut ins, &mut outs, 1, 1)?;
            let divisor: i64 = decode_params("Modulo", params)?;
            Ok(Modulo::new(divisor, ins.remove(0), outs.remove(0)))
        });
        self.register_iterative("Sift", |_params, mut ins, mut outs| {
            arity("Sift", &mut ins, &mut outs, 1, 1)?;
            Ok(Sift::new(ins.remove(0), outs.remove(0)))
        });
        self.register_iterative("ModRouter", |params, mut ins, mut outs| {
            arity("ModRouter", &mut ins, &mut outs, 1, 2)?;
            let divisor: i64 = decode_params("ModRouter", params)?;
            let others = outs.remove(1);
            Ok(ModRouter::new(
                divisor,
                ins.remove(0),
                outs.remove(0),
                others,
            ))
        });
        self.register_iterative("OrderedMerge", |params, ins, mut outs| {
            if ins.len() < 2 || outs.len() != 1 {
                return Err(Error::Graph(
                    "OrderedMerge expects ≥2 inputs, 1 output".into(),
                ));
            }
            let dedup: bool = decode_params("OrderedMerge", params)?;
            let m = OrderedMerge::new(ins, outs.remove(0));
            Ok(if dedup { m } else { m.keeping_duplicates() })
        });
        self.register_iterative("Print", |params, mut ins, mut outs| {
            arity("Print", &mut ins, &mut outs, 1, 0)?;
            let (limit, label): (Option<u64>, String) = decode_params("Print", params)?;
            let mut p = Print::new(ins.remove(0)).with_label(label);
            if let Some(n) = limit {
                p = p.with_limit(n);
            }
            Ok(p)
        });
        self.register_iterative("Discard", |_params, mut ins, mut outs| {
            arity("Discard", &mut ins, &mut outs, 1, 0)?;
            Ok(Discard::new(ins.remove(0)))
        });
    }
}

impl Default for ProcessRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl std::fmt::Debug for ProcessRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProcessRegistry({} types)", self.factories.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpn_core::{channel, DataReader, Network};

    #[test]
    fn defaults_are_registered() {
        let reg = ProcessRegistry::with_defaults();
        for name in [
            "Constant",
            "Sequence",
            "Cons",
            "Duplicate",
            "Add",
            "Scale",
            "Print",
            "Sift",
            "Modulo",
            "OrderedMerge",
            "Guard",
            "Discard",
        ] {
            assert!(reg.contains(name), "{name} missing");
        }
    }

    #[test]
    fn unknown_type_is_reported() {
        let reg = ProcessRegistry::with_defaults();
        let err = match reg.build("Bogus", &[], vec![], vec![]) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected error"),
        };
        assert!(err.contains("Bogus"));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let reg = ProcessRegistry::with_defaults();
        let err = match reg.build("Add", &[], vec![], vec![]) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected error"),
        };
        assert!(err.contains("Add expects 2"));
    }

    #[test]
    fn bad_params_are_reported() {
        let reg = ProcessRegistry::with_defaults();
        let (w, _r) = channel();
        let err = match reg.build("Scale", &[1, 2], vec![], vec![w]) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected error"),
        };
        // Scale needs 1 input too — but params are decoded after arity,
        // so craft the right arity with bad params:
        assert!(err.contains("Scale"));
        let (w, _r) = channel();
        let (_w2, r2) = channel();
        let err = match reg.build("Scale", &[1, 2], vec![r2], vec![w]) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected error"),
        };
        assert!(err.contains("bad params"));
    }

    #[test]
    fn built_process_runs() {
        let reg = ProcessRegistry::with_defaults();
        let net = Network::new();
        let (w, r) = net.channel();
        let params = kpn_codec::to_bytes(&(5i64, Some(3u64))).unwrap();
        let p = reg.build("Constant", &params, vec![], vec![w]).unwrap();
        net.add_process(p);
        net.start();
        let mut dr = DataReader::new(r);
        assert_eq!(dr.read_i64().unwrap(), 5);
        assert_eq!(dr.read_i64().unwrap(), 5);
        assert_eq!(dr.read_i64().unwrap(), 5);
        assert!(dr.read_i64().is_err());
        drop(dr);
        net.join().unwrap();
    }

    #[test]
    fn custom_registration_overrides() {
        let mut reg = ProcessRegistry::with_defaults();
        reg.register_iterative("Custom", |_p, _i, mut o| {
            arity("Custom", &mut [], &mut o, 0, 1)?;
            Ok(Constant::new(9, o.remove(0)).with_limit(1))
        });
        assert!(reg.contains("Custom"));
        assert!(reg.names().contains(&"Custom"));
    }
}
