//! Deterministic chaos harness: paper graphs under seeded fault schedules.
//!
//! Kahn process networks have a built-in test oracle: the history of every
//! channel is **determined by the graph alone**, independent of scheduling,
//! buffering, or — with the reconnection protocol of `remote.rs` — link
//! failures. This module turns that property into a harness:
//!
//! 1. [`ChaosCluster::with_faults`] stands up a client and `n` compute
//!    servers whose transports all run through a [`FaultyFactory`] driven
//!    by one seeded [`FaultPlan`], with a [`ReconnectPolicy`] tuned for
//!    tests (fast backoff, short op timeout);
//! 2. the graph runners ([`sieve_history`], [`hamming_history`],
//!    [`relay_history`]) deploy the paper's example networks across the
//!    cluster and collect the observable output channel's history;
//! 3. [`check_determinacy`] runs the same graph on a fault-free cluster
//!    and under each seed's fault schedule, and fails unless every run
//!    produces a **bit-identical** history.
//!
//! Faults are injected on both ends of every data connection (the
//! connect-side factory wraps outbound transports, the acceptor's profile
//! wraps accepted ones), while control sessions stay on plain TCP — chaos
//! is scoped to the data plane the reconnection protocol protects.
//!
//! Profiles are installed per node address in a process-global table (see
//! [`install_profile`]); [`ChaosGuard`] scopes those installations so a
//! panicking test cannot leak a fault profile into unrelated tests running
//! in the same process.

use crate::builder::GraphBuilder;
use crate::control::ServerHandle;
use crate::node::{Node, TaskRegistry};
use crate::registry::ProcessRegistry;
use crate::transport::{
    install_profile, remove_profile, ChaosClock, FaultPlan, FaultProfile, FaultyFactory,
    NetProfile, ReconnectPolicy,
};
use kpn_core::{DataReader, DataWriter, Error, Result};
use std::sync::Arc;
use std::time::Duration;

/// A reconnect policy tuned for chaos tests: recovery semantics identical
/// to [`ReconnectPolicy::resilient`], but with millisecond-scale backoff
/// (so injected resets heal quickly), a generous overall budget (fault
/// schedules are bounded, so every episode eventually succeeds), and an
/// operation timeout that turns long stalls into detectable faults.
pub fn chaos_policy() -> ReconnectPolicy {
    ReconnectPolicy {
        initial_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        budget: Duration::from_secs(20),
        op_timeout: Some(Duration::from_millis(250)),
        ..ReconnectPolicy::resilient()
    }
}

/// Installs a fault-injecting [`NetProfile`] for a set of node addresses
/// and removes those installations on drop.
///
/// All covered addresses share one seeded [`FaultPlan`], so the whole
/// cluster draws faults from a single deterministic schedule and
/// [`ChaosGuard::injected`] reports cluster-wide fault counts.
pub struct ChaosGuard {
    plan: Arc<FaultPlan>,
    policy: ReconnectPolicy,
    addrs: Vec<String>,
}

impl ChaosGuard {
    /// A guard whose covered addresses inject faults per `profile`,
    /// deterministically derived from `seed`, with endpoints recovering
    /// under `policy`.
    pub fn new(seed: u64, profile: FaultProfile, policy: ReconnectPolicy) -> Self {
        ChaosGuard::with_clock(seed, profile, policy, ChaosClock::Wall)
    }

    /// Like [`ChaosGuard::new`], but stalls pass time on `clock` — the
    /// sim-clock mode. With [`ChaosClock::virtual_clock`], stall durations
    /// accumulate on a counter instead of blocking threads, so the fault
    /// schedule stays deterministic in op counts *and* costs no wall time,
    /// composing with `kpn_core::sim` interleaving schedules.
    pub fn with_clock(
        seed: u64,
        profile: FaultProfile,
        policy: ReconnectPolicy,
        clock: ChaosClock,
    ) -> Self {
        ChaosGuard {
            plan: FaultPlan::with_clock(seed, profile, clock),
            policy,
            addrs: Vec::new(),
        }
    }

    /// The shared fault schedule.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// Total faults injected so far across all covered addresses.
    pub fn injected(&self) -> u64 {
        self.plan.injected()
    }

    /// The profile this guard installs: a [`FaultyFactory`] over the
    /// shared plan plus the guard's reconnect policy. Also the right
    /// profile to pass to [`Node::serve_with_profile`] so the accept side
    /// of each covered node injects faults too.
    pub fn net_profile(&self) -> NetProfile {
        NetProfile {
            factory: Arc::new(FaultyFactory::new(self.plan.clone())),
            policy: self.policy.clone(),
        }
    }

    /// Installs the guard's profile for outbound connections to `addr`
    /// (see [`install_profile`]); undone when the guard drops.
    pub fn cover(&mut self, addr: impl Into<String>) {
        let addr = addr.into();
        install_profile(addr.clone(), self.net_profile());
        self.addrs.push(addr);
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        for addr in &self.addrs {
            remove_profile(addr);
        }
    }
}

impl std::fmt::Debug for ChaosGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosGuard")
            .field("addrs", &self.addrs)
            .field("injected", &self.injected())
            .finish()
    }
}

/// A client node plus `n` compute servers, optionally with every data
/// link running under a seeded fault schedule.
pub struct ChaosCluster {
    client: Arc<Node>,
    /// Keep the server nodes alive for the cluster's lifetime.
    _servers: Vec<Arc<Node>>,
    handles: Vec<ServerHandle>,
    guard: Option<ChaosGuard>,
}

impl ChaosCluster {
    /// A fault-free cluster (plain TCP, fail-fast semantics): the
    /// baseline side of the determinacy oracle.
    pub fn plain(servers: usize) -> Result<Self> {
        Self::plain_with(servers, &ProcessRegistry::with_defaults)
    }

    /// [`ChaosCluster::plain`] with every node (client included) built
    /// from a caller-supplied [`ProcessRegistry`] — required when the
    /// deployed graph ships non-stock processes (e.g. `kpn.Worker`, whose
    /// registration closes over an application task registry).
    pub fn plain_with(
        servers: usize,
        mk_registry: &dyn Fn() -> ProcessRegistry,
    ) -> Result<Self> {
        let client = Node::serve_with("127.0.0.1:0", mk_registry(), TaskRegistry::new())?;
        let mut nodes = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..servers {
            let node = Node::serve_with("127.0.0.1:0", mk_registry(), TaskRegistry::new())?;
            handles.push(ServerHandle::new(node.addr().to_string()));
            nodes.push(node);
        }
        Ok(ChaosCluster {
            client,
            _servers: nodes,
            handles,
            guard: None,
        })
    }

    /// A cluster whose every node (client included) both accepts and
    /// initiates data connections through a [`FaultyFactory`] seeded from
    /// `seed`, recovering under `policy`.
    pub fn with_faults(
        servers: usize,
        seed: u64,
        profile: FaultProfile,
        policy: ReconnectPolicy,
    ) -> Result<Self> {
        Self::with_faults_on_clock(servers, seed, profile, policy, ChaosClock::Wall)
    }

    /// Like [`ChaosCluster::with_faults`], but stalls pass time on `clock`
    /// (see [`ChaosGuard::with_clock`]). Pass a clone of a
    /// [`ChaosClock::virtual_clock`] to keep a handle for reading elapsed
    /// virtual time.
    pub fn with_faults_on_clock(
        servers: usize,
        seed: u64,
        profile: FaultProfile,
        policy: ReconnectPolicy,
        clock: ChaosClock,
    ) -> Result<Self> {
        Self::with_faults_full(
            servers,
            seed,
            profile,
            policy,
            clock,
            &ProcessRegistry::with_defaults,
        )
    }

    /// [`ChaosCluster::with_faults`] with a caller-supplied
    /// [`ProcessRegistry`] per node — the faulted counterpart of
    /// [`ChaosCluster::plain_with`].
    pub fn with_faults_with(
        servers: usize,
        seed: u64,
        profile: FaultProfile,
        policy: ReconnectPolicy,
        mk_registry: &dyn Fn() -> ProcessRegistry,
    ) -> Result<Self> {
        Self::with_faults_full(servers, seed, profile, policy, ChaosClock::Wall, mk_registry)
    }

    /// The fully general constructor: custom registries and stall clock.
    pub fn with_faults_full(
        servers: usize,
        seed: u64,
        profile: FaultProfile,
        policy: ReconnectPolicy,
        clock: ChaosClock,
        mk_registry: &dyn Fn() -> ProcessRegistry,
    ) -> Result<Self> {
        let mut guard = ChaosGuard::with_clock(seed, profile, policy, clock);
        let client = Node::serve_full(
            "127.0.0.1:0",
            mk_registry(),
            TaskRegistry::new(),
            guard.net_profile(),
        )?;
        guard.cover(client.addr().to_string());
        let mut nodes = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..servers {
            let node = Node::serve_full(
                "127.0.0.1:0",
                mk_registry(),
                TaskRegistry::new(),
                guard.net_profile(),
            )?;
            guard.cover(node.addr().to_string());
            handles.push(ServerHandle::new(node.addr().to_string()));
            nodes.push(node);
        }
        Ok(ChaosCluster {
            client,
            _servers: nodes,
            handles,
            guard: Some(guard),
        })
    }

    /// The deploying client node.
    pub fn client(&self) -> &Arc<Node> {
        &self.client
    }

    /// Control handles for the compute servers, in partition order.
    pub fn handles(&self) -> &[ServerHandle] {
        &self.handles
    }

    /// Faults injected so far (0 on a plain cluster).
    pub fn injected(&self) -> u64 {
        self.guard.as_ref().map_or(0, ChaosGuard::injected)
    }
}

impl std::fmt::Debug for ChaosCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosCluster")
            .field("servers", &self.handles.len())
            .field("faulty", &self.guard.is_some())
            .finish()
    }
}

/// Reads the stream to its regular end (writer `Close`), failing on any
/// other error — a truncated-by-fault history must fail loudly, not
/// silently shorten the comparison.
fn drain(mut r: DataReader) -> Result<Vec<i64>> {
    let mut out = Vec::new();
    loop {
        match r.read_i64() {
            Ok(v) => out.push(v),
            Err(Error::Eof) => return Ok(out),
            Err(e) => return Err(e),
        }
    }
}

/// The Sieve of Eratosthenes (§3.3, Figures 7/8) producing all primes
/// below `below`: candidates generated on partition 0, the self-modifying
/// `Sift` head (which grows a `Modulo` chain inside its server's local
/// network) on partition 1, primes collected on the client. Terminates by
/// source exhaustion (§3.4 mode 1), so the full history drains cleanly.
pub fn sieve_history(cluster: &ChaosCluster, below: i64) -> Result<Vec<i64>> {
    let mut b = GraphBuilder::new();
    let candidates = b.channel();
    let primes = b.channel();
    let second = 1 % cluster.handles().len().max(1);
    b.add(
        0,
        "Sequence",
        &(2i64, Some((below - 2).max(0) as u64)),
        &[],
        &[candidates],
    )?;
    b.add(second, "Sift", &(), &[candidates], &[primes])?;
    b.claim_reader(primes)?;
    let mut dep = b.deploy(cluster.client(), cluster.handles())?;
    let r = DataReader::new(dep.readers.remove(&primes).expect("claimed reader"));
    let out = drain(r)?;
    dep.join()?;
    Ok(out)
}

/// The Hamming-number network of Figure 12, with its feedback loop kept
/// whole on partition 0 (so the local monitor can grow the loop's
/// channels, §3.5) and the output hopping through an `Identity` on
/// partition 1 before reaching the client — two network cuts on the
/// observable path. Reads the first `count` values, then closes the
/// reader: termination by sink limit (§3.4 mode 2), whose `WriteClosed`
/// cascade must cross both cuts even under faults.
pub fn hamming_history(cluster: &ChaosCluster, count: usize) -> Result<Vec<i64>> {
    let mut b = GraphBuilder::new();
    let init = b.channel();
    let merged = b.channel();
    let h = b.channel();
    let mid = b.channel();
    let relay = b.channel();
    let in2 = b.channel();
    let in3 = b.channel();
    let in5 = b.channel();
    let m2 = b.channel();
    let m3 = b.channel();
    let m5 = b.channel();
    let second = 1 % cluster.handles().len().max(1);
    b.add(0, "Constant", &(1i64, Some(1u64)), &[], &[init])?;
    b.add(0, "Cons", &false, &[init, merged], &[h])?;
    b.add(0, "Duplicate", &(), &[h], &[mid, in2, in3, in5])?;
    b.add(0, "Scale", &2i64, &[in2], &[m2])?;
    b.add(0, "Scale", &3i64, &[in3], &[m3])?;
    b.add(0, "Scale", &5i64, &[in5], &[m5])?;
    b.add(0, "OrderedMerge", &true, &[m2, m3, m5], &[merged])?;
    b.add(second, "Identity", &(), &[mid], &[relay])?;
    b.claim_reader(relay)?;
    let mut dep = b.deploy(cluster.client(), cluster.handles())?;
    let mut r = DataReader::new(dep.readers.remove(&relay).expect("claimed reader"));
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(r.read_i64()?);
    }
    // Dropping the reader fires the §3.4 cascade back through both cuts.
    drop(r);
    dep.join()?;
    Ok(out)
}

/// A ping-pong relay: the client writes one value at a time through
/// `Identity` processes on partitions 0 and 1 and reads it back before
/// sending the next — the strictest rhythm for the reconnection protocol,
/// since every fault surfaces while exactly one datum is in flight.
pub fn relay_history(cluster: &ChaosCluster, count: i64) -> Result<Vec<i64>> {
    let mut b = GraphBuilder::new();
    let input = b.channel();
    let mid = b.channel();
    let back = b.channel();
    let second = 1 % cluster.handles().len().max(1);
    b.add(0, "Identity", &(), &[input], &[mid])?;
    b.add(second, "Identity", &(), &[mid], &[back])?;
    b.claim_writer(input)?;
    b.claim_reader(back)?;
    let mut dep = b.deploy(cluster.client(), cluster.handles())?;
    let mut w = DataWriter::new(dep.writers.remove(&input).expect("claimed writer"));
    let mut r = DataReader::new(dep.readers.remove(&back).expect("claimed reader"));
    let mut out = Vec::with_capacity(count.max(0) as usize);
    for i in 0..count {
        w.write_i64(i)?;
        out.push(r.read_i64()?);
    }
    drop(w); // sends Close; the graph winds down by exhaustion
    match drain(r) {
        Ok(rest) if rest.is_empty() => {}
        Ok(rest) => {
            return Err(Error::Graph(format!(
                "relay produced {} values after the writer closed",
                rest.len()
            )))
        }
        Err(e) => return Err(e),
    }
    dep.join()?;
    Ok(out)
}

/// The Kahn determinacy oracle: runs `run` once on a fault-free cluster
/// and once per seed under that seed's fault schedule, requiring every
/// faulted history to be bit-identical to the baseline. Returns the total
/// number of injected faults so callers can assert the schedules actually
/// fired.
pub fn check_determinacy<F>(
    servers: usize,
    seeds: &[u64],
    profile: FaultProfile,
    policy: ReconnectPolicy,
    run: F,
) -> Result<u64>
where
    F: Fn(&ChaosCluster) -> Result<Vec<i64>>,
{
    let baseline = {
        let cluster = ChaosCluster::plain(servers)?;
        run(&cluster)?
    };
    let mut injected = 0;
    for &seed in seeds {
        let cluster = ChaosCluster::with_faults(servers, seed, profile.clone(), policy.clone())?;
        let got = run(&cluster)
            .map_err(|e| Error::Graph(format!("chaos run failed under seed {seed:#x}: {e}")))?;
        injected += cluster.injected();
        if got != baseline {
            let diverge = baseline
                .iter()
                .zip(got.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| baseline.len().min(got.len()));
            return Err(Error::Graph(format!(
                "seed {seed:#x} broke determinacy: history diverges at index {diverge} \
                 (baseline {} values, faulted {} values)",
                baseline.len(),
                got.len()
            )));
        }
    }
    Ok(injected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::profile_for;

    #[test]
    fn guard_scopes_profile_installation() {
        let addr = "203.0.113.7:4242"; // TEST-NET; never dialed
        {
            let mut g = ChaosGuard::new(1, FaultProfile::default(), chaos_policy());
            g.cover(addr);
            assert!(profile_for(addr).policy.enabled);
        }
        assert!(!profile_for(addr).policy.enabled, "drop must uninstall");
    }

    #[test]
    fn relay_is_deterministic_under_faults() {
        // refuse_connects ≥ 1 guarantees the schedule fires even if the
        // op-fault dice stay cold for the whole (short) run.
        let profile = FaultProfile {
            mean_ops_between_faults: 12,
            refuse_connects: 1,
            max_faults: 10,
            ..FaultProfile::default()
        };
        let faults = check_determinacy(2, &[0xC0FFEE], profile, chaos_policy(), |c| {
            relay_history(c, 48)
        })
        .expect("determinacy");
        assert!(faults > 0, "fault schedule never fired");
    }

    #[test]
    fn virtual_clock_stalls_cost_no_wall_time() {
        use std::time::Instant;
        // Every op fault is a stall, and each stall is far longer than the
        // whole test budget in wall mode — only a virtual clock lets this
        // schedule run to completion quickly. Frames batch many values, so
        // the op gap must be tiny for the schedule to fire at all.
        let profile = FaultProfile {
            mean_ops_between_faults: 2,
            stall_ratio: 1,
            stall: Duration::from_secs(2),
            refuse_connects: 0,
            max_faults: 6,
        };
        let clock = ChaosClock::virtual_clock();
        let cluster =
            ChaosCluster::with_faults_on_clock(2, 0x51C, profile, chaos_policy(), clock.clone())
                .expect("cluster");
        let start = Instant::now();
        let primes = sieve_history(&cluster, 50).expect("sieve run");
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]);
        assert!(cluster.injected() > 0, "fault schedule never fired");
        assert!(
            clock.virtual_nanos().unwrap() > 0,
            "stalls never advanced the virtual clock"
        );
        // 6 stalls x 2s would blow well past this bound if they slept.
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "virtual-clock stalls must not block wall time"
        );
    }

    #[test]
    fn sieve_survives_fault_schedule() {
        let profile = FaultProfile {
            mean_ops_between_faults: 20,
            refuse_connects: 1,
            max_faults: 8,
            ..FaultProfile::default()
        };
        let cluster =
            ChaosCluster::with_faults(2, 0xBADC0DE, profile, chaos_policy()).expect("cluster");
        let primes = sieve_history(&cluster, 50).expect("sieve run");
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]);
    }
}
