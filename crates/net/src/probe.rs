//! Distributed deadlock detection (§6.2, the paper's stated future work).
//!
//! A local monitor can prove a deadlock *artificial* (some process is
//! write-blocked on a full local channel — grow it) or *true* (all blocked
//! reads are on verifiably empty local channels). But threads blocked on
//! **remote** channel reads are opaque locally: data may be in flight on
//! the wire, so the local monitor must never abort because of them (they
//! register as *external* blocks, see [`kpn_core::Monitor::external_block`]).
//!
//! The [`ClusterProbe`] supplies the missing global view: it polls every
//! node's monitor snapshots over the control protocol and declares a
//! distributed deadlock when **every** network on **every** node is fully
//! blocked across two consecutive polls (the settling pass rejects
//! in-flight-data races the same way the local monitor's settle delay
//! does). Resolution mirrors the local policy: the operator (or the
//! probe's `abort_all`) unwinds the cluster.

use crate::control::ServerHandle;
use kpn_core::Result;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Serializable view of one network's monitor (mirror of
/// [`kpn_core::MonitorSnapshot`] for the wire).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkStatus {
    /// Activity counter (see [`kpn_core::MonitorSnapshot::generation`]).
    pub generation: u64,
    /// Live process threads.
    pub live: usize,
    /// Threads blocked reading (local or remote channels).
    pub blocked_reads: usize,
    /// Threads blocked writing.
    pub blocked_writes: usize,
    /// Whether this network was aborted.
    pub aborted: bool,
    /// Channel growths performed by the local monitor.
    pub growths: u64,
    /// Remote endpoints on the node currently inside a reconnect episode
    /// (process-wide gauge, reported with every network). A reconnecting
    /// channel may deliver data the moment its link heals, so it must
    /// never count toward a deadlock verdict.
    #[serde(default)]
    pub reconnecting: usize,
    /// Total reconnect attempts the node has ever made (progress gauge —
    /// movement between probe polls means the network layer is working,
    /// not deadlocked).
    #[serde(default)]
    pub recovery_attempts: u64,
    /// Socket-readiness wakeups delivered by the executor's reactor
    /// (event-driven net backend; 0 under the thread backend). A
    /// reactor-parked channel reports no generation movement while it
    /// waits, but a *delivery* to one is progress exactly like a TCP
    /// receive waking a thread-blocked reader — so this gauge joins the
    /// freshness check. Timer wakeups are deliberately excluded: timers
    /// keep firing during a true deadlock.
    #[serde(default)]
    pub reactor_wakeups: u64,
}

impl NetworkStatus {
    /// Builds the wire view from a core snapshot, stamping in the node's
    /// current transport-recovery gauges.
    pub fn from_snapshot(s: &kpn_core::MonitorSnapshot) -> Self {
        let (reconnecting, recovery_attempts) = crate::transport::recovery_stats();
        NetworkStatus {
            generation: s.generation,
            live: s.live,
            blocked_reads: s.blocked_reads,
            blocked_writes: s.blocked_writes,
            aborted: s.aborted,
            growths: s.stats.growths,
            reconnecting,
            recovery_attempts,
            reactor_wakeups: s
                .stats
                .scheduler
                .as_ref()
                .and_then(|sc| sc.reactor.as_ref())
                .map(|r| r.wakeups)
                .unwrap_or(0),
        }
    }

    /// True when the network still has live processes, all blocked.
    pub fn fully_blocked(&self) -> bool {
        self.live > 0 && self.blocked_reads + self.blocked_writes >= self.live
    }

    /// True when the network has finished.
    pub fn finished(&self) -> bool {
        self.live == 0
    }
}

/// Aggregated status of one node.
#[derive(Debug, Clone)]
pub struct NodeStatus {
    /// The node's control address.
    pub addr: String,
    /// One entry per network the node is running.
    pub networks: Vec<NetworkStatus>,
}

impl NodeStatus {
    /// True when every network on the node is either finished or fully
    /// blocked, with at least one still live — and no channel endpoint is
    /// mid-reconnect. A node with a recovering endpoint is *not*
    /// quiescent: the blocked thread it reports may resume the instant
    /// the link heals, which is indistinguishable from data in flight.
    pub fn quiescent_blocked(&self) -> bool {
        let any_live = self.networks.iter().any(|n| !n.finished());
        any_live
            && self.networks.iter().all(|n| n.reconnecting == 0)
            && self
                .networks
                .iter()
                .all(|n| n.finished() || n.fully_blocked())
    }

    /// One-line description of what is blocked, for timeout diagnostics.
    fn describe(&self) -> String {
        let (mut live, mut reads, mut writes, mut rec) = (0, 0, 0, 0);
        for n in &self.networks {
            live += n.live;
            reads += n.blocked_reads;
            writes += n.blocked_writes;
            rec = rec.max(n.reconnecting);
        }
        format!(
            "{}: {} live, {} read-blocked, {} write-blocked, {} reconnecting",
            self.addr, live, reads, writes, rec
        )
    }
}

/// A coordinator that watches a set of compute servers for distributed
/// deadlock.
pub struct ClusterProbe {
    servers: Vec<ServerHandle>,
    /// Delay between the two confirmation polls.
    pub settle: Duration,
}

impl ClusterProbe {
    /// A probe over the given servers.
    pub fn new(servers: Vec<ServerHandle>) -> Self {
        ClusterProbe {
            servers,
            settle: Duration::from_millis(50),
        }
    }

    /// One status poll across all servers.
    pub fn poll(&self) -> Result<Vec<NodeStatus>> {
        self.servers
            .iter()
            .map(|s| {
                Ok(NodeStatus {
                    addr: s.addr().to_string(),
                    networks: s.monitor_status()?,
                })
            })
            .collect()
    }

    /// True when the cluster as a whole is deadlocked: every node is
    /// quiescent-blocked on two consecutive polls. (A single poll can
    /// catch a moment where data is on the wire between two sockets; the
    /// confirmation poll after `settle` rejects that race — TCP delivery
    /// would have woken a reader in between.)
    pub fn detect_global_deadlock(&self) -> Result<bool> {
        let first = self.poll()?;
        if first.is_empty() || !first.iter().all(NodeStatus::quiescent_blocked) {
            return Ok(false);
        }
        std::thread::sleep(self.settle);
        let second = self.poll()?;
        if !second.iter().all(NodeStatus::quiescent_blocked) {
            return Ok(false);
        }
        // Freshness: any generation movement between the polls means some
        // thread blocked/unblocked, and any recovery-attempt movement
        // means the network layer is actively reconnecting — progress
        // either way, not deadlock.
        let frozen = first.iter().zip(second.iter()).all(|(a, b)| {
            a.networks.len() == b.networks.len()
                && a.networks.iter().zip(b.networks.iter()).all(|(x, y)| {
                    x.generation == y.generation
                        && x.recovery_attempts == y.recovery_attempts
                        && x.reactor_wakeups == y.reactor_wakeups
                })
        });
        Ok(frozen)
    }

    /// Polls repeatedly until a global deadlock is confirmed or `timeout`
    /// elapses. Between polls it parks on the transport-layer condvar
    /// (see [`crate::transport::probe_wait`]) rather than busy-sleeping,
    /// so recovery transitions re-poll immediately and chaos tests don't
    /// flake on fixed-interval timing. On timeout the error reports what
    /// each node had blocked at the final poll.
    pub fn wait_for_deadlock(&self, timeout: Duration) -> Result<bool> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.detect_global_deadlock()? {
                return Ok(true);
            }
            if std::time::Instant::now() >= deadline {
                let detail = match self.poll() {
                    Ok(nodes) => nodes
                        .iter()
                        .map(NodeStatus::describe)
                        .collect::<Vec<_>>()
                        .join("; "),
                    Err(e) => format!("final poll failed: {e}"),
                };
                return Err(kpn_core::Error::Graph(format!(
                    "no global deadlock within {timeout:?} — {detail}"
                )));
            }
            crate::transport::probe_wait(self.settle);
        }
    }

    /// Resolves a detected deadlock the blunt way the paper's termination
    /// model allows: aborts every network on every node; the poisoned
    /// channels unwind all processes (including across the network).
    pub fn abort_all(&self) -> Result<()> {
        for s in &self.servers {
            s.abort_networks()?;
        }
        Ok(())
    }

    /// The servers being watched.
    pub fn servers(&self) -> &[ServerHandle] {
        &self.servers
    }
}

impl std::fmt::Debug for ClusterProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ClusterProbe({} servers)", self.servers.len())
    }
}

/// Convenience: builds a probe from deployment server handles.
pub fn probe_deployment(dep: &crate::builder::Deployment) -> ClusterProbe {
    ClusterProbe::new(dep.servers.clone())
}

#[cfg(test)]
mod probe_logic_tests {
    use super::*;

    fn status(live: usize, reads: usize, writes: usize) -> NetworkStatus {
        NetworkStatus {
            generation: 0,
            live,
            blocked_reads: reads,
            blocked_writes: writes,
            aborted: false,
            growths: 0,
            reconnecting: 0,
            recovery_attempts: 0,
            reactor_wakeups: 0,
        }
    }

    #[test]
    fn fully_blocked_logic() {
        assert!(status(2, 2, 0).fully_blocked());
        assert!(status(2, 1, 1).fully_blocked());
        assert!(!status(2, 1, 0).fully_blocked());
        assert!(!status(0, 0, 0).fully_blocked());
        assert!(status(0, 0, 0).finished());
    }

    #[test]
    fn node_quiescence_requires_a_live_network() {
        let all_done = NodeStatus {
            addr: "x".into(),
            networks: vec![status(0, 0, 0)],
        };
        assert!(!all_done.quiescent_blocked());
        let blocked = NodeStatus {
            addr: "x".into(),
            networks: vec![status(0, 0, 0), status(3, 3, 0)],
        };
        assert!(blocked.quiescent_blocked());
        let running = NodeStatus {
            addr: "x".into(),
            networks: vec![status(3, 2, 0)],
        };
        assert!(!running.quiescent_blocked());
    }

    #[test]
    fn error_type_propagates() {
        // Probe over an unreachable server reports the failure.
        let probe = ClusterProbe::new(vec![ServerHandle::new("127.0.0.1:1")]);
        assert!(matches!(
            probe.poll(),
            Err(kpn_core::Error::Disconnected(_))
        ));
    }
}
