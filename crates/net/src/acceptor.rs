//! The per-node connection acceptor.
//!
//! Every participating node (compute server or client) runs one
//! [`Acceptor`]: a TCP listener whose accept loop dispatches incoming
//! connections by their first byte — data connections (`Hello` + endpoint
//! token) are routed to the waiting channel endpoint, control sessions are
//! handed to the compute-server logic.
//!
//! Tokens decouple *who listens* from *when they listen*: a connection may
//! arrive before the graph spec that registers its endpoint has been
//! processed (partitions are shipped one after another, §4.2), so
//! unclaimed arrivals are parked until `register` claims them.
//!
//! Accepted data connections are wrapped by the acceptor's
//! [`NetProfile`]'s transport factory, so a chaos profile injects faults
//! on the accept side as well as the connect side. A connection that
//! presents a *dead* token (deliberately closed endpoint) is answered
//! with a single `Stop` byte before being dropped: a reconnecting writer
//! uses it to tell "reader closed on purpose" (terminate, §3.4 cascade)
//! apart from "link is flaky" (keep retrying).

use crate::frame::{read_hello_token, CONN_CONTROL, CONN_HELLO, TAG_STOP};
use crate::transport::{NetProfile, Transport};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use kpn_core::{blocking_region, Error, Exec, Result};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

type ControlHandler = Arc<dyn Fn(TcpStream) + Send + Sync>;

/// Waker bridging the acceptor's dispatch thread to a fiber parked in
/// [`PendingConn::recv_wait`]: the receiver publishes `(exec, key)` before
/// parking, the sender takes and unparks it after delivering (or after
/// dropping the sender on unregister). Crossbeam wakes blocked *threads*
/// on its own; parked *fibers* need this explicit channel-side nudge.
#[derive(Default)]
pub(crate) struct PendingNotify {
    waiter: Mutex<Option<(Arc<dyn Exec>, usize)>>,
}

impl PendingNotify {
    fn wake(&self) {
        if let Some((exec, key)) = self.waiter.lock().take() {
            exec.unpark_all(key);
        }
    }
}

/// Receives the transport for one registered endpoint token.
pub(crate) struct PendingConn {
    pub(crate) rx: Receiver<Box<dyn Transport>>,
    notify: Arc<PendingNotify>,
}

impl PendingConn {
    /// Waits for the data connection (`timeout` of `None` waits forever,
    /// until the registration is dropped). Parks the calling fiber on the
    /// reactor backend; otherwise blocks the thread the way the plain
    /// `rx.recv()` path always has (compensated when unbounded).
    pub(crate) fn recv_wait(
        &self,
        timeout: Option<Duration>,
    ) -> std::result::Result<Box<dyn Transport>, RecvTimeoutError> {
        if let Some((exec, reactor)) = crate::rio::parking_context() {
            let deadline = timeout.map(|t| Instant::now() + t);
            let key = Arc::as_ptr(&self.notify) as usize;
            let out = loop {
                match self.rx.try_recv() {
                    Ok(t) => break Ok(t),
                    Err(TryRecvError::Disconnected) => break Err(RecvTimeoutError::Disconnected),
                    Err(TryRecvError::Empty) => {}
                }
                let now = Instant::now();
                if deadline.is_some_and(|dl| now >= dl) {
                    break Err(RecvTimeoutError::Timeout);
                }
                let token = exec.park_token(key);
                *self.notify.waiter.lock() = Some((exec.clone(), key));
                // Re-check with the waiter published: a send that raced in
                // before publication is caught here; one that lands after
                // sees the waiter and unparks (a pre-park unpark just
                // bumps the token's generation — park returns at once).
                match self.rx.try_recv() {
                    Ok(t) => break Ok(t),
                    Err(TryRecvError::Disconnected) => break Err(RecvTimeoutError::Disconnected),
                    Err(TryRecvError::Empty) => {}
                }
                if let Some(dl) = deadline {
                    reactor.add_timer(dl, key);
                }
                let _ = exec.park(key, token, deadline.map(|dl| dl - now));
            };
            self.notify.waiter.lock().take();
            out
        } else {
            match timeout {
                // Bounded waits are short recovery polls whose callers sit
                // inside a blocking_region already — don't re-compensate.
                Some(t) => self.rx.recv_timeout(t),
                None => {
                    blocking_region(|| self.rx.recv().map_err(|_| RecvTimeoutError::Disconnected))
                }
            }
        }
    }
}

/// A waiting endpoint: the channel that delivers its connection plus the
/// waker that reaches a fiber parked in [`PendingConn::recv_wait`].
type Waiter = (Sender<Box<dyn Transport>>, Arc<PendingNotify>);

struct AcceptorState {
    /// Endpoints waiting for their connection.
    waiting: HashMap<u64, Waiter>,
    /// Connections that arrived before their endpoint registered.
    parked: HashMap<u64, Box<dyn Transport>>,
    /// Tokens whose endpoint was abandoned: late connections get a `Stop`
    /// notice and are dropped, so the connector terminates instead of
    /// retrying (termination cascade).
    dead: HashSet<u64>,
    control: Option<ControlHandler>,
    closed: bool,
}

/// A node's connection acceptor (one TCP port for data and control).
pub struct Acceptor {
    addr: SocketAddr,
    profile: NetProfile,
    state: Mutex<AcceptorState>,
}

impl Acceptor {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop, with the default (plain TCP, fail-fast) profile.
    pub fn bind(addr: &str) -> Result<Arc<Self>> {
        Self::bind_with(addr, NetProfile::default())
    }

    /// Binds with an explicit [`NetProfile`]: accepted data connections
    /// are wrapped by the profile's transport factory.
    pub fn bind_with(addr: &str, profile: NetProfile) -> Result<Arc<Self>> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let acceptor = Arc::new(Acceptor {
            addr: local,
            profile,
            state: Mutex::new(AcceptorState {
                waiting: HashMap::new(),
                parked: HashMap::new(),
                dead: HashSet::new(),
                control: None,
                closed: false,
            }),
        });
        let weak = Arc::downgrade(&acceptor);
        std::thread::Builder::new()
            .name(format!("kpn-acceptor:{local}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    let Some(acceptor) = weak.upgrade() else {
                        break; // node dropped; stop accepting
                    };
                    if acceptor.state.lock().closed {
                        break;
                    }
                    match conn {
                        Ok(stream) => acceptor.dispatch(stream),
                        Err(_) => continue,
                    }
                }
            })
            .expect("failed to spawn acceptor thread");
        Ok(acceptor)
    }

    /// The actual bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The acceptor's reconnect policy (shared by endpoints it hosts).
    pub(crate) fn profile(&self) -> &NetProfile {
        &self.profile
    }

    /// Installs the control-session handler (compute server).
    pub(crate) fn set_control_handler(&self, handler: ControlHandler) {
        self.state.lock().control = Some(handler);
    }

    /// True once [`Acceptor::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Stops accepting new connections (existing data connections live on).
    pub fn close(&self) {
        self.state.lock().closed = true;
        // Wake the blocking accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Registers an endpoint token; the returned receiver yields the data
    /// connection when (or if it already has) arrived. Re-registering a
    /// token (reader-side reconnect) revives it even if it was marked
    /// dead.
    pub(crate) fn register(&self, token: u64) -> PendingConn {
        let (tx, rx) = bounded(1);
        let notify = Arc::new(PendingNotify::default());
        let mut st = self.state.lock();
        st.dead.remove(&token);
        if let Some(stream) = st.parked.remove(&token) {
            let _ = tx.send(stream);
        } else {
            st.waiting.insert(token, (tx, notify.clone()));
        }
        PendingConn { rx, notify }
    }

    /// Removes a registration (endpoint abandoned or deliberately closed).
    /// A connection that later presents this token receives a `Stop`
    /// notice, which the connector treats as a closed reader rather than a
    /// transient fault.
    pub(crate) fn unregister(&self, token: u64) {
        let removed = {
            let mut st = self.state.lock();
            let removed = st.waiting.remove(&token);
            st.parked.remove(&token);
            st.dead.insert(token);
            removed
        };
        // Dropping the sender disconnects the receiver; wake any parked
        // fiber (outside the state lock) so it observes the disconnect.
        if let Some((tx, notify)) = removed {
            drop(tx);
            notify.wake();
        }
    }

    fn dispatch(self: &Arc<Self>, mut stream: TcpStream) {
        let mut tag = [0u8; 1];
        if stream.read_exact(&mut tag).is_err() {
            return;
        }
        match tag[0] {
            CONN_HELLO => {
                let Ok(token) = read_hello_token(&mut stream) else {
                    return;
                };
                let _ = stream.set_nodelay(true);
                let mut st = self.state.lock();
                if st.closed {
                    return;
                }
                if st.dead.contains(&token) {
                    // Deliberately closed endpoint: tell the connector to
                    // stop retrying, then drop the connection.
                    let _ = stream.write_all(&[TAG_STOP]);
                    return;
                }
                let transport = self.profile.factory.wrap_accepted(stream, token);
                match st.waiting.remove(&token) {
                    Some((tx, notify)) => {
                        // Endpoint dropped meanwhile → transport drops → the
                        // connector sees a closed socket (WriteClosed).
                        let _ = tx.send(transport);
                        drop(st);
                        // Wake a parked fiber with the state lock dropped —
                        // the woken endpoint may call back into the
                        // acceptor (re-register) before we'd release it.
                        notify.wake();
                    }
                    None => {
                        st.parked.insert(token, transport);
                    }
                }
            }
            CONN_CONTROL => {
                let handler = self.state.lock().control.clone();
                if let Some(h) = handler {
                    std::thread::Builder::new()
                        .name("kpn-control".into())
                        .spawn(move || h(stream))
                        .expect("failed to spawn control thread");
                }
            }
            _ => {} // unknown connection type: drop
        }
    }
}

impl std::fmt::Debug for Acceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Acceptor")
            .field("addr", &self.addr)
            .field("waiting", &st.waiting.len())
            .field("parked", &st.parked.len())
            .finish()
    }
}

/// Allocates a fresh endpoint token (random; collision probability over a
/// deployment's lifetime is negligible).
pub(crate) fn fresh_token() -> u64 {
    loop {
        let t: u64 = rand::random();
        if t != 0 {
            return t;
        }
    }
}

/// Opens a data connection to `addr` presenting `token`.
pub(crate) fn connect_data(addr: &str, token: u64) -> Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| Error::Disconnected(format!("connect {addr}: {e}")))?;
    stream.set_nodelay(true)?;
    crate::frame::write_hello(&mut stream, token)?;
    Ok(stream)
}
