//! # kpn-net — distributed process networks (§4)
//!
//! Extends the `kpn-core` runtime from one machine to many:
//!
//! * [`Acceptor`] — one TCP port per node, dispatching data connections
//!   (by endpoint token) and control sessions;
//! * [`RemoteSink`]/[`RemoteSource`] — channel transports over sockets
//!   that preserve blocking semantics, backpressure, and the §3.4
//!   termination cascade across machines, plus the **redirect protocol**
//!   of §4.3 keeping communication decentralized when endpoints migrate
//!   twice (Figure 15);
//! * [`Node`] — the generic compute server of §4.1 (`run(Runnable)` /
//!   `run(Task)` analogues over a framed control protocol) and/or the
//!   deploying client;
//! * [`ProcessRegistry`]/[`GraphSpec`] — the Java-serialization
//!   substitute: subgraphs travel as process descriptions reconstructed
//!   through a registry of factories;
//! * [`GraphBuilder`] — whole-graph construction with partition
//!   assignment; `deploy` cuts channels at partition boundaries and
//!   triggers the automatic connection establishment of §4.2 (Figure 14).
//!
//! ```no_run
//! use kpn_net::{GraphBuilder, Node, ServerHandle};
//! use kpn_core::DataReader;
//!
//! let client = Node::serve("127.0.0.1:0").unwrap();
//! let server = ServerHandle::new("192.168.1.10:7000");
//! let mut b = GraphBuilder::new();
//! let ch = b.channel();
//! let out = b.channel();
//! b.add(0, "Sequence", &(0i64, Some(100u64)), &[], &[ch]).unwrap();
//! b.add(0, "Scale", &3i64, &[ch], &[out]).unwrap();
//! b.claim_reader(out).unwrap();
//! let mut dep = b.deploy(&client, &[server]).unwrap();
//! let mut r = DataReader::new(dep.readers.remove(&out).unwrap());
//! while let Ok(v) = r.read_i64() {
//!     println!("{v}");
//! }
//! ```

#![warn(missing_docs)]

mod acceptor;
mod builder;
pub mod chaos;
mod control;
mod frame;
mod node;
mod probe;
mod registry;
mod remote;
mod rio;
mod spec;
pub mod transport;

pub use acceptor::Acceptor;
pub use builder::{ChanId, Deployment, GraphBuilder, CLIENT};
pub use control::{ControlRequest, ControlResponse, ServerHandle};
pub use node::{Node, TaskFactory, TaskRegistry};
pub use probe::{probe_deployment, ClusterProbe, NetworkStatus, NodeStatus};
pub use registry::{decode_params, Factory, ProcessRegistry};
pub use remote::{
    monitored_reader, monitored_writer, remote_reader, remote_reader_interruptible, remote_writer,
    remote_writer_interruptible, Interruptor, PendingSource, RemoteSink, RemoteSource,
};
pub use spec::{ChannelSpec, GraphSpec, InputSpec, OutputSpec, ProcessSpec};
pub use transport::{
    install_profile, profile_for, recovery_stats, remove_profile, ChaosClock, FaultKind,
    FaultPlan, FaultProfile, FaultyFactory, FaultyTransport, NetProfile, ReconnectPolicy,
    TcpFactory,
    TcpTransport, Transport, TransportFactory,
};
