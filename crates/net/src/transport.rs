//! Pluggable byte transports under the remote channel endpoints.
//!
//! [`RemoteSink`](crate::RemoteSink) / [`RemoteSource`](crate::RemoteSource)
//! and the [`Acceptor`](crate::Acceptor) no longer talk to a raw
//! `TcpStream`: they talk to a [`Transport`] produced by a
//! [`TransportFactory`]. The default factory yields [`TcpTransport`]
//! (exactly the old behaviour); tests and chaos drills install a
//! [`FaultyFactory`] that wraps every connection in a [`FaultyTransport`]
//! injecting **seeded, deterministic faults** — connection resets,
//! read/write stalls, and connect-time refusals — from a schedule derived
//! with a SplitMix64 generator, so a failure found under seed `s` replays
//! under seed `s`.
//!
//! The module also owns the [`ReconnectPolicy`] that governs how the
//! endpoints react to a transport fault (see `remote.rs` for the
//! sequence-numbered replay protocol), an address-keyed registry of
//! [`NetProfile`]s so chaos can be scoped to the nodes of one test without
//! leaking into the rest of the process, and the global recovery gauges
//! the distributed deadlock probe consults so a *reconnecting* channel is
//! never mistaken for a *blocked* one.

use kpn_core::{Error, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Transport trait + TCP implementation
// ---------------------------------------------------------------------------

/// A bidirectional byte transport under one channel endpoint.
///
/// `Read`/`Write` carry the framed channel traffic; the extra methods are
/// the socket-control surface the endpoints need for interruption
/// (out-of-band shutdown from an abort hook), reconnection handshakes
/// (temporary read timeouts), and opportunistic ack draining (nonblocking
/// reads on the write side).
pub trait Transport: Read + Write + Send {
    /// Shuts down the underlying connection (both directions or one).
    fn shutdown(&self, how: Shutdown) -> std::io::Result<()>;
    /// The remote peer's address.
    fn peer_addr(&self) -> std::io::Result<SocketAddr>;
    /// A second OS handle to the same connection that an *abort hook* can
    /// use to shut it down from another thread, waking any blocked I/O.
    fn shutdown_handle(&self) -> Option<TcpStream>;
    /// Applies a read+write timeout to subsequent blocking operations
    /// (`None` restores fully blocking I/O).
    fn set_op_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
    /// Toggles nonblocking mode (used to drain pending acks without
    /// waiting for more).
    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()>;
    /// The raw OS file descriptor backing this transport, for readiness
    /// registration with the reactor net backend (see `rio`). `None` when
    /// the transport is not socket-backed; readiness parking then
    /// degrades to thread blocking.
    fn raw_fd(&self) -> Option<i32> {
        None
    }
    /// One non-blocking read attempt: `WouldBlock` instead of waiting.
    /// The default toggles `set_nonblocking` around a plain read;
    /// transports that are already non-blocking override it with a direct
    /// attempt.
    fn try_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.set_nonblocking(true)?;
        let r = self.read(buf);
        let restore = self.set_nonblocking(false);
        let n = r?;
        restore?;
        Ok(n)
    }
    /// One non-blocking write attempt; see [`Transport::try_read`].
    fn try_write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.set_nonblocking(true)?;
        let r = self.write(buf);
        let restore = self.set_nonblocking(false);
        let n = r?;
        restore?;
        Ok(n)
    }
    /// Re-attempts a read the caller has *already* started: identical to
    /// a plain `read`, except fault-injecting transports do not advance
    /// their schedule. The event-driven wrapper charges one fault step on
    /// the first attempt of each logical operation and retries through
    /// this after every readiness wakeup — so a blocking read (one call,
    /// one step) and a park-and-retry read (one charged call plus any
    /// number of retries) consume fault schedules at exactly the same op
    /// counts, which the chaos determinacy oracle compares across
    /// backends.
    fn retry_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.read(buf)
    }
    /// Write-side counterpart of [`Transport::retry_read`].
    fn retry_write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.write(buf)
    }
    /// True when waits on this transport park the calling *task* on
    /// socket readiness instead of blocking the OS thread. Endpoints skip
    /// `blocking_region` compensation around operations on such
    /// transports — that is the whole point of the reactor backend.
    fn is_event_driven(&self) -> bool {
        false
    }
}

/// The production transport: a plain `TcpStream` with `TCP_NODELAY`.
pub struct TcpTransport(pub(crate) TcpStream);

impl Read for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.read(buf)
    }
}

impl Write for TcpTransport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

impl Transport for TcpTransport {
    fn shutdown(&self, how: Shutdown) -> std::io::Result<()> {
        self.0.shutdown(how)
    }
    fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.0.peer_addr()
    }
    fn shutdown_handle(&self) -> Option<TcpStream> {
        self.0.try_clone().ok()
    }
    fn set_op_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.0.set_read_timeout(timeout)?;
        self.0.set_write_timeout(timeout)
    }
    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        self.0.set_nonblocking(nonblocking)
    }
    #[cfg(unix)]
    fn raw_fd(&self) -> Option<i32> {
        use std::os::fd::AsRawFd;
        Some(self.0.as_raw_fd())
    }
}

/// Builds transports: outbound data connections (with the `Hello`
/// preamble already written) and wrappers for connections an acceptor has
/// just received.
pub trait TransportFactory: Send + Sync {
    /// Opens a data connection to `addr` presenting `token`.
    fn connect(&self, addr: &str, token: u64) -> Result<Box<dyn Transport>>;
    /// Wraps a connection accepted for `token`.
    fn wrap_accepted(&self, stream: TcpStream, token: u64) -> Box<dyn Transport>;
}

/// The default factory: plain TCP.
#[derive(Debug, Default, Clone, Copy)]
pub struct TcpFactory;

impl TransportFactory for TcpFactory {
    fn connect(&self, addr: &str, token: u64) -> Result<Box<dyn Transport>> {
        let stream = crate::acceptor::connect_data(addr, token)?;
        Ok(Box::new(TcpTransport(stream)))
    }
    fn wrap_accepted(&self, stream: TcpStream, _token: u64) -> Box<dyn Transport> {
        Box::new(TcpTransport(stream))
    }
}

// ---------------------------------------------------------------------------
// Seeded deterministic fault injection
// ---------------------------------------------------------------------------

/// SplitMix64 — tiny, seed-stable generator for fault schedules and
/// backoff jitter. Deliberately *not* `rand`: schedules must be a pure
/// function of the seed, independent of crate versions.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// What a scheduled fault does to the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Shut the socket both ways and fail the operation with
    /// `ConnectionReset`.
    Reset,
    /// Delay the operation by the profile's stall duration (turning into a
    /// `TimedOut` error if the endpoint has an op timeout shorter than the
    /// stall).
    Stall,
}

/// Tunable fault schedule, realized deterministically per seed.
#[derive(Debug, Clone)]
pub struct FaultProfile {
    /// Mean number of read/write operations between injected faults on one
    /// connection (0 disables op faults). The actual gap is drawn uniformly
    /// from `[mean/2, 3*mean/2)` per fault, from the seeded generator.
    pub mean_ops_between_faults: u64,
    /// Of the injected op faults, one in `stall_ratio` is a stall, the
    /// rest are resets (0 = resets only).
    pub stall_ratio: u32,
    /// How long a stall holds the operation.
    pub stall: Duration,
    /// Refuse this many connect attempts (per endpoint token) before
    /// letting one through — exercises accept-time refusal + backoff.
    pub refuse_connects: u32,
    /// Hard cap on injected faults across the whole plan; once spent the
    /// schedule goes quiet so runs terminate. (Counts op faults and
    /// refusals.)
    pub max_faults: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            mean_ops_between_faults: 40,
            stall_ratio: 4,
            stall: Duration::from_millis(30),
            refuse_connects: 1,
            max_faults: 24,
        }
    }
}

/// How fault stalls let time pass.
///
/// [`Wall`](ChaosClock::Wall) (the default) sleeps the faulting thread
/// for the stall duration — realistic, but wall-clock-bound. `Virtual` is
/// the **sim-clock mode**: a stall adds its duration (in nanoseconds) to
/// a shared counter and returns immediately. Fault *points* are already a
/// pure function of the seed and per-connection op counts; with a virtual
/// clock the stall *durations* stop depending on real time too, so a
/// fault schedule composes with the deterministic interleaving schedules
/// of `kpn_core::sim` without either waiting on the other.
#[derive(Debug, Clone)]
pub enum ChaosClock {
    /// Stalls block the thread with `std::thread::sleep`.
    Wall,
    /// Stalls advance this nanosecond counter instead of sleeping.
    Virtual(Arc<AtomicU64>),
}

impl ChaosClock {
    /// A fresh virtual clock starting at zero.
    pub fn virtual_clock() -> Self {
        ChaosClock::Virtual(Arc::new(AtomicU64::new(0)))
    }

    /// Virtual nanoseconds elapsed; `None` in wall mode.
    pub fn virtual_nanos(&self) -> Option<u64> {
        match self {
            ChaosClock::Wall => None,
            ChaosClock::Virtual(n) => Some(n.load(Ordering::Relaxed)),
        }
    }

    /// Lets `d` pass on this clock: a real sleep in wall mode, a counter
    /// bump in virtual mode.
    fn advance(&self, d: Duration) {
        match self {
            ChaosClock::Wall => std::thread::sleep(d),
            ChaosClock::Virtual(n) => {
                let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
                n.fetch_add(nanos, Ordering::Relaxed);
            }
        }
    }
}

/// Shared state of one seeded fault plan (one per [`FaultyFactory`]).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
    clock: ChaosClock,
    remaining: AtomicU64,
    /// Reconnect attempts seen per endpoint token: keys the per-connection
    /// schedule so it is independent of unrelated connections' timing.
    attempts: Mutex<HashMap<u64, u64>>,
    /// Faults actually injected (observability for tests).
    injected: AtomicU64,
}

impl FaultPlan {
    /// A fresh plan for `seed`, stalling in real time.
    pub fn new(seed: u64, profile: FaultProfile) -> Arc<Self> {
        FaultPlan::with_clock(seed, profile, ChaosClock::Wall)
    }

    /// A fresh plan for `seed` whose stalls pass time on `clock`.
    pub fn with_clock(seed: u64, profile: FaultProfile, clock: ChaosClock) -> Arc<Self> {
        Arc::new(FaultPlan {
            seed,
            remaining: AtomicU64::new(profile.max_faults),
            profile,
            clock,
            attempts: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        })
    }

    /// The clock this plan's stalls run on.
    pub fn clock(&self) -> &ChaosClock {
        &self.clock
    }

    /// Takes one fault from the budget; false once the plan is spent.
    fn take_fault(&self) -> bool {
        let ok = self
            .remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
            .is_ok();
        if ok {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn bump_attempt(&self, token: u64) -> u64 {
        let mut map = self.attempts.lock();
        let n = map.entry(token).or_insert(0);
        let now = *n;
        *n += 1;
        now
    }

    fn conn_rng(&self, token: u64, attempt: u64) -> SplitMix64 {
        SplitMix64(
            self.seed
                ^ token.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ attempt.wrapping_mul(0xD134_2543_DE82_EF95),
        )
    }
}

/// A transport that injects faults from its connection's schedule.
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    plan: Arc<FaultPlan>,
    rng: SplitMix64,
    ops: u64,
    next_fault: u64,
    /// Mirrors the endpoint's configured op timeout so a stall longer than
    /// it yields the `TimedOut` the endpoint would see from the kernel.
    op_timeout: Mutex<Option<Duration>>,
    dead: bool,
}

impl FaultyTransport {
    /// Wraps `inner` with the schedule for (`token`, `attempt`).
    pub fn new(inner: Box<dyn Transport>, plan: Arc<FaultPlan>, token: u64, attempt: u64) -> Self {
        let mut rng = plan.conn_rng(token, attempt);
        let next_fault = draw_gap(&mut rng, plan.profile.mean_ops_between_faults);
        FaultyTransport {
            inner,
            plan,
            rng,
            ops: 0,
            next_fault,
            op_timeout: Mutex::new(None),
            dead: false,
        }
    }

    /// Returns an error if a fault fires on this operation.
    fn step(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Err(std::io::Error::from(std::io::ErrorKind::ConnectionReset));
        }
        if self.next_fault == 0 {
            return Ok(()); // op faults disabled
        }
        self.ops += 1;
        if self.ops < self.next_fault || !self.plan.take_fault() {
            return Ok(());
        }
        let profile = &self.plan.profile;
        self.next_fault = self.ops + draw_gap(&mut self.rng, profile.mean_ops_between_faults);
        let stall = profile.stall_ratio > 0 && self.rng.below(profile.stall_ratio as u64) == 0;
        if stall {
            let limit = *self.op_timeout.lock();
            match limit {
                Some(t) if t < profile.stall => {
                    // The endpoint's op timeout expires mid-stall: emulate
                    // the kernel surfacing a timeout.
                    self.plan.clock.advance(t);
                    return Err(std::io::Error::from(std::io::ErrorKind::TimedOut));
                }
                _ => {
                    self.plan.clock.advance(profile.stall);
                    return Ok(());
                }
            }
        }
        self.dead = true;
        let _ = self.inner.shutdown(Shutdown::Both);
        Err(std::io::Error::from(std::io::ErrorKind::ConnectionReset))
    }
}

fn draw_gap(rng: &mut SplitMix64, mean: u64) -> u64 {
    if mean == 0 {
        return 0;
    }
    let lo = (mean / 2).max(1);
    lo + rng.below(mean.max(1))
}

impl Read for FaultyTransport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.step()?;
        self.inner.read(buf)
    }
}

impl Write for FaultyTransport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.step()?;
        self.inner.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Err(std::io::Error::from(std::io::ErrorKind::ConnectionReset));
        }
        self.inner.flush()
    }
}

impl Transport for FaultyTransport {
    fn shutdown(&self, how: Shutdown) -> std::io::Result<()> {
        self.inner.shutdown(how)
    }
    fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.inner.peer_addr()
    }
    fn shutdown_handle(&self) -> Option<TcpStream> {
        self.inner.shutdown_handle()
    }
    fn set_op_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        *self.op_timeout.lock() = timeout;
        self.inner.set_op_timeout(timeout)
    }
    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        self.inner.set_nonblocking(nonblocking)
    }
    fn raw_fd(&self) -> Option<i32> {
        self.inner.raw_fd()
    }
    fn try_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        // One fault-schedule step per attempt — the same cadence as a
        // blocking read, so chaos plans fire at the same op counts under
        // both net backends.
        self.step()?;
        self.inner.try_read(buf)
    }
    fn try_write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.step()?;
        self.inner.try_write(buf)
    }
    fn retry_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        // A retry of a logical op that was charged on its first attempt:
        // keep the dead-connection semantics but leave the fault schedule
        // alone, so plans fire at the same op counts as blocking reads.
        if self.dead {
            return Err(std::io::Error::from(std::io::ErrorKind::ConnectionReset));
        }
        self.inner.retry_read(buf)
    }
    fn retry_write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::from(std::io::ErrorKind::ConnectionReset));
        }
        self.inner.retry_write(buf)
    }
    fn is_event_driven(&self) -> bool {
        self.inner.is_event_driven()
    }
}

/// Factory wrapping every connection in a [`FaultyTransport`] driven by
/// one shared [`FaultPlan`].
pub struct FaultyFactory {
    inner: Arc<dyn TransportFactory>,
    plan: Arc<FaultPlan>,
}

impl FaultyFactory {
    /// Faulty TCP with the given plan.
    pub fn new(plan: Arc<FaultPlan>) -> Self {
        FaultyFactory {
            inner: Arc::new(TcpFactory),
            plan,
        }
    }

    /// The shared plan (for observing `injected()` in tests).
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl TransportFactory for FaultyFactory {
    fn connect(&self, addr: &str, token: u64) -> Result<Box<dyn Transport>> {
        let attempt = self.plan.bump_attempt(token);
        if attempt < self.plan.profile.refuse_connects as u64 && self.plan.take_fault() {
            return Err(Error::Io(std::io::Error::from(
                std::io::ErrorKind::ConnectionRefused,
            )));
        }
        let inner = self.inner.connect(addr, token)?;
        Ok(Box::new(FaultyTransport::new(
            inner,
            self.plan.clone(),
            token,
            attempt,
        )))
    }

    fn wrap_accepted(&self, stream: TcpStream, token: u64) -> Box<dyn Transport> {
        let attempt = self.plan.bump_attempt(token.wrapping_add(1)); // accept side keys off its own counter
        let inner = self.inner.wrap_accepted(stream, token);
        Box::new(FaultyTransport::new(
            inner,
            self.plan.clone(),
            token,
            attempt,
        ))
    }
}

// ---------------------------------------------------------------------------
// Reconnect policy
// ---------------------------------------------------------------------------

/// How a remote endpoint reacts when its transport fails.
///
/// Disabled (the default), any socket error is final — exactly the
/// pre-fault-tolerance behaviour: the error joins the §3.4 termination
/// cascade. Enabled, the endpoint distinguishes *transient* transport
/// faults (reset, timeout, refused connect) from *deliberate* stream
/// events (`Close` frames, `Stop` notices) and reconnects with
/// exponential backoff + jitter under an overall budget, replaying the
/// sequence-numbered stream exactly once (see `remote.rs`).
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Master switch; `false` reproduces fail-fast semantics.
    pub enabled: bool,
    /// First backoff delay after a failed reconnect attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Backoff growth factor per failed attempt.
    pub multiplier: f64,
    /// Random extra fraction of each backoff (`0.2` = up to +20%),
    /// decorrelating reconnect storms.
    pub jitter: f64,
    /// Total time one recovery episode may spend before the endpoint
    /// gives up and lets the failure cascade (§3.4). Charged in *nominal*
    /// wait time — the backoff and poll durations the episode asks for,
    /// not the wall-clock time they take — so how many attempts fit in a
    /// budget does not depend on machine load.
    pub budget: Duration,
    /// Optional read/write timeout on transport operations. Required for
    /// stall detection: a stall longer than this surfaces as `TimedOut`
    /// and triggers recovery. `None` keeps pure blocking semantics.
    pub op_timeout: Option<Duration>,
    /// Bound on unacknowledged bytes retained for replay; when full, the
    /// writer blocks until the reader acknowledges (equivalent to a
    /// smaller bounded channel — Kahn-safe).
    pub replay_capacity: usize,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            enabled: false,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            multiplier: 2.0,
            jitter: 0.2,
            budget: Duration::from_secs(10),
            op_timeout: None,
            replay_capacity: 256 * 1024,
        }
    }
}

impl ReconnectPolicy {
    /// Fault-tolerant defaults: reconnect for up to 10 s per episode.
    pub fn resilient() -> Self {
        ReconnectPolicy {
            enabled: true,
            ..Default::default()
        }
    }

    /// The backoff before attempt `n` (0-based), with deterministic jitter
    /// from `rng`.
    pub(crate) fn backoff(&self, n: u32, rng: &mut SplitMix64) -> Duration {
        let base = self.initial_backoff.as_secs_f64() * self.multiplier.powi(n as i32);
        let capped = base.min(self.max_backoff.as_secs_f64());
        let jitter = if self.jitter > 0.0 {
            capped * self.jitter * (rng.below(1000) as f64 / 1000.0)
        } else {
            0.0
        };
        Duration::from_secs_f64(capped + jitter)
    }
}

// ---------------------------------------------------------------------------
// Address-keyed profile registry
// ---------------------------------------------------------------------------

/// Transport factory + reconnect policy for one node address.
#[derive(Clone)]
pub struct NetProfile {
    /// Builds the transports.
    pub factory: Arc<dyn TransportFactory>,
    /// Governs endpoint recovery.
    pub policy: ReconnectPolicy,
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile {
            factory: Arc::new(TcpFactory),
            policy: ReconnectPolicy::default(),
        }
    }
}

impl std::fmt::Debug for NetProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetProfile")
            .field("policy", &self.policy)
            .finish()
    }
}

fn profiles() -> &'static Mutex<HashMap<String, NetProfile>> {
    static PROFILES: OnceLock<Mutex<HashMap<String, NetProfile>>> = OnceLock::new();
    PROFILES.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Installs `profile` for outbound connections to `addr` (exact-match
/// key). Endpoints resolving `addr` from now on use the profile's factory
/// and policy. Scoped chaos: each test registers only its own nodes'
/// ephemeral addresses and removes them afterwards
/// ([`crate::chaos::ChaosGuard`] automates this).
pub fn install_profile(addr: impl Into<String>, profile: NetProfile) {
    profiles().lock().insert(addr.into(), profile);
}

/// Removes a previously installed profile.
pub fn remove_profile(addr: &str) {
    profiles().lock().remove(addr);
}

/// The profile for outbound connections to `addr` (default TCP,
/// fail-fast, when none installed).
pub fn profile_for(addr: &str) -> NetProfile {
    profiles().lock().get(addr).cloned().unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Recovery gauges + probe wake-up
// ---------------------------------------------------------------------------

static RECOVERING: AtomicUsize = AtomicUsize::new(0);
static RECOVERY_ATTEMPTS: AtomicU64 = AtomicU64::new(0);

/// Endpoints currently inside a recovery episode, and total reconnect
/// attempts ever made, process-wide. The deadlock probe treats a node
/// with `recovering > 0` as *not* quiescent: a reconnecting channel may
/// deliver data the moment the link heals, so it must never count toward
/// a deadlock verdict (it is neither provably blocked nor provably dead).
pub fn recovery_stats() -> (usize, u64) {
    (
        RECOVERING.load(Ordering::SeqCst),
        RECOVERY_ATTEMPTS.load(Ordering::SeqCst),
    )
}

/// RAII marker for one recovery episode; notifies the probe condvar on
/// entry and exit so waiting probes re-poll promptly instead of sleeping
/// through state changes.
pub(crate) struct RecoveryGuard;

impl RecoveryGuard {
    pub(crate) fn enter() -> Self {
        RECOVERING.fetch_add(1, Ordering::SeqCst);
        notify_probe();
        RecoveryGuard
    }

    /// Records one reconnect attempt.
    pub(crate) fn attempt(&self) {
        RECOVERY_ATTEMPTS.fetch_add(1, Ordering::SeqCst);
        notify_probe();
    }
}

impl Drop for RecoveryGuard {
    fn drop(&mut self) {
        RECOVERING.fetch_sub(1, Ordering::SeqCst);
        notify_probe();
    }
}

struct ProbeWaker {
    events: Mutex<u64>,
    cond: Condvar,
}

fn waker() -> &'static ProbeWaker {
    static WAKER: OnceLock<ProbeWaker> = OnceLock::new();
    WAKER.get_or_init(|| ProbeWaker {
        events: Mutex::new(0),
        cond: Condvar::new(),
    })
}

/// Wakes any probe blocked in [`probe_wait`]; called on every transport
/// recovery transition (and usable by tests to force an immediate
/// re-poll).
pub fn notify_probe() {
    let w = waker();
    *w.events.lock() += 1;
    w.cond.notify_all();
}

/// Blocks until a transport event fires or `timeout` elapses — the
/// condvar-based replacement for the probe's former fixed-interval sleep.
/// Returns `true` if woken by an event.
pub fn probe_wait(timeout: Duration) -> bool {
    // A condvar wait pins an OS thread; announce it so a pooled executor
    // running the probe as a task backfills the occupied worker.
    kpn_core::exec::blocking_region(|| {
        let w = waker();
        let mut events = w.events.lock();
        let before = *events;
        if *events != before {
            return true;
        }
        let deadline = Instant::now() + timeout;
        while *events == before {
            if w.cond.wait_until(&mut events, deadline).timed_out() {
                return *events != before;
            }
        }
        true
    })
}

/// Classification of an I/O error for the recovery logic: `true` means
/// the link may heal (reset, abort, timeout, refusal, EOF mid-stream);
/// `false` means a local/logic error that must not be retried.
pub(crate) fn is_transient(e: &std::io::Error) -> bool {
    use std::io::ErrorKind::*;
    matches!(
        e.kind(),
        ConnectionReset
            | ConnectionAborted
            | ConnectionRefused
            | BrokenPipe
            | NotConnected
            | UnexpectedEof
            | TimedOut
            | WouldBlock
            | Interrupted
    )
}

/// [`is_transient`] lifted to `kpn_core::Error` (transport errors arrive
/// wrapped as `Io` or `Disconnected`).
pub(crate) fn error_is_transient(e: &Error) -> bool {
    match e {
        Error::Io(io) => is_transient(io),
        Error::Disconnected(_) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fault_budget_is_finite() {
        let plan = FaultPlan::new(
            7,
            FaultProfile {
                max_faults: 3,
                ..Default::default()
            },
        );
        let mut taken = 0;
        for _ in 0..10 {
            if plan.take_fault() {
                taken += 1;
            }
        }
        assert_eq!(taken, 3);
        assert_eq!(plan.injected(), 3);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = ReconnectPolicy {
            jitter: 0.0,
            ..ReconnectPolicy::resilient()
        };
        let mut rng = SplitMix64(1);
        let b0 = policy.backoff(0, &mut rng);
        let b3 = policy.backoff(3, &mut rng);
        let b20 = policy.backoff(20, &mut rng);
        assert!(b0 < b3);
        assert!(b3 <= b20);
        assert!(b20 <= policy.max_backoff);
    }

    #[test]
    fn profile_registry_is_scoped() {
        let addr = "198.51.100.7:1234"; // TEST-NET-2, never dialed
        assert!(!profile_for(addr).policy.enabled);
        install_profile(
            addr,
            NetProfile {
                factory: Arc::new(TcpFactory),
                policy: ReconnectPolicy::resilient(),
            },
        );
        assert!(profile_for(addr).policy.enabled);
        remove_profile(addr);
        assert!(!profile_for(addr).policy.enabled);
    }

    #[test]
    fn probe_wait_times_out_and_wakes() {
        assert!(!probe_wait(Duration::from_millis(10)));
        let h = std::thread::spawn(|| {
            std::thread::sleep(Duration::from_millis(20));
            notify_probe();
        });
        assert!(probe_wait(Duration::from_secs(5)));
        h.join().unwrap();
    }
}
