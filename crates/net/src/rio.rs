//! Reactor-backed I/O: the event-driven net backend's transport wrapper.
//!
//! Under the thread backend every blocked remote-channel operation pins a
//! compensated OS thread inside `blocking_region` — 10k blocked remote
//! channels cost 10k threads. [`ReactorIo`] removes that cost: it puts
//! the socket in permanent non-blocking mode and emulates blocking
//! semantics *internally* — an operation that would block parks the
//! calling fiber through the ordinary `Exec::park_token`/`park` protocol
//! with interest registered on the pool's
//! [`Reactor`](kpn_core::exec::reactor::Reactor), and retries when the
//! worker loop drains the readiness queue and unparks it.
//!
//! Because blocking semantics are preserved at the [`Transport`] surface
//! (complete reads/writes or a synthesized `TimedOut`, exactly what a
//! kernel op timeout yields), everything above — `BufReader`/`BufWriter`
//! framing, the ack parser, the reconnection state machines, and
//! [`FaultyTransport`](crate::transport::FaultyTransport) fault schedules
//! wrapped *underneath* this layer — runs unchanged under both backends.
//!
//! ## The lost-wakeup ordering
//!
//! The reactor arms fds `EPOLLONESHOT`. The wait sequence is strictly
//! `park_token` → `arm` → `park`: arming first could let a worker consume
//! the one-shot event and `unpark_all` a key nobody holds a token for
//! yet, losing the wakeup. With the token taken first, any delivery after
//! that point bumps the key's generation and the park returns
//! immediately. Timeouts ride on the reactor's timer heap (the pooled
//! fiber path ignores park timeouts by design); timers are never
//! cancelled, so a stale timer is just a spurious unpark on a dead
//! generation.
//!
//! Contexts that cannot park a fiber — foreign threads (the sink linger
//! thread), thread/sim executors, a pool whose reactor failed to
//! initialize — fall back per-wait to `poll(2)` under `blocking_region`,
//! which is precisely the thread backend's cost model.

use crate::transport::Transport;
use kpn_core::exec::reactor::Reactor;
use kpn_core::{Exec, NetBackend};
use std::sync::Arc;
use std::time::Duration;

/// The executor and reactor to park through, when — and only when — the
/// reactor backend is selected *and* the current task runs on an executor
/// that owns a reactor. `None` means "behave like the thread backend for
/// this wait".
pub(crate) fn parking_context() -> Option<(Arc<dyn Exec>, Arc<Reactor>)> {
    if kpn_core::exec::net_backend() != NetBackend::Reactor {
        return None;
    }
    let exec = kpn_core::exec::current_exec()?;
    let reactor = exec.reactor()?;
    Some((exec, reactor))
}

/// Fiber-aware sleep: parks the calling fiber on a reactor timer when
/// reactor parking is active (so 1k concurrently backing-off writers do
/// not spawn 1k compensation threads), else a plain thread sleep.
pub(crate) fn sleep(d: Duration) {
    if d.is_zero() {
        return;
    }
    if let Some((exec, reactor)) = parking_context() {
        let cell: u8 = 0;
        let key = std::ptr::addr_of!(cell) as usize;
        let deadline = std::time::Instant::now() + d;
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                return;
            }
            let token = exec.park_token(key);
            reactor.add_timer(deadline, key);
            let _ = exec.park(key, token, Some(deadline - now));
        }
    } else {
        std::thread::sleep(d);
    }
}

/// Wrap `t` in a [`ReactorIo`] when the reactor backend is selected and
/// the transport is socket-backed; otherwise return it unchanged. The
/// wrapper goes *outside* any [`FaultyTransport`] so seeded chaos
/// schedules keep stepping on every attempt under both backends.
pub(crate) fn maybe_wrap(t: Box<dyn Transport>) -> Box<dyn Transport> {
    #[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
    {
        imp::maybe_wrap(t)
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
    {
        t
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
mod imp {
    use super::parking_context;
    use crate::transport::Transport;
    use kpn_core::blocking_region;
    use kpn_core::exec::reactor::{poll_fd, Interest, Reactor};
    use kpn_core::NetBackend;
    use parking_lot::Mutex;
    use std::io::{Read, Write};
    use std::net::{Shutdown, SocketAddr, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    pub(super) fn maybe_wrap(t: Box<dyn Transport>) -> Box<dyn Transport> {
        if kpn_core::exec::net_backend() != NetBackend::Reactor || t.is_event_driven() {
            return t;
        }
        let Some(fd) = t.raw_fd() else {
            return t;
        };
        if t.set_nonblocking(true).is_err() {
            return t;
        }
        Box::new(ReactorIo {
            inner: t,
            fd,
            key: Box::new(0),
            op_timeout: Mutex::new(None),
            passthrough: AtomicBool::new(false),
            attached: Mutex::new(None),
        })
    }

    /// A transport whose fd lives permanently in non-blocking mode;
    /// would-block operations park the fiber on readiness (see the module
    /// docs). Blocking semantics are emulated at this surface, so callers
    /// above see complete operations or `TimedOut` — never `WouldBlock`,
    /// unless they opted into passthrough via `set_nonblocking(true)`.
    pub(super) struct ReactorIo {
        inner: Box<dyn Transport>,
        fd: i32,
        /// Stable heap address used as this endpoint's park key (the
        /// `ReactorIo` itself moves when the owning endpoint does).
        key: Box<u8>,
        /// Mirror of the endpoint's op timeout: non-blocking fds never
        /// surface kernel timeouts, so this layer synthesizes them.
        op_timeout: Mutex<Option<Duration>>,
        /// `set_nonblocking(true)` from above (ack draining) switches to
        /// passthrough: surface `WouldBlock` instead of waiting.
        passthrough: AtomicBool,
        /// The reactor this fd is attached to, for re-attach after an
        /// executor change and detach-before-close on drop.
        attached: Mutex<Option<Arc<Reactor>>>,
    }

    impl ReactorIo {
        fn key(&self) -> usize {
            std::ptr::addr_of!(*self.key) as usize
        }

        fn deadline(&self) -> Option<Instant> {
            self.op_timeout.lock().map(|d| Instant::now() + d)
        }

        fn ensure_attached(&self, reactor: &Arc<Reactor>) -> std::io::Result<()> {
            let mut att = self.attached.lock();
            match &*att {
                Some(r) if Arc::ptr_eq(r, reactor) => Ok(()),
                _ => {
                    if let Some(old) = att.take() {
                        old.detach(self.fd);
                    }
                    reactor.attach(self.fd)?;
                    *att = Some(reactor.clone());
                    Ok(())
                }
            }
        }

        /// Wait until `fd` reports readiness for `interest` (or a timer /
        /// spurious wakeup; the caller's retry loop re-checks). Parks the
        /// fiber when possible, else blocks this thread compensated.
        fn wait_ready(&self, interest: Interest, deadline: Option<Instant>) -> std::io::Result<()> {
            if let Some((exec, reactor)) = parking_context() {
                if self.ensure_attached(&reactor).is_ok() {
                    let key = self.key();
                    // Token BEFORE arm: see the module docs on one-shot
                    // delivery ordering.
                    let token = exec.park_token(key);
                    if reactor.arm(self.fd, key, interest).is_ok() {
                        let timeout = deadline.map(|dl| {
                            reactor.add_timer(dl, key);
                            dl.saturating_duration_since(Instant::now())
                        });
                        let _ = exec.park(key, token, timeout);
                        return Ok(());
                    }
                }
            }
            // No parkable context (foreign thread, thread/sim executor,
            // reactor unavailable): block this OS thread, compensated.
            blocking_region(|| {
                let timeout = deadline.map(|dl| dl.saturating_duration_since(Instant::now()));
                poll_fd(self.fd, interest, timeout).map(|_| ())
            })
        }

        /// Drives one *logical* operation to completion. `op` is invoked
        /// with `retry = false` exactly once (the attempt that charges a
        /// fault-injecting transport's schedule) and with `retry = true`
        /// after each readiness wakeup — see [`Transport::retry_read`] for
        /// why the distinction keeps chaos schedules backend-identical.
        fn run<T>(
            &mut self,
            interest: Interest,
            mut op: impl FnMut(&mut Box<dyn Transport>, bool) -> std::io::Result<T>,
        ) -> std::io::Result<T> {
            let deadline = self.deadline();
            let mut retry = false;
            loop {
                match op(&mut self.inner, std::mem::replace(&mut retry, true)) {
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if self.passthrough.load(Ordering::Relaxed) {
                            return Err(e);
                        }
                        // Readiness always outranks the deadline (retry
                        // the op after every wake); only a wake that
                        // still would-block past the deadline times out —
                        // the same precedence a kernel op timeout has.
                        if deadline.is_some_and(|dl| Instant::now() >= dl) {
                            return Err(std::io::Error::from(std::io::ErrorKind::TimedOut));
                        }
                        self.wait_ready(interest, deadline)?;
                    }
                    r => return r,
                }
            }
        }
    }

    impl Read for ReactorIo {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.run(Interest::Read, |t, retry| {
                if retry {
                    t.retry_read(buf)
                } else {
                    t.read(buf)
                }
            })
        }
    }

    impl Write for ReactorIo {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.run(Interest::Write, |t, retry| {
                if retry {
                    t.retry_write(buf)
                } else {
                    t.write(buf)
                }
            })
        }
        fn flush(&mut self) -> std::io::Result<()> {
            // `flush` never advances fault schedules, so retries need no
            // special path.
            self.run(Interest::Write, |t, _| t.flush())
        }
    }

    impl Transport for ReactorIo {
        fn shutdown(&self, how: Shutdown) -> std::io::Result<()> {
            self.inner.shutdown(how)
        }
        fn peer_addr(&self) -> std::io::Result<SocketAddr> {
            self.inner.peer_addr()
        }
        fn shutdown_handle(&self) -> Option<TcpStream> {
            self.inner.shutdown_handle()
        }
        fn set_op_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
            *self.op_timeout.lock() = timeout;
            // Push it down too: FaultyTransport mirrors the timeout for
            // its stall emulation (kernel timeouts on a non-blocking fd
            // are inert, so this costs nothing on a raw TcpTransport).
            self.inner.set_op_timeout(timeout)
        }
        fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
            // The fd never leaves non-blocking mode; this only toggles
            // whether WouldBlock surfaces to the caller.
            self.passthrough.store(nonblocking, Ordering::Relaxed);
            Ok(())
        }
        fn raw_fd(&self) -> Option<i32> {
            Some(self.fd)
        }
        fn try_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(buf)
        }
        fn try_write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.inner.write(buf)
        }
        fn is_event_driven(&self) -> bool {
            true
        }
    }

    impl Drop for ReactorIo {
        fn drop(&mut self) {
            // Detach before `inner` drops and closes the fd: a closed fd
            // number can be reused by an unrelated socket immediately.
            if let Some(r) = self.attached.lock().take() {
                r.detach(self.fd);
            }
        }
    }
}
