//! Serializable graph descriptions — the unit of migration.
//!
//! Java ships live objects; Rust cannot ship code, so a subgraph travels as
//! a [`GraphSpec`]: process *descriptions* (type name + constructor
//! parameters) plus channel wiring. The receiving server reconstructs the
//! processes through its [`crate::ProcessRegistry`] — the substitute for
//! Java's dynamic class loading (`java.rmi.server.codebase`, §4.1). What
//! is preserved exactly is the paper's *protocol*: endpoints that cross a
//! partition boundary serialize as remote endpoint descriptors, and
//! deserializing them triggers the automatic network-connection
//! establishment of §4.2.

use serde::{Deserialize, Serialize};

/// A channel local to one partition.
#[derive(Serialize, Deserialize, Debug, Clone)]
pub struct ChannelSpec {
    /// Buffer capacity in bytes.
    pub capacity: usize,
}

/// Where a process input comes from.
#[derive(Serialize, Deserialize, Debug, Clone)]
pub enum InputSpec {
    /// Reads the local channel at this index.
    Local(usize),
    /// The writer lives elsewhere: listen for the data connection
    /// presenting `token` on this node's acceptor.
    Remote {
        /// Endpoint token the incoming connection will present.
        token: u64,
    },
}

/// Where a process output goes.
#[derive(Serialize, Deserialize, Debug, Clone)]
pub enum OutputSpec {
    /// Writes the local channel at this index.
    Local(usize),
    /// The reader lives elsewhere: connect to its node and present
    /// `token`.
    Remote {
        /// Address of the reader's acceptor.
        addr: String,
        /// Endpoint token registered (or to be registered) there.
        token: u64,
    },
}

/// One process to reconstruct.
#[derive(Serialize, Deserialize, Debug, Clone)]
pub struct ProcessSpec {
    /// Registry key naming the process type.
    pub type_name: String,
    /// Constructor parameters, `kpn-codec` encoded (type-specific).
    pub params: Vec<u8>,
    /// Input endpoints, in the order the factory expects.
    pub inputs: Vec<InputSpec>,
    /// Output endpoints, in the order the factory expects.
    pub outputs: Vec<OutputSpec>,
}

/// A partition of the program graph, ready to run on one server.
#[derive(Serialize, Deserialize, Debug, Clone, Default)]
pub struct GraphSpec {
    /// Channels internal to this partition.
    pub channels: Vec<ChannelSpec>,
    /// Processes of this partition.
    pub processes: Vec<ProcessSpec>,
}

impl GraphSpec {
    /// True when the partition has nothing to run.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_codec() {
        let spec = GraphSpec {
            channels: vec![ChannelSpec { capacity: 1024 }],
            processes: vec![ProcessSpec {
                type_name: "Sequence".into(),
                params: kpn_codec::to_bytes(&(0i64, Some(10u64))).unwrap(),
                inputs: vec![InputSpec::Remote { token: 7 }],
                outputs: vec![
                    OutputSpec::Local(0),
                    OutputSpec::Remote {
                        addr: "10.0.0.1:9000".into(),
                        token: 8,
                    },
                ],
            }],
        };
        let bytes = kpn_codec::to_bytes(&spec).unwrap();
        let back: GraphSpec = kpn_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back.channels.len(), 1);
        assert_eq!(back.processes[0].type_name, "Sequence");
        assert!(matches!(
            back.processes[0].inputs[0],
            InputSpec::Remote { token: 7 }
        ));
        match &back.processes[0].outputs[1] {
            OutputSpec::Remote { addr, token } => {
                assert_eq!(addr, "10.0.0.1:9000");
                assert_eq!(*token, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
