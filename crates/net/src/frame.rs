//! Wire protocol for channel data connections.
//!
//! A data connection starts with a [`Hello`] frame carrying the endpoint
//! token the connector wants to attach to, followed by a stream of
//! [`Frame`]s. The `Close` frame is the graceful end-of-stream marker that
//! carries the §3.4 termination cascade across machines; `Redirect` is the
//! decentralized-communication handshake of §4.3 (Figure 15).
//!
//! ## Sequence offsets (protocol v2)
//!
//! Every writer→reader frame carries the writer's **byte offset** into the
//! logical channel stream, so a connection torn down mid-frame can be
//! replaced and the stream resumed exactly-once: the reader knows exactly
//! how many bytes it has delivered (`expected`), and on a replayed frame
//! discards the duplicate prefix. Offsets count *payload* bytes; the
//! `Close` and `Redirect` markers occupy one unit each in the offset space
//! so their delivery is also exactly-once under replay.
//!
//! Two reader→writer / acceptor→connector tags support recovery:
//! `Ack{offset}` is the reader's cumulative acknowledgement ("I have
//! everything below `offset`"), which bounds the writer's replay buffer;
//! `Stop` is the single-byte notice an acceptor sends when a connection
//! presents a token that was deliberately closed — it lets a reconnecting
//! writer distinguish *the reader is gone on purpose* (cascade per §3.4)
//! from *the link is flaky* (keep retrying).

use kpn_core::{Error, Result};
use std::io::{Read, Write};

/// Frame tags on the wire.
const TAG_DATA: u8 = 0x01;
const TAG_CLOSE: u8 = 0x02;
const TAG_REDIRECT: u8 = 0x03;
const TAG_ACK: u8 = 0x04;
pub(crate) const TAG_STOP: u8 = 0x05;

/// Connection-opening tags (first byte of a fresh TCP connection).
pub(crate) const CONN_HELLO: u8 = 0x48; // 'H' — data connection
pub(crate) const CONN_CONTROL: u8 = 0x43; // 'C' — control session

/// One frame on a data connection.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A chunk of channel bytes starting at stream offset `offset`.
    // Production code writes data via `write_data_frame` directly; the
    // variant keeps the wire grammar complete for `write_frame` callers.
    #[allow(dead_code)]
    Data {
        /// Payload bytes.
        bytes: Vec<u8>,
        /// Stream offset of the first payload byte.
        offset: u64,
    },
    /// Graceful end of stream at `offset`: the reader drains, then sees
    /// EOF.
    Close {
        /// Stream offset of the close marker.
        offset: u64,
    },
    /// The writer endpoint is migrating: the reader should register
    /// `token` with its local acceptor and splice in the connection that
    /// will arrive for it (directly from the endpoint's new home).
    Redirect {
        /// Fresh token the replacement connection will present.
        token: u64,
        /// Stream offset of the redirect marker.
        offset: u64,
    },
    /// Reader→writer: cumulative acknowledgement — every stream unit below
    /// `offset` has been delivered to the local channel.
    Ack {
        /// First unacknowledged stream offset.
        offset: u64,
    },
}

/// Writes the `Hello` preamble of a data connection.
pub(crate) fn write_hello<W: Write>(w: &mut W, token: u64) -> Result<()> {
    w.write_all(&[CONN_HELLO])?;
    w.write_all(&token.to_be_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads the token of a `Hello` preamble (the leading tag byte has already
/// been consumed by the connection dispatcher).
pub(crate) fn read_hello_token<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_be_bytes(buf))
}

/// Writes a `Data` frame directly from a borrowed payload — the hot path.
/// No per-frame `Vec`: the 13-byte header is assembled on the stack, and a
/// buffered writer underneath coalesces header and payload into one
/// transfer.
pub(crate) fn write_data_frame<W: Write>(w: &mut W, payload: &[u8], offset: u64) -> Result<()> {
    let mut hdr = [0u8; 13];
    hdr[0] = TAG_DATA;
    hdr[1..5].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    hdr[5..].copy_from_slice(&offset.to_be_bytes());
    w.write_all(&hdr)?;
    w.write_all(payload)?;
    Ok(())
}

/// Writes one frame.
pub(crate) fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<()> {
    match frame {
        Frame::Data { bytes, offset } => write_data_frame(w, bytes, *offset)?,
        Frame::Close { offset } => {
            w.write_all(&[TAG_CLOSE])?;
            w.write_all(&offset.to_be_bytes())?;
        }
        Frame::Redirect { token, offset } => {
            w.write_all(&[TAG_REDIRECT])?;
            w.write_all(&token.to_be_bytes())?;
            w.write_all(&offset.to_be_bytes())?;
        }
        Frame::Ack { offset } => {
            w.write_all(&[TAG_ACK])?;
            w.write_all(&offset.to_be_bytes())?;
        }
    }
    Ok(())
}

/// Reads the header of the next frame. For `Data` frames the payload is
/// *not* consumed — the caller streams it (so one big frame does not force
/// one big allocation). Returns the payload length and stream offset.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum FrameHeader {
    /// `Data` frame: payload length to stream, starting at this offset.
    Data {
        /// Payload bytes to stream after the header.
        len: usize,
        /// Stream offset of the first payload byte.
        offset: u64,
    },
    /// Graceful close at this offset.
    Close {
        /// Stream offset of the close marker.
        offset: u64,
    },
    /// Redirect handshake.
    Redirect {
        /// Token the replacement connection will present.
        token: u64,
        /// Stream offset of the redirect marker.
        offset: u64,
    },
    /// Cumulative acknowledgement from the reader.
    Ack {
        /// First unacknowledged stream offset.
        offset: u64,
    },
    /// Dead-token notice from an acceptor: the endpoint was deliberately
    /// closed; stop retrying.
    Stop,
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_be_bytes(buf))
}

// The live read path waits for the tag byte itself (to tell an idle
// channel from a mid-frame stall) and calls `parse_frame_header`; this
// combined form remains for single-shot readers.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn read_frame_header<R: Read>(r: &mut R) -> Result<FrameHeader> {
    let mut tag = [0u8; 1];
    if let Err(e) = r.read_exact(&mut tag) {
        return Err(match e.kind() {
            std::io::ErrorKind::UnexpectedEof => {
                Error::Disconnected("connection closed without Close frame".into())
            }
            _ => e.into(),
        });
    }
    parse_frame_header(tag[0], r)
}

/// Parses the body of a frame whose tag byte has already been read.
pub(crate) fn parse_frame_header<R: Read>(tag: u8, r: &mut R) -> Result<FrameHeader> {
    match tag {
        TAG_DATA => {
            let mut len = [0u8; 4];
            r.read_exact(&mut len)?;
            let offset = read_u64(r)?;
            Ok(FrameHeader::Data {
                len: u32::from_be_bytes(len) as usize,
                offset,
            })
        }
        TAG_CLOSE => Ok(FrameHeader::Close {
            offset: read_u64(r)?,
        }),
        TAG_REDIRECT => {
            let token = read_u64(r)?;
            let offset = read_u64(r)?;
            Ok(FrameHeader::Redirect { token, offset })
        }
        TAG_ACK => Ok(FrameHeader::Ack {
            offset: read_u64(r)?,
        }),
        TAG_STOP => Ok(FrameHeader::Stop),
        other => Err(Error::Disconnected(format!("unknown frame tag {other:#x}"))),
    }
}

/// Incremental parser for `Ack` frames on the writer side. The writer
/// drains acks *nonblockingly* between data writes, so a read may surface
/// any prefix of the 9-byte ack; this accumulates partial bytes across
/// calls.
#[derive(Debug, Default)]
pub(crate) struct AckParser {
    buf: [u8; 9],
    filled: usize,
}

/// One event surfaced by [`AckParser::feed`].
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum AckEvent {
    /// Cumulative ack up to this offset.
    Ack(u64),
    /// The peer sent `Stop`: the endpoint is deliberately closed.
    Stop,
}

impl AckParser {
    /// Feeds raw bytes from the reader→writer direction; invokes `on_event`
    /// for every complete event. Non-ack tags in this direction are a
    /// protocol error.
    pub(crate) fn feed(&mut self, mut bytes: &[u8], mut on_event: impl FnMut(AckEvent)) -> Result<()> {
        while !bytes.is_empty() {
            if self.filled == 0 {
                match bytes[0] {
                    TAG_STOP => {
                        on_event(AckEvent::Stop);
                        bytes = &bytes[1..];
                        continue;
                    }
                    TAG_ACK => {}
                    other => {
                        return Err(Error::Disconnected(format!(
                            "unexpected tag {other:#x} on ack stream"
                        )))
                    }
                }
            }
            let want = 9 - self.filled;
            let take = want.min(bytes.len());
            self.buf[self.filled..self.filled + take].copy_from_slice(&bytes[..take]);
            self.filled += take;
            bytes = &bytes[take..];
            if self.filled == 9 {
                let mut off = [0u8; 8];
                off.copy_from_slice(&self.buf[1..]);
                on_event(AckEvent::Ack(u64::from_be_bytes(off)));
                self.filled = 0;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn data_frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Data {
                bytes: b"hello".to_vec(),
                offset: 77,
            },
        )
        .unwrap();
        let mut cur = Cursor::new(buf);
        match read_frame_header(&mut cur).unwrap() {
            FrameHeader::Data { len: 5, offset: 77 } => {
                let mut payload = [0u8; 5];
                cur.read_exact(&mut payload).unwrap();
                assert_eq!(&payload, b"hello");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn close_and_redirect_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Close { offset: 9 }).unwrap();
        write_frame(
            &mut buf,
            &Frame::Redirect {
                token: 0xDEAD,
                offset: 10,
            },
        )
        .unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame_header(&mut cur).unwrap(),
            FrameHeader::Close { offset: 9 }
        );
        assert_eq!(
            read_frame_header(&mut cur).unwrap(),
            FrameHeader::Redirect {
                token: 0xDEAD,
                offset: 10
            }
        );
    }

    #[test]
    fn ack_and_stop_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Ack { offset: 4096 }).unwrap();
        buf.push(TAG_STOP);
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame_header(&mut cur).unwrap(),
            FrameHeader::Ack { offset: 4096 }
        );
        assert_eq!(read_frame_header(&mut cur).unwrap(), FrameHeader::Stop);
    }

    #[test]
    fn hello_roundtrip() {
        let mut buf = Vec::new();
        write_hello(&mut buf, 12345).unwrap();
        assert_eq!(buf[0], CONN_HELLO);
        let mut cur = Cursor::new(&buf[1..]);
        assert_eq!(read_hello_token(&mut cur).unwrap(), 12345);
    }

    #[test]
    fn truncated_stream_is_disconnect() {
        let mut cur = Cursor::new(Vec::new());
        assert!(matches!(
            read_frame_header(&mut cur),
            Err(Error::Disconnected(_))
        ));
    }

    #[test]
    fn garbage_tag_is_disconnect() {
        let mut cur = Cursor::new(vec![0xFFu8]);
        assert!(matches!(
            read_frame_header(&mut cur),
            Err(Error::Disconnected(_))
        ));
    }

    #[test]
    fn ack_parser_handles_partial_reads() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Ack { offset: 1000 }).unwrap();
        wire.push(TAG_STOP);
        write_frame(&mut wire, &Frame::Ack { offset: 2000 }).unwrap();

        let mut events = Vec::new();
        let mut parser = AckParser::default();
        // Feed one byte at a time — worst-case fragmentation.
        for b in &wire {
            parser.feed(&[*b], |e| events.push(e)).unwrap();
        }
        assert_eq!(
            events,
            vec![AckEvent::Ack(1000), AckEvent::Stop, AckEvent::Ack(2000)]
        );
    }

    #[test]
    fn ack_parser_rejects_data_tag() {
        let mut parser = AckParser::default();
        assert!(parser.feed(&[TAG_DATA], |_| {}).is_err());
    }
}
