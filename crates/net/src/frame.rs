//! Wire protocol for channel data connections.
//!
//! A data connection starts with a [`Hello`] frame carrying the endpoint
//! token the connector wants to attach to, followed by a stream of
//! [`Frame`]s. The `Close` frame is the graceful end-of-stream marker that
//! carries the §3.4 termination cascade across machines; `Redirect` is the
//! decentralized-communication handshake of §4.3 (Figure 15).

use kpn_core::{Error, Result};
use std::io::{Read, Write};

/// Frame tags on the wire.
const TAG_DATA: u8 = 0x01;
const TAG_CLOSE: u8 = 0x02;
const TAG_REDIRECT: u8 = 0x03;

/// Connection-opening tags (first byte of a fresh TCP connection).
pub(crate) const CONN_HELLO: u8 = 0x48; // 'H' — data connection
pub(crate) const CONN_CONTROL: u8 = 0x43; // 'C' — control session

/// One frame on a data connection.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A chunk of channel bytes.
    Data(Vec<u8>),
    /// Graceful end of stream: the reader drains, then sees EOF.
    Close,
    /// The writer endpoint is migrating: the reader should register
    /// `token` with its local acceptor and splice in the connection that
    /// will arrive for it (directly from the endpoint's new home).
    Redirect {
        /// Fresh token the replacement connection will present.
        token: u64,
    },
}

/// Writes the `Hello` preamble of a data connection.
pub(crate) fn write_hello<W: Write>(w: &mut W, token: u64) -> Result<()> {
    w.write_all(&[CONN_HELLO])?;
    w.write_all(&token.to_be_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads the token of a `Hello` preamble (the leading tag byte has already
/// been consumed by the connection dispatcher).
pub(crate) fn read_hello_token<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_be_bytes(buf))
}

/// Writes a `Data` frame directly from a borrowed payload — the hot path.
/// No per-frame `Vec`: the 5-byte header is assembled on the stack, and a
/// buffered writer underneath coalesces header and payload into one
/// transfer.
pub(crate) fn write_data_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<()> {
    let mut hdr = [0u8; 5];
    hdr[0] = TAG_DATA;
    hdr[1..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&hdr)?;
    w.write_all(payload)?;
    Ok(())
}

/// Writes one frame.
pub(crate) fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<()> {
    match frame {
        Frame::Data(bytes) => write_data_frame(w, bytes)?,
        Frame::Close => {
            w.write_all(&[TAG_CLOSE])?;
        }
        Frame::Redirect { token } => {
            w.write_all(&[TAG_REDIRECT])?;
            w.write_all(&token.to_be_bytes())?;
        }
    }
    Ok(())
}

/// Reads the header of the next frame. For `Data` frames the payload is
/// *not* consumed — the caller streams it (so one big frame does not force
/// one big allocation). Returns the payload length.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum FrameHeader {
    /// `Data` frame with this many payload bytes to stream.
    Data(usize),
    /// Graceful close.
    Close,
    /// Redirect handshake.
    Redirect(u64),
}

pub(crate) fn read_frame_header<R: Read>(r: &mut R) -> Result<FrameHeader> {
    let mut tag = [0u8; 1];
    if let Err(e) = r.read_exact(&mut tag) {
        return Err(match e.kind() {
            std::io::ErrorKind::UnexpectedEof => {
                Error::Disconnected("connection closed without Close frame".into())
            }
            _ => e.into(),
        });
    }
    match tag[0] {
        TAG_DATA => {
            let mut len = [0u8; 4];
            r.read_exact(&mut len)?;
            Ok(FrameHeader::Data(u32::from_be_bytes(len) as usize))
        }
        TAG_CLOSE => Ok(FrameHeader::Close),
        TAG_REDIRECT => {
            let mut tok = [0u8; 8];
            r.read_exact(&mut tok)?;
            Ok(FrameHeader::Redirect(u64::from_be_bytes(tok)))
        }
        other => Err(Error::Disconnected(format!("unknown frame tag {other:#x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn data_frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Data(b"hello".to_vec())).unwrap();
        let mut cur = Cursor::new(buf);
        match read_frame_header(&mut cur).unwrap() {
            FrameHeader::Data(5) => {
                let mut payload = [0u8; 5];
                cur.read_exact(&mut payload).unwrap();
                assert_eq!(&payload, b"hello");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn close_and_redirect_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Close).unwrap();
        write_frame(&mut buf, &Frame::Redirect { token: 0xDEAD }).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame_header(&mut cur).unwrap(), FrameHeader::Close);
        assert_eq!(
            read_frame_header(&mut cur).unwrap(),
            FrameHeader::Redirect(0xDEAD)
        );
    }

    #[test]
    fn hello_roundtrip() {
        let mut buf = Vec::new();
        write_hello(&mut buf, 12345).unwrap();
        assert_eq!(buf[0], CONN_HELLO);
        let mut cur = Cursor::new(&buf[1..]);
        assert_eq!(read_hello_token(&mut cur).unwrap(), 12345);
    }

    #[test]
    fn truncated_stream_is_disconnect() {
        let mut cur = Cursor::new(Vec::new());
        assert!(matches!(
            read_frame_header(&mut cur),
            Err(Error::Disconnected(_))
        ));
    }

    #[test]
    fn garbage_tag_is_disconnect() {
        let mut cur = Cursor::new(vec![0xFFu8]);
        assert!(matches!(
            read_frame_header(&mut cur),
            Err(Error::Disconnected(_))
        ));
    }
}
